//! The declarative tensor expression language (§4.1).
//!
//! Operators are declared by giving the output shape and an index-formula
//! expression for each element, exactly as in the paper's transposed-matmul
//! example:
//!
//! ```
//! use tvm_te::{placeholder, compute, reduce_axis, sum};
//! use tvm_ir::DType;
//!
//! let (m, n, h) = (64, 64, 64);
//! let a = placeholder(&[h, m], DType::float32(), "A");
//! let b = placeholder(&[h, n], DType::float32(), "B");
//! let k = reduce_axis(h, "k");
//! let c = compute(&[m, n], "C", |i| {
//!     sum(a.at(&[k.expr(), i[0].clone()]) * b.at(&[k.expr(), i[1].clone()]), std::slice::from_ref(&k))
//! });
//! assert_eq!(c.shape(), &[64, 64]);
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock, RwLock};

use tvm_ir::expr::{CallKind, ExprNode};
use tvm_ir::{DType, Expr, Range, Var};

static NEXT_OP_ID: AtomicUsize = AtomicUsize::new(0);

/// Unique operation identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// Kind of an iteration variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IterKind {
    /// Data-parallel axis (one per output dimension).
    Data,
    /// Reduction (communicative) axis.
    Reduce,
    /// Axis produced by `split`/`fuse` schedule relations.
    Derived,
}

/// An iteration variable: a loop variable together with its domain.
#[derive(Clone, Debug)]
pub struct IterVar {
    /// Underlying IR variable.
    pub var: Var,
    /// Iteration domain.
    pub dom: Range,
    /// Axis kind.
    pub kind: IterKind,
}

impl IterVar {
    /// Fresh data axis over `[0, extent)`.
    pub fn data(extent: i64, name: impl Into<String>) -> Self {
        IterVar {
            var: Var::int(name),
            dom: Range::from_extent(Expr::int(extent)),
            kind: IterKind::Data,
        }
    }

    /// Fresh reduce axis over `[0, extent)`.
    pub fn reduce(extent: i64, name: impl Into<String>) -> Self {
        IterVar {
            var: Var::int(name),
            dom: Range::from_extent(Expr::int(extent)),
            kind: IterKind::Reduce,
        }
    }

    /// Fresh derived axis (extent resolved by bound inference).
    pub fn derived(name: impl Into<String>) -> Self {
        IterVar {
            var: Var::int(name),
            dom: Range::from_extent(Expr::int(-1)),
            kind: IterKind::Derived,
        }
    }

    /// The variable as an expression.
    pub fn expr(&self) -> Expr {
        self.var.to_expr()
    }

    /// Constant extent, if declared.
    pub fn const_extent(&self) -> Option<i64> {
        self.dom.const_extent()
    }
}

impl PartialEq for IterVar {
    fn eq(&self, other: &Self) -> bool {
        self.var == other.var
    }
}
impl Eq for IterVar {}

/// Creates a reduction axis — `t.reduce_axis((0, h))` in the paper's API.
pub fn reduce_axis(extent: i64, name: impl Into<String>) -> IterVar {
    IterVar::reduce(extent, name)
}

/// Reduction combiner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Combiner {
    /// `+=` with identity 0.
    Sum,
    /// `max=` with identity `min_value(dtype)`.
    Max,
    /// `min=` with identity `max_value(dtype)` (negated min identity).
    Min,
}

impl Combiner {
    /// The combiner's identity element for `dtype`.
    pub fn identity(self, dtype: DType) -> Expr {
        match self {
            Combiner::Sum => Expr::zero(dtype),
            Combiner::Max => Expr::min_value(dtype),
            Combiner::Min => {
                // max_value = -(min_value) for floats; for ints use bitwise
                // complement of min.
                if dtype.is_float() {
                    Expr::float_of(f64::INFINITY, dtype)
                } else {
                    let mn = Expr::min_value(dtype).as_int().expect("int min");
                    Expr::int_of(if mn == 0 { i64::MAX } else { -mn - 1 }, dtype)
                }
            }
        }
    }

    /// Applies the combiner to (accumulator, value).
    pub fn combine(self, acc: Expr, val: Expr) -> Expr {
        match self {
            Combiner::Sum => acc + val,
            Combiner::Max => acc.max(val),
            Combiner::Min => acc.min(val),
        }
    }
}

/// Body of a compute operation.
#[derive(Clone, Debug)]
pub enum ComputeBody {
    /// Pure element-wise formula.
    Plain(Expr),
    /// Reduction over `axes` of `source`.
    Reduce {
        /// Combiner applied across the reduction domain.
        combiner: Combiner,
        /// Per-point value, referencing data and reduce axes.
        source: Expr,
        /// Reduction axes.
        axes: Vec<IterVar>,
    },
}

impl ComputeBody {
    /// The expression(s) whose tensor reads define this op's inputs.
    pub fn source_expr(&self) -> &Expr {
        match self {
            ComputeBody::Plain(e) => e,
            ComputeBody::Reduce { source, .. } => source,
        }
    }

    /// Result dtype.
    pub fn dtype(&self) -> DType {
        self.source_expr().dtype()
    }
}

impl From<Expr> for ComputeBody {
    fn from(e: Expr) -> Self {
        ComputeBody::Plain(e)
    }
}

/// Builds a sum reduction body.
pub fn sum(source: Expr, axes: &[IterVar]) -> ComputeBody {
    ComputeBody::Reduce {
        combiner: Combiner::Sum,
        source,
        axes: axes.to_vec(),
    }
}

/// Builds a max reduction body.
pub fn max_reduce(source: Expr, axes: &[IterVar]) -> ComputeBody {
    ComputeBody::Reduce {
        combiner: Combiner::Max,
        source,
        axes: axes.to_vec(),
    }
}

/// Builds a min reduction body.
pub fn min_reduce(source: Expr, axes: &[IterVar]) -> ComputeBody {
    ComputeBody::Reduce {
        combiner: Combiner::Min,
        source,
        axes: axes.to_vec(),
    }
}

/// Operation kinds.
#[derive(Debug)]
pub enum OpKind {
    /// External input of a given shape.
    Placeholder,
    /// Computed tensor. The body is interior-mutable because `cache_read` /
    /// `cache_write` rewrite dataflow in place while tensors keep referring
    /// to the same operation identity; the lock (rather than a `RefCell`)
    /// lets parallel tuning workers lower independent schedules of shared
    /// operations concurrently.
    Compute {
        /// Data axes, one per output dimension.
        axes: Vec<IterVar>,
        /// Element formula.
        body: RwLock<ComputeBody>,
    },
}

impl Clone for OpKind {
    fn clone(&self) -> Self {
        match self {
            OpKind::Placeholder => OpKind::Placeholder,
            OpKind::Compute { axes, body } => OpKind::Compute {
                axes: axes.clone(),
                body: RwLock::new(body.read().expect("body lock").clone()),
            },
        }
    }
}

/// Interior of an operation.
#[derive(Debug)]
pub struct OpNode {
    /// Unique id.
    pub id: OpId,
    /// Display name.
    pub name: String,
    /// Output shape (static).
    pub shape: Vec<i64>,
    /// Output element type.
    pub dtype: DType,
    /// Kind and body.
    pub kind: OpKind,
}

/// Reference-counted operation. Atomically counted so tensors, schedules
/// and lowered functions can be shared across tuning worker threads.
pub type OpRef = Arc<OpNode>;

impl OpNode {
    /// Data axes for compute ops; empty for placeholders.
    pub fn axes(&self) -> Vec<IterVar> {
        match &self.kind {
            OpKind::Placeholder => Vec::new(),
            OpKind::Compute { axes, .. } => axes.clone(),
        }
    }

    /// Reduce axes of a compute op's current body.
    pub fn reduce_axes(&self) -> Vec<IterVar> {
        match &self.kind {
            OpKind::Placeholder => Vec::new(),
            OpKind::Compute { body, .. } => match &*body.read().expect("body lock") {
                ComputeBody::Plain(_) => Vec::new(),
                ComputeBody::Reduce { axes, .. } => axes.clone(),
            },
        }
    }

    /// Current body clone (compute ops only).
    pub fn body(&self) -> Option<ComputeBody> {
        match &self.kind {
            OpKind::Placeholder => None,
            OpKind::Compute { body, .. } => Some(body.read().expect("body lock").clone()),
        }
    }

    /// Replaces the body (dataflow rewriting). Placeholders have no body to
    /// replace; addressing one is a caller error, not a compiler invariant.
    pub fn set_body(&self, new_body: ComputeBody) -> Result<(), crate::schedule::ScheduleError> {
        match &self.kind {
            OpKind::Placeholder => Err(crate::schedule::ScheduleError::NoBody {
                primitive: "set_body",
                stage: self.name.clone(),
            }),
            OpKind::Compute { body, .. } => {
                *body.write().expect("body lock") = new_body;
                Ok(())
            }
        }
    }

    /// Input tensors read by the current body, in first-read order. Reads of
    /// tensors missing from the registry are skipped here; use
    /// [`collect_reads`] directly to surface them as errors.
    pub fn input_tensors(&self) -> Vec<Tensor> {
        match self.body() {
            None => Vec::new(),
            Some(b) => {
                let mut out: Vec<Tensor> = Vec::new();
                let _ = collect_reads(b.source_expr(), &mut |t, _| {
                    if !out.iter().any(|x| x.op_id() == t.op_id()) {
                        out.push(t);
                    }
                });
                out
            }
        }
    }
}

/// A symbolic multi-dimensional tensor: one output of an operation.
#[derive(Clone, Debug)]
pub struct Tensor {
    /// Producing operation.
    pub op: OpRef,
}

impl Tensor {
    /// Operation id.
    pub fn op_id(&self) -> OpId {
        self.op.id
    }

    /// Shape.
    pub fn shape(&self) -> &[i64] {
        &self.op.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.op.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> i64 {
        self.op.shape.iter().product()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.op.dtype
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.op.name
    }

    /// Symbolic element read `self[indices]`, for use inside `compute`
    /// bodies. Registers the tensor so the scheduler can recover dataflow.
    pub fn at(&self, indices: &[Expr]) -> Expr {
        assert_eq!(
            indices.len(),
            self.ndim(),
            "tensor `{}` has {} dims, indexed with {}",
            self.name(),
            self.ndim(),
            indices.len()
        );
        register_tensor(self);
        Expr::new(ExprNode::Call {
            dtype: self.dtype(),
            name: read_key(self.op_id()),
            args: indices.to_vec(),
            kind: CallKind::PureIntrinsic,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.name(), self.shape())
    }
}

const READ_PREFIX: &str = "@read.";

/// The call name used to encode a read of op `id` inside a body expression.
pub fn read_key(id: OpId) -> String {
    format!("{READ_PREFIX}{}", id.0)
}

/// Decodes a read key back to an op id.
pub fn parse_read_key(name: &str) -> Option<OpId> {
    name.strip_prefix(READ_PREFIX)
        .and_then(|s| s.parse().ok())
        .map(OpId)
}

/// Process-wide registry mapping op ids to tensors. Global (not
/// thread-local) so a tensor graph built on one thread can be lowered from
/// any tuning worker; op ids are globally unique, so entries never collide.
static TENSOR_REGISTRY: LazyLock<RwLock<HashMap<OpId, Tensor>>> =
    LazyLock::new(|| RwLock::new(HashMap::new()));

fn register_tensor(t: &Tensor) {
    TENSOR_REGISTRY
        .write()
        .expect("tensor registry lock")
        .entry(t.op_id())
        .or_insert_with(|| t.clone());
}

/// Resolves an op id registered by [`Tensor::at`].
pub fn resolve_tensor(id: OpId) -> Option<Tensor> {
    TENSOR_REGISTRY
        .read()
        .expect("tensor registry lock")
        .get(&id)
        .cloned()
}

/// Walks an expression calling `f` for every tensor read `(tensor, indices)`.
/// Returns [`ScheduleError::UnregisteredRead`] if a read key cannot be
/// resolved in the global registry (the walk still visits every other read).
pub fn collect_reads(
    e: &Expr,
    f: &mut dyn FnMut(Tensor, &[Expr]),
) -> Result<(), crate::schedule::ScheduleError> {
    use tvm_ir::Visitor;
    struct V<'a> {
        f: &'a mut dyn FnMut(Tensor, &[Expr]),
        missing: Option<String>,
    }
    impl Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprNode::Call { name, args, .. } = &*e.0 {
                if let Some(id) = parse_read_key(name) {
                    match resolve_tensor(id) {
                        Some(t) => (self.f)(t, args),
                        None => {
                            self.missing.get_or_insert_with(|| name.clone());
                        }
                    }
                }
            }
            self.walk_expr(e);
        }
    }
    let mut v = V { f, missing: None };
    v.visit_expr(e);
    match v.missing {
        Some(name) => Err(crate::schedule::ScheduleError::UnregisteredRead { name }),
        None => Ok(()),
    }
}

/// Declares an external input tensor.
pub fn placeholder(shape: &[i64], dtype: DType, name: impl Into<String>) -> Tensor {
    let name = name.into();
    let op = Arc::new(OpNode {
        id: OpId(NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)),
        name,
        shape: shape.to_vec(),
        dtype,
        kind: OpKind::Placeholder,
    });
    let t = Tensor { op };
    register_tensor(&t);
    t
}

/// Declares a computed tensor: `f` receives one index expression per output
/// dimension and returns the element formula (plain or reduction).
pub fn compute<B: Into<ComputeBody>>(
    shape: &[i64],
    name: impl Into<String>,
    f: impl FnOnce(&[Expr]) -> B,
) -> Tensor {
    let name = name.into();
    let axis_names = ["i0", "i1", "i2", "i3", "i4", "i5"];
    let axes: Vec<IterVar> = shape
        .iter()
        .enumerate()
        .map(|(d, &e)| {
            IterVar::data(
                e,
                format!("{}_{}", name, axis_names.get(d).unwrap_or(&"ix")),
            )
        })
        .collect();
    let idx: Vec<Expr> = axes.iter().map(|a| a.expr()).collect();
    let body: ComputeBody = f(&idx).into();
    let dtype = body.dtype();
    let op = Arc::new(OpNode {
        id: OpId(NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)),
        name,
        shape: shape.to_vec(),
        dtype,
        kind: OpKind::Compute {
            axes,
            body: RwLock::new(body),
        },
    });
    let t = Tensor { op };
    register_tensor(&t);
    t
}

/// Declares a computed tensor with explicit data axes (used by the
/// scheduler's cache stages, which need fresh axes for a copied body).
pub fn compute_with_axes(
    shape: &[i64],
    name: impl Into<String>,
    axes: Vec<IterVar>,
    body: ComputeBody,
) -> Tensor {
    let dtype = body.dtype();
    let op = Arc::new(OpNode {
        id: OpId(NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)),
        name: name.into(),
        shape: shape.to_vec(),
        dtype,
        kind: OpKind::Compute {
            axes,
            body: RwLock::new(body),
        },
    });
    let t = Tensor { op };
    register_tensor(&t);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_declaration() {
        let a = placeholder(&[64, 32], DType::float32(), "A");
        let b = placeholder(&[32, 48], DType::float32(), "B");
        let k = reduce_axis(32, "k");
        let c = compute(&[64, 48], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.expr()]) * b.at(&[k.expr(), i[1].clone()]),
                std::slice::from_ref(&k),
            )
        });
        assert_eq!(c.shape(), &[64, 48]);
        assert_eq!(c.dtype(), DType::float32());
        assert_eq!(c.op.reduce_axes().len(), 1);
        let inputs = c.op.input_tensors();
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].name(), "A");
        assert_eq!(inputs[1].name(), "B");
    }

    #[test]
    fn elementwise_declaration() {
        let a = placeholder(&[16], DType::float32(), "A");
        let b = compute(&[16], "B", |i| a.at(&[i[0].clone()]) * 2 + 1);
        assert!(matches!(b.op.body().expect("body"), ComputeBody::Plain(_)));
        assert_eq!(b.op.input_tensors().len(), 1);
        assert_eq!(b.op.axes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "has 1 dims")]
    fn wrong_arity_read_panics() {
        let a = placeholder(&[16], DType::float32(), "A");
        let _ = a.at(&[Expr::int(0), Expr::int(1)]);
    }

    #[test]
    fn read_key_round_trip() {
        assert_eq!(parse_read_key(&read_key(OpId(42))), Some(OpId(42)));
        assert_eq!(parse_read_key("exp"), None);
    }

    #[test]
    fn combiner_identities() {
        assert_eq!(
            Combiner::Sum.identity(DType::float32()).as_float(),
            Some(0.0)
        );
        assert!(Combiner::Max
            .identity(DType::float32())
            .as_float()
            .expect("imm")
            .is_infinite());
        assert_eq!(Combiner::Min.identity(DType::int8()).as_int(), Some(127));
    }
}
