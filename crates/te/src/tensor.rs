//! The declarative tensor expression language (§4.1).
//!
//! Operators are declared by giving the output shape and an index-formula
//! expression for each element, exactly as in the paper's transposed-matmul
//! example:
//!
//! ```
//! use tvm_te::{placeholder, compute, reduce_axis, sum};
//! use tvm_ir::DType;
//!
//! let (m, n, h) = (64, 64, 64);
//! let a = placeholder(&[h, m], DType::float32(), "A");
//! let b = placeholder(&[h, n], DType::float32(), "B");
//! let k = reduce_axis(h, "k");
//! let c = compute(&[m, n], "C", |i| {
//!     sum(a.at(&[k.expr(), i[0].clone()]) * b.at(&[k.expr(), i[1].clone()]), std::slice::from_ref(&k))
//! });
//! assert_eq!(c.shape(), &[64, 64]);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use tvm_ir::expr::{CallKind, ExprNode};
use tvm_ir::{DType, Expr, Range, Var};

static NEXT_OP_ID: AtomicUsize = AtomicUsize::new(0);

/// Unique operation identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpId(pub usize);

/// Kind of an iteration variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IterKind {
    /// Data-parallel axis (one per output dimension).
    Data,
    /// Reduction (communicative) axis.
    Reduce,
    /// Axis produced by `split`/`fuse` schedule relations.
    Derived,
}

/// An iteration variable: a loop variable together with its domain.
#[derive(Clone, Debug)]
pub struct IterVar {
    /// Underlying IR variable.
    pub var: Var,
    /// Iteration domain.
    pub dom: Range,
    /// Axis kind.
    pub kind: IterKind,
}

impl IterVar {
    /// Fresh data axis over `[0, extent)`.
    pub fn data(extent: i64, name: impl Into<String>) -> Self {
        IterVar {
            var: Var::int(name),
            dom: Range::from_extent(Expr::int(extent)),
            kind: IterKind::Data,
        }
    }

    /// Fresh reduce axis over `[0, extent)`.
    pub fn reduce(extent: i64, name: impl Into<String>) -> Self {
        IterVar {
            var: Var::int(name),
            dom: Range::from_extent(Expr::int(extent)),
            kind: IterKind::Reduce,
        }
    }

    /// Fresh derived axis (extent resolved by bound inference).
    pub fn derived(name: impl Into<String>) -> Self {
        IterVar {
            var: Var::int(name),
            dom: Range::from_extent(Expr::int(-1)),
            kind: IterKind::Derived,
        }
    }

    /// The variable as an expression.
    pub fn expr(&self) -> Expr {
        self.var.to_expr()
    }

    /// Constant extent, if declared.
    pub fn const_extent(&self) -> Option<i64> {
        self.dom.const_extent()
    }
}

impl PartialEq for IterVar {
    fn eq(&self, other: &Self) -> bool {
        self.var == other.var
    }
}
impl Eq for IterVar {}

/// Creates a reduction axis — `t.reduce_axis((0, h))` in the paper's API.
pub fn reduce_axis(extent: i64, name: impl Into<String>) -> IterVar {
    IterVar::reduce(extent, name)
}

/// Reduction combiner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Combiner {
    /// `+=` with identity 0.
    Sum,
    /// `max=` with identity `min_value(dtype)`.
    Max,
    /// `min=` with identity `max_value(dtype)` (negated min identity).
    Min,
}

impl Combiner {
    /// The combiner's identity element for `dtype`.
    pub fn identity(self, dtype: DType) -> Expr {
        match self {
            Combiner::Sum => Expr::zero(dtype),
            Combiner::Max => Expr::min_value(dtype),
            Combiner::Min => {
                // max_value = -(min_value) for floats; for ints use bitwise
                // complement of min.
                if dtype.is_float() {
                    Expr::float_of(f64::INFINITY, dtype)
                } else {
                    let mn = Expr::min_value(dtype).as_int().expect("int min");
                    Expr::int_of(if mn == 0 { i64::MAX } else { -mn - 1 }, dtype)
                }
            }
        }
    }

    /// Applies the combiner to (accumulator, value).
    pub fn combine(self, acc: Expr, val: Expr) -> Expr {
        match self {
            Combiner::Sum => acc + val,
            Combiner::Max => acc.max(val),
            Combiner::Min => acc.min(val),
        }
    }
}

/// Body of a compute operation.
#[derive(Clone, Debug)]
pub enum ComputeBody {
    /// Pure element-wise formula.
    Plain(Expr),
    /// Reduction over `axes` of `source`.
    Reduce {
        /// Combiner applied across the reduction domain.
        combiner: Combiner,
        /// Per-point value, referencing data and reduce axes.
        source: Expr,
        /// Reduction axes.
        axes: Vec<IterVar>,
    },
}

impl ComputeBody {
    /// The expression(s) whose tensor reads define this op's inputs.
    pub fn source_expr(&self) -> &Expr {
        match self {
            ComputeBody::Plain(e) => e,
            ComputeBody::Reduce { source, .. } => source,
        }
    }

    /// Result dtype.
    pub fn dtype(&self) -> DType {
        self.source_expr().dtype()
    }
}

impl From<Expr> for ComputeBody {
    fn from(e: Expr) -> Self {
        ComputeBody::Plain(e)
    }
}

/// Builds a sum reduction body.
pub fn sum(source: Expr, axes: &[IterVar]) -> ComputeBody {
    ComputeBody::Reduce {
        combiner: Combiner::Sum,
        source,
        axes: axes.to_vec(),
    }
}

/// Builds a max reduction body.
pub fn max_reduce(source: Expr, axes: &[IterVar]) -> ComputeBody {
    ComputeBody::Reduce {
        combiner: Combiner::Max,
        source,
        axes: axes.to_vec(),
    }
}

/// Builds a min reduction body.
pub fn min_reduce(source: Expr, axes: &[IterVar]) -> ComputeBody {
    ComputeBody::Reduce {
        combiner: Combiner::Min,
        source,
        axes: axes.to_vec(),
    }
}

/// An immutable compute specification: the element formula plus the
/// resolved input tensors it reads, in first-read order.
///
/// Ops never change after construction. Schedule-time dataflow rewrites
/// (`cache_read` / `cache_write`) produce *override* specs stored on the
/// [`Schedule`](crate::Schedule) instead of mutating the op, so tuning
/// workers can lower independent schedules of a shared operation graph
/// concurrently without any locks (the former `RwLock<ComputeBody>` and its
/// lock-poison panics are gone entirely).
#[derive(Clone, Debug)]
pub struct ComputeSpec {
    /// Element formula.
    pub body: ComputeBody,
    /// Tensors read by `body`, in first-read order, deduplicated by op id.
    pub reads: Vec<Tensor>,
}

impl ComputeSpec {
    /// Builds a spec by resolving `body`'s read keys through `lookup`,
    /// best-effort: unresolvable reads are skipped here and surface as
    /// [`UnregisteredRead`](crate::ScheduleError::UnregisteredRead) when the
    /// schedule or lowering actually needs them.
    pub fn gather(body: ComputeBody, lookup: &dyn Fn(OpId) -> Option<Tensor>) -> Self {
        let mut reads: Vec<Tensor> = Vec::new();
        let _ = collect_reads(body.source_expr(), lookup, &mut |t, _| {
            if !reads.iter().any(|x| x.op_id() == t.op_id()) {
                reads.push(t);
            }
        });
        ComputeSpec { body, reads }
    }

    /// Reduce axes of the body (empty for plain bodies).
    pub fn reduce_axes(&self) -> &[IterVar] {
        match &self.body {
            ComputeBody::Plain(_) => &[],
            ComputeBody::Reduce { axes, .. } => axes,
        }
    }

    /// The input tensor with op id `id`, if this spec reads it.
    pub fn read(&self, id: OpId) -> Option<&Tensor> {
        self.reads.iter().find(|t| t.op_id() == id)
    }
}

/// Operation kinds.
#[derive(Clone, Debug)]
pub enum OpKind {
    /// External input of a given shape.
    Placeholder,
    /// Computed tensor with an immutable element formula.
    Compute {
        /// Data axes, one per output dimension.
        axes: Vec<IterVar>,
        /// Element formula + resolved reads; shared, never mutated.
        spec: Arc<ComputeSpec>,
    },
}

/// Interior of an operation.
#[derive(Debug)]
pub struct OpNode {
    /// Unique id.
    pub id: OpId,
    /// Display name.
    pub name: String,
    /// Output shape (static).
    pub shape: Vec<i64>,
    /// Output element type.
    pub dtype: DType,
    /// Kind and body.
    pub kind: OpKind,
}

/// Reference-counted operation. Atomically counted so tensors, schedules
/// and lowered functions can be shared across tuning worker threads.
pub type OpRef = Arc<OpNode>;

impl OpNode {
    /// Data axes for compute ops; empty for placeholders.
    pub fn axes(&self) -> Vec<IterVar> {
        match &self.kind {
            OpKind::Placeholder => Vec::new(),
            OpKind::Compute { axes, .. } => axes.clone(),
        }
    }

    /// The compute spec, shared and immutable (compute ops only). Note
    /// that schedules may carry an *override* spec for this op — query
    /// [`Schedule::spec`](crate::Schedule::spec) when lowering.
    pub fn spec(&self) -> Option<&Arc<ComputeSpec>> {
        match &self.kind {
            OpKind::Placeholder => None,
            OpKind::Compute { spec, .. } => Some(spec),
        }
    }

    /// Reduce axes of a compute op's body, lock-free.
    pub fn reduce_axes(&self) -> Vec<IterVar> {
        self.spec()
            .map_or_else(Vec::new, |s| s.reduce_axes().to_vec())
    }

    /// Body clone (compute ops only), lock-free.
    pub fn body(&self) -> Option<ComputeBody> {
        self.spec().map(|s| s.body.clone())
    }

    /// Input tensors read by the body as declared, in first-read order.
    /// Schedule rewrites (`cache_read` / `cache_write`) do not change this;
    /// query [`Schedule::input_tensors_of`](crate::Schedule::input_tensors_of)
    /// for the rewritten dataflow.
    pub fn input_tensors(&self) -> Vec<Tensor> {
        self.spec().map_or_else(Vec::new, |s| s.reads.clone())
    }
}

/// A symbolic multi-dimensional tensor: one output of an operation.
#[derive(Clone, Debug)]
pub struct Tensor {
    /// Producing operation.
    pub op: OpRef,
}

impl Tensor {
    /// Operation id.
    pub fn op_id(&self) -> OpId {
        self.op.id
    }

    /// Shape.
    pub fn shape(&self) -> &[i64] {
        &self.op.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.op.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> i64 {
        self.op.shape.iter().product()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.op.dtype
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.op.name
    }

    /// Symbolic element read `self[indices]`, for use inside `compute`
    /// bodies. Notes the tensor in this thread's construction context so
    /// [`compute`] can recover dataflow when the body closure returns.
    pub fn at(&self, indices: &[Expr]) -> Expr {
        assert_eq!(
            indices.len(),
            self.ndim(),
            "tensor `{}` has {} dims, indexed with {}",
            self.name(),
            self.ndim(),
            indices.len()
        );
        CONSTRUCTION_CTX.with(|ctx| {
            ctx.borrow_mut()
                .entry(self.op_id())
                .or_insert_with(|| self.clone());
        });
        Expr::new(ExprNode::Call {
            dtype: self.dtype(),
            name: read_key(self.op_id()),
            args: indices.to_vec(),
            kind: CallKind::PureIntrinsic,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:?}", self.name(), self.shape())
    }
}

const READ_PREFIX: &str = "@read.";

/// The call name used to encode a read of op `id` inside a body expression.
pub fn read_key(id: OpId) -> String {
    format!("{READ_PREFIX}{}", id.0)
}

/// Decodes a read key back to an op id.
pub fn parse_read_key(name: &str) -> Option<OpId> {
    name.strip_prefix(READ_PREFIX)
        .and_then(|s| s.parse().ok())
        .map(OpId)
}

thread_local! {
    /// Tensors read via [`Tensor::at`] on this thread, so [`compute`] can
    /// resolve its body's read keys without touching any shared state
    /// (the former process-wide `TENSOR_REGISTRY` RwLock serialized every
    /// concurrent lowering). Entries are tiny (an id plus an `Arc`) and
    /// graph construction is rare after task setup, so the map is never
    /// pruned; two tuning runs on different threads — or sequential runs
    /// holding only their own schedules — can no longer observe each
    /// other's tensors.
    static CONSTRUCTION_CTX: RefCell<HashMap<OpId, Tensor>> = RefCell::new(HashMap::new());
}

/// Resolves an op id noted by [`Tensor::at`] on the *current* thread.
fn construction_lookup(id: OpId) -> Option<Tensor> {
    CONSTRUCTION_CTX.with(|ctx| ctx.borrow().get(&id).cloned())
}

/// Walks an expression calling `f` for every tensor read `(tensor, indices)`,
/// resolving read keys through `lookup`. Returns
/// [`ScheduleError::UnregisteredRead`](crate::ScheduleError::UnregisteredRead)
/// if a read key cannot be resolved (the walk still visits every other read).
pub fn collect_reads(
    e: &Expr,
    lookup: &dyn Fn(OpId) -> Option<Tensor>,
    f: &mut dyn FnMut(Tensor, &[Expr]),
) -> Result<(), crate::schedule::ScheduleError> {
    use tvm_ir::Visitor;
    struct V<'a> {
        lookup: &'a dyn Fn(OpId) -> Option<Tensor>,
        f: &'a mut dyn FnMut(Tensor, &[Expr]),
        missing: Option<String>,
    }
    impl Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprNode::Call { name, args, .. } = &*e.0 {
                if let Some(id) = parse_read_key(name) {
                    match (self.lookup)(id) {
                        Some(t) => (self.f)(t, args),
                        None => {
                            self.missing.get_or_insert_with(|| name.clone());
                        }
                    }
                }
            }
            self.walk_expr(e);
        }
    }
    let mut v = V {
        lookup,
        f,
        missing: None,
    };
    v.visit_expr(e);
    match v.missing {
        Some(name) => Err(crate::schedule::ScheduleError::UnregisteredRead { name }),
        None => Ok(()),
    }
}

/// Declares an external input tensor.
pub fn placeholder(shape: &[i64], dtype: DType, name: impl Into<String>) -> Tensor {
    let name = name.into();
    let op = Arc::new(OpNode {
        id: OpId(NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)),
        name,
        shape: shape.to_vec(),
        dtype,
        kind: OpKind::Placeholder,
    });
    Tensor { op }
}

/// Declares a computed tensor: `f` receives one index expression per output
/// dimension and returns the element formula (plain or reduction).
pub fn compute<B: Into<ComputeBody>>(
    shape: &[i64],
    name: impl Into<String>,
    f: impl FnOnce(&[Expr]) -> B,
) -> Tensor {
    let name = name.into();
    let axis_names = ["i0", "i1", "i2", "i3", "i4", "i5"];
    let axes: Vec<IterVar> = shape
        .iter()
        .enumerate()
        .map(|(d, &e)| {
            IterVar::data(
                e,
                format!("{}_{}", name, axis_names.get(d).unwrap_or(&"ix")),
            )
        })
        .collect();
    let idx: Vec<Expr> = axes.iter().map(|a| a.expr()).collect();
    let body: ComputeBody = f(&idx).into();
    // The closure just ran on this thread, so every tensor its body reads
    // has passed through `Tensor::at` here — resolve them now, while the
    // construction context is guaranteed to hold them.
    let spec = ComputeSpec::gather(body, &construction_lookup);
    let dtype = spec.body.dtype();
    let op = Arc::new(OpNode {
        id: OpId(NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)),
        name,
        shape: shape.to_vec(),
        dtype,
        kind: OpKind::Compute {
            axes,
            spec: Arc::new(spec),
        },
    });
    Tensor { op }
}

/// Declares a computed tensor with explicit data axes (used by the
/// scheduler's cache stages, which need fresh axes for a copied body).
/// `extra_reads` resolves read keys that did not pass through this thread's
/// construction context — e.g. a body copied from an op built elsewhere.
pub fn compute_with_axes(
    shape: &[i64],
    name: impl Into<String>,
    axes: Vec<IterVar>,
    body: ComputeBody,
    extra_reads: &[Tensor],
) -> Tensor {
    let lookup = |id: OpId| {
        extra_reads
            .iter()
            .find(|t| t.op_id() == id)
            .cloned()
            .or_else(|| construction_lookup(id))
    };
    let spec = ComputeSpec::gather(body, &lookup);
    let dtype = spec.body.dtype();
    let op = Arc::new(OpNode {
        id: OpId(NEXT_OP_ID.fetch_add(1, Ordering::Relaxed)),
        name: name.into(),
        shape: shape.to_vec(),
        dtype,
        kind: OpKind::Compute {
            axes,
            spec: Arc::new(spec),
        },
    });
    Tensor { op }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_declaration() {
        let a = placeholder(&[64, 32], DType::float32(), "A");
        let b = placeholder(&[32, 48], DType::float32(), "B");
        let k = reduce_axis(32, "k");
        let c = compute(&[64, 48], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.expr()]) * b.at(&[k.expr(), i[1].clone()]),
                std::slice::from_ref(&k),
            )
        });
        assert_eq!(c.shape(), &[64, 48]);
        assert_eq!(c.dtype(), DType::float32());
        assert_eq!(c.op.reduce_axes().len(), 1);
        let inputs = c.op.input_tensors();
        assert_eq!(inputs.len(), 2);
        assert_eq!(inputs[0].name(), "A");
        assert_eq!(inputs[1].name(), "B");
    }

    #[test]
    fn elementwise_declaration() {
        let a = placeholder(&[16], DType::float32(), "A");
        let b = compute(&[16], "B", |i| a.at(&[i[0].clone()]) * 2 + 1);
        assert!(matches!(b.op.body().expect("body"), ComputeBody::Plain(_)));
        assert_eq!(b.op.input_tensors().len(), 1);
        assert_eq!(b.op.axes().len(), 1);
    }

    #[test]
    #[should_panic(expected = "has 1 dims")]
    fn wrong_arity_read_panics() {
        let a = placeholder(&[16], DType::float32(), "A");
        let _ = a.at(&[Expr::int(0), Expr::int(1)]);
    }

    #[test]
    fn read_key_round_trip() {
        assert_eq!(parse_read_key(&read_key(OpId(42))), Some(OpId(42)));
        assert_eq!(parse_read_key("exp"), None);
    }

    #[test]
    fn combiner_identities() {
        assert_eq!(
            Combiner::Sum.identity(DType::float32()).as_float(),
            Some(0.0)
        );
        assert!(Combiner::Max
            .identity(DType::float32())
            .as_float()
            .expect("imm")
            .is_infinite());
        assert_eq!(Combiner::Min.identity(DType::int8()).as_int(), Some(127));
    }
}
