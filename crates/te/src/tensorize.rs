//! Tensorization (§4.3): declaring hardware tensor intrinsics and splicing
//! them into schedules.
//!
//! An intrinsic's *behavior* is declared with the same tensor expression
//! language used for operators; its *lowering rule* is a closure that, given
//! buffer slices for the inputs and output, emits the hardware-intrinsic
//! calls that carry out the computation (mirroring the paper's
//! `decl_tensor_intrin(y.op, gemm_intrin_lower)` example).

use std::fmt;
use std::sync::Arc;

use tvm_ir::{DType, Expr, Stmt, Var};

use crate::tensor::Tensor;

/// A strided view of a flat buffer, passed to intrinsic lowering rules —
/// the analogue of the paper's `access_ptr("r")` / `access_ptr("w")`.
#[derive(Clone, Debug)]
pub struct BufferSlice {
    /// The underlying flat buffer variable.
    pub var: Var,
    /// Element offset of the slice origin.
    pub offset: Expr,
    /// Element stride per slice dimension (row-major over the region).
    pub strides: Vec<Expr>,
    /// Extent of the slice in each dimension.
    pub shape: Vec<i64>,
    /// Element type.
    pub dtype: DType,
}

impl BufferSlice {
    /// An "access pointer" expression: the buffer handle (the runtime pairs
    /// it with [`BufferSlice::offset`]).
    pub fn access_ptr(&self) -> Expr {
        self.var.to_expr()
    }
}

/// The statements an intrinsic lowering produces.
pub struct TensorIntrinImpl {
    /// Accumulator reset, emitted at the reduction-init position (e.g.
    /// `vdla.fill_zero`); `None` for non-reduction intrinsics.
    pub reset: Option<Stmt>,
    /// The update/compute body, emitted in place of the tensorized loops
    /// (e.g. `vdla.fused_gemm8x8_add`).
    pub body: Stmt,
}

/// Lowering-rule signature: receives the input slices (in body read order)
/// and the output slice. `Send + Sync` so declared intrinsics can be
/// shared with tuning workers lowering configs concurrently.
pub type LowerFn = dyn Fn(&[BufferSlice], &BufferSlice) -> TensorIntrinImpl + Send + Sync;

/// Interior of a declared tensor intrinsic.
pub struct TensorIntrinNode {
    /// Intrinsic name (diagnostics and cost modeling).
    pub name: String,
    /// Behavior declaration: a small compute tensor whose shape and
    /// reduction structure the matcher checks against the tensorized loops.
    pub decl: Tensor,
    /// Lowering rule.
    pub lower: Box<LowerFn>,
}

/// A declared, sharable tensor intrinsic.
#[derive(Clone)]
pub struct TensorIntrin(pub Arc<TensorIntrinNode>);

impl TensorIntrin {
    /// Declares a tensor intrinsic — `t.decl_tensor_intrin` in the paper.
    pub fn new(
        name: impl Into<String>,
        decl: Tensor,
        lower: impl Fn(&[BufferSlice], &BufferSlice) -> TensorIntrinImpl + Send + Sync + 'static,
    ) -> Self {
        TensorIntrin(Arc::new(TensorIntrinNode {
            name: name.into(),
            decl,
            lower: Box::new(lower),
        }))
    }

    /// Intrinsic name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// Output region shape the intrinsic computes per invocation.
    pub fn output_shape(&self) -> &[i64] {
        self.0.decl.shape()
    }

    /// Reduction extents the intrinsic consumes per invocation, in the
    /// declaration's reduce-axis order.
    pub fn reduce_extents(&self) -> Vec<i64> {
        self.0
            .decl
            .op
            .reduce_axes()
            .iter()
            .map(|iv| iv.const_extent().unwrap_or(0))
            .collect()
    }
}

impl fmt::Debug for TensorIntrin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TensorIntrin")
            .field("name", &self.0.name)
            .field("output_shape", &self.output_shape())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{compute, placeholder, reduce_axis, sum};

    #[test]
    fn gemm8x8_declaration() {
        // Mirrors the paper's 8x8 tensor hardware intrinsic declaration.
        let w = placeholder(&[8, 8], DType::float32(), "w");
        let x = placeholder(&[8, 8], DType::float32(), "x");
        let k = reduce_axis(8, "k");
        let y = compute(&[8, 8], "y", |i| {
            sum(
                w.at(&[i[0].clone(), k.expr()]) * x.at(&[i[1].clone(), k.expr()]),
                std::slice::from_ref(&k),
            )
        });
        let intrin = TensorIntrin::new("gemm8x8", y, |inputs, output| TensorIntrinImpl {
            reset: Some(Stmt::evaluate(Expr::hw_call(
                "fill_zero",
                vec![output.access_ptr(), output.offset.clone()],
                DType::int32(),
            ))),
            body: Stmt::evaluate(Expr::hw_call(
                "fused_gemm8x8_add",
                vec![
                    inputs[0].access_ptr(),
                    inputs[1].access_ptr(),
                    output.access_ptr(),
                ],
                DType::int32(),
            )),
        });
        assert_eq!(intrin.output_shape(), &[8, 8]);
        assert_eq!(intrin.reduce_extents(), vec![8]);
        assert_eq!(intrin.name(), "gemm8x8");
    }
}
