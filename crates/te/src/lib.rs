//! `tvm-te` — the tensor expression language and schedule layer (§4).
//!
//! Operators are declared with [`placeholder`] / [`compute`] index formulas;
//! a [`Schedule`] then maps the declaration to low-level code through
//! transformation primitives (loop tiling, thread binding, memory scopes,
//! tensorization, virtual threads), and [`lower()`](lower::lower) produces the final loop
//! program.
//!
//! ```
//! use tvm_te::{placeholder, compute, create_schedule, lower};
//! use tvm_ir::{DType, Interp};
//!
//! let a = placeholder(&[4], DType::float32(), "A");
//! let b = compute(&[4], "B", |i| a.at(&[i[0].clone()]) * 2);
//! let mut s = create_schedule(&[b.clone()]);
//! let axes = b.op.axes();
//! let (_o, _i) = s.split(&b, &axes[0], 2).expect("valid split");
//! let f = lower(&s, &[a, b], "double").expect("lowers");
//! let mut bufs = vec![vec![1.0f32, 2.0, 3.0, 4.0], vec![0.0; 4]];
//! Interp::new().run_f32(&f, &mut bufs).expect("runs");
//! assert_eq!(bufs[1], vec![2.0, 4.0, 6.0, 8.0]);
//! ```

pub mod lower;
pub mod rewrite;
pub mod schedule;
pub mod tensor;
pub mod tensorize;
pub mod vthread;

pub use lower::{
    emit_planned, lower, lower_stats, lower_with, plan_schedule, LowerOptions, LowerPlan,
    LowerStats, PlanCache, TeError,
};
pub use schedule::{
    create_schedule, Attach, IterAttr, IterRelation, LoopAnn, Schedule, ScheduleError, Stage,
};
pub use tensor::{
    collect_reads, compute, compute_with_axes, max_reduce, min_reduce, placeholder, reduce_axis,
    sum, Combiner, ComputeBody, ComputeSpec, IterKind, IterVar, OpId, OpKind, OpNode, OpRef,
    Tensor,
};
pub use tensorize::{BufferSlice, TensorIntrin, TensorIntrinImpl, TensorIntrinNode};
