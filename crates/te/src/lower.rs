//! Schedule lowering: bound inference + loop-nest code generation.
//!
//! Turns a schedule (`crate::schedule::Schedule`) into a lowered
//! function:
//!
//! 1. **Inlining** — stages marked `compute_inline` are substituted into
//!    their consumers' bodies (this is how fused injective operators
//!    disappear into the complex op's loop nest, §3).
//! 2. **Bound inference** — every stage gets a *realize region* (per-axis
//!    symbolic min + constant extent): full shape at root, or the region its
//!    consumer touches when `compute_at`-nested. Thread-bound consumer axes
//!    are relaxed (ranged over) when the producer lives in shared memory,
//!    which is what sizes cooperative-fetch tiles (§4.2).
//! 3. **Emission** — loop nests are generated per stage, nesting attached
//!    producers at their attachment points, unifying loops bound to the
//!    same GPU thread axis, inserting barriers around shared-scope
//!    producers, splicing tensorized intrinsics (§4.3) and honoring
//!    `dma_copy` pragmas.
//! 4. **Post passes** — shared allocations are hoisted out of thread loops,
//!    virtual threads are lowered to an interleaved instruction stream with
//!    explicit DAE tokens (§4.4), and the result is simplified.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use tvm_ir::expr::ExprNode;
use tvm_ir::stmt::StmtNode;
use tvm_ir::{DType, Expr, ForKind, Interval, LoweredFunc, MemScope, Stmt, ThreadTag, Var, VarId};

use crate::schedule::{Attach, IterRelation, LoopAnn, Schedule, Stage};
use crate::tensor::{collect_reads, ComputeBody, IterKind, IterVar, OpId, Tensor};
use crate::tensorize::BufferSlice;

/// Lowering / schedule-application error.
#[derive(Debug, Clone)]
pub enum TeError {
    /// Free-form lowering failure.
    Msg(String),
    /// A schedule primitive failed (bad itervar, unscheduled tensor, ...).
    Schedule(crate::schedule::ScheduleError),
    /// A `compute_at` producer whose consumer never received inferred
    /// bounds. The common cause is attaching to a stage that was itself
    /// inlined away (`consumer_inlined`); the fix is to attach to the
    /// surviving stage the consumer was inlined into.
    ComputeAtUnbounded {
        /// The attached producer stage.
        producer: String,
        /// The consumer it was attached to.
        consumer: String,
        /// True when the consumer stage is marked `compute_inline`.
        consumer_inlined: bool,
    },
}

impl TeError {
    /// Free-form error constructor.
    pub fn msg(m: impl Into<String>) -> TeError {
        TeError::Msg(m.into())
    }
}

impl fmt::Display for TeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeError::Msg(m) => write!(f, "lowering error: {m}"),
            TeError::Schedule(e) => write!(f, "lowering error: {e}"),
            TeError::ComputeAtUnbounded {
                producer,
                consumer,
                consumer_inlined,
            } => {
                write!(
                    f,
                    "lowering error: compute_at consumer `{consumer}` of `{producer}` \
                     was never bounded"
                )?;
                if *consumer_inlined {
                    write!(
                        f,
                        ": `{consumer}` is inlined, so it has no loops to attach to \
                         (attach `{producer}` to the stage `{consumer}` was inlined into, \
                         or drop the compute_inline)"
                    )
                } else {
                    write!(f, " (is the attachment circular?)")
                }
            }
        }
    }
}
impl std::error::Error for TeError {}

impl From<crate::schedule::ScheduleError> for TeError {
    fn from(e: crate::schedule::ScheduleError) -> TeError {
        TeError::Schedule(e)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, TeError> {
    Err(TeError::Msg(msg.into()))
}

/// Options for [`lower_with`].
#[derive(Clone, Default, Debug)]
pub struct LowerOptions {
    /// Inject decoupled-access-execute dependence tokens and interleave
    /// virtual threads for a DAE accelerator target (§4.4).
    pub dae_sync: bool,
}

// Process-wide lowering counters, surfaced through [`lower_stats`] so the
// tuner can attribute where candidate-evaluation time goes (full emissions
// vs. incremental plan reuse, and how often workers queue on the plan
// cache lock).
static LOWERINGS: AtomicU64 = AtomicU64::new(0);
static PLAN_HITS: AtomicU64 = AtomicU64::new(0);
static PLAN_MISSES: AtomicU64 = AtomicU64::new(0);
static PLAN_LOCK_WAITS: AtomicU64 = AtomicU64::new(0);
static PLAN_LOCK_WAIT_NS: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide lowering counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Full schedule emissions ([`emit_planned`] calls, including those
    /// reached through [`lower`] / [`lower_with`]).
    pub lowerings: u64,
    /// [`PlanCache`] lookups served from a cached [`LowerPlan`].
    pub plan_hits: u64,
    /// [`PlanCache`] lookups that had to build a fresh plan.
    pub plan_misses: u64,
    /// Contended acquisitions of a [`PlanCache`] lock.
    pub lock_waits: u64,
    /// Total nanoseconds spent waiting on contended [`PlanCache`] locks.
    pub lock_wait_ns: u64,
}

/// Returns the current process-wide lowering counters.
pub fn lower_stats() -> LowerStats {
    LowerStats {
        lowerings: LOWERINGS.load(Ordering::Relaxed),
        plan_hits: PLAN_HITS.load(Ordering::Relaxed),
        plan_misses: PLAN_MISSES.load(Ordering::Relaxed),
        lock_waits: PLAN_LOCK_WAITS.load(Ordering::Relaxed),
        lock_wait_ns: PLAN_LOCK_WAIT_NS.load(Ordering::Relaxed),
    }
}

/// Locks `m`, recording the wait when the lock was contended. Poisoned
/// locks are recovered rather than propagated: the cache only holds
/// immutable `Arc`s, so a panicking peer cannot leave it torn.
fn lock_timed<'m, T>(m: &'m Mutex<T>, name: &str) -> MutexGuard<'m, T> {
    if let Ok(g) = m.try_lock() {
        return g;
    }
    let start = Instant::now();
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    let ns = start.elapsed().as_nanos() as u64;
    PLAN_LOCK_WAITS.fetch_add(1, Ordering::Relaxed);
    PLAN_LOCK_WAIT_NS.fetch_add(ns, Ordering::Relaxed);
    tvm_obs::lock_wait(name, ns);
    g
}

/// A bounded, thread-safe memo table for incremental lowering.
///
/// Keyed by whatever digest the caller derives from the *structural* part
/// of a schedule configuration (splits, reorders, bindings, attachments);
/// annotation-only knobs (vectorize/unroll/parallel) do not change the
/// plan, so simulated-annealing neighbors that only toggle them reuse the
/// cached bound inference and dataflow analysis. Misses build outside the
/// lock — concurrent duplicate builds are harmless (first insert wins).
pub struct PlanCache<T> {
    inner: Mutex<PlanMap<T>>,
    cap: usize,
}

/// One cached plan plus its second-chance reference bit.
struct PlanEntry<T> {
    value: Arc<T>,
    referenced: bool,
}

/// The guarded state: the key→plan map and the clock-hand FIFO the
/// second-chance evictor sweeps.
struct PlanMap<T> {
    map: HashMap<u64, PlanEntry<T>>,
    queue: VecDeque<u64>,
}

impl<T> Default for PlanCache<T> {
    fn default() -> Self {
        // Sized above the largest template search space's structural-key
        // count (conv2d ≈ 1.5k); an undersized cache degrades gracefully
        // through second-chance eviction instead of thrashing.
        PlanCache::new(8192)
    }
}

impl<T> PlanCache<T> {
    /// Creates a cache holding at most `cap` entries. At capacity one
    /// victim is evicted by second-chance (clock) selection: entries hit
    /// since their last sweep are spared, so a working set one entry over
    /// capacity keeps its hot members instead of losing the whole cache.
    pub fn new(cap: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanMap {
                map: HashMap::new(),
                queue: VecDeque::new(),
            }),
            cap: cap.max(1),
        }
    }

    /// Returns the cached value for `key`, building it with `build` on a
    /// miss. The build runs outside the lock.
    pub fn get_or_build<E>(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<T, E>,
    ) -> Result<Arc<T>, E> {
        {
            let mut inner = lock_timed(&self.inner, "plan_cache");
            if let Some(entry) = inner.map.get_mut(&key) {
                PLAN_HITS.fetch_add(1, Ordering::Relaxed);
                entry.referenced = true;
                return Ok(Arc::clone(&entry.value));
            }
        }
        PLAN_MISSES.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build()?);
        let mut inner = lock_timed(&self.inner, "plan_cache");
        // A racing duplicate build may have inserted while we were
        // building; first insert wins (and counts as a reference).
        if let Some(entry) = inner.map.get_mut(&key) {
            entry.referenced = true;
            return Ok(Arc::clone(&entry.value));
        }
        while inner.map.len() >= self.cap {
            // Second chance: rotate referenced entries to the back with
            // their bit cleared; evict the first unreferenced one. The
            // sweep terminates because each rotation clears a bit.
            match inner.queue.pop_front() {
                Some(victim) => {
                    let spare = match inner.map.get_mut(&victim) {
                        Some(entry) if entry.referenced => {
                            entry.referenced = false;
                            true
                        }
                        Some(_) => false,
                        // Stale queue slot (key already evicted): drop it.
                        None => continue,
                    };
                    if spare {
                        inner.queue.push_back(victim);
                    } else {
                        inner.map.remove(&victim);
                    }
                }
                None => break,
            }
        }
        inner.map.insert(
            key,
            PlanEntry {
                value: Arc::clone(&built),
                referenced: false,
            },
        );
        inner.queue.push_back(key);
        Ok(built)
    }

    /// Number of currently cached plans.
    pub fn len(&self) -> usize {
        lock_timed(&self.inner, "plan_cache").map.len()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-stage results of bound inference.
#[derive(Clone, Debug)]
struct StageData {
    /// Per-data-axis region min (symbolic in outer loop vars).
    realize_min: Vec<Expr>,
    /// Per-data-axis region extent.
    realize_ext: Vec<i64>,
    /// Extent of every itervar of the stage.
    extents: HashMap<VarId, i64>,
    /// Root/intermediate itervar -> expression in leaf vars (local coords).
    var_expr: HashMap<VarId, Expr>,
    /// Guard predicates (local coords) from non-perfect splits, with the
    /// root axis kind of the guarded variable.
    guards: Vec<(Expr, IterKind)>,
}

/// Lowers a schedule into a function over `args` (placeholders then
/// outputs, in the order the caller wants parameters bound).
pub fn lower(sched: &Schedule, args: &[Tensor], name: &str) -> Result<LoweredFunc, TeError> {
    lower_with(sched, args, name, &LowerOptions::default())
}

/// Lowers a schedule with explicit options: plan, then emit.
pub fn lower_with(
    sched: &Schedule,
    args: &[Tensor],
    name: &str,
    opts: &LowerOptions,
) -> Result<LoweredFunc, TeError> {
    // Pass-level tracing: children of this span are the lowering stages
    // plus the per-stage validation hooks (a no-op when the global obs
    // registry is disabled).
    let _lower_span = tvm_obs::span_with("lower", &[("kernel", name)]);
    let plan = plan_schedule(sched)?;
    emit_planned(sched, &plan, args, name, opts)
}

/// The annotation-independent half of lowering: effective bodies after
/// inlining, inferred bounds, the attachment map and the canonical thread
/// variables. A plan depends only on the *structure* of a schedule
/// (splits, fuses, reorders, thread bindings, attachments, scopes), not on
/// loop annotations (vectorize/unroll/parallel/pragma), so it can be
/// cached and re-emitted for every annotation variant of the same
/// structural configuration — see [`PlanCache`].
pub struct LowerPlan {
    bodies: HashMap<OpId, ComputeBody>,
    data: HashMap<OpId, StageData>,
    attach_map: HashMap<(OpId, VarId), Vec<OpId>>,
    thread_vars: HashMap<ThreadTag, (Var, i64)>,
}

/// Runs the analysis half of lowering (inlining, bound inference,
/// attachment/thread pre-scans) without emitting code.
pub fn plan_schedule(sched: &Schedule) -> Result<LowerPlan, TeError> {
    let bodies = {
        let _s = tvm_obs::span("effective_bodies");
        effective_bodies(sched)
    };
    let data = {
        let _s = tvm_obs::span("infer_bounds");
        infer_bounds(sched, &bodies)?
    };

    // Attachment map.
    let mut attach_map: HashMap<(OpId, VarId), Vec<OpId>> = HashMap::new();
    for stage in &sched.stages {
        if let Attach::At { consumer, iter } = &stage.attach {
            attach_map
                .entry((*consumer, iter.id()))
                .or_default()
                .push(stage.op_id());
        }
    }

    // Pre-scan thread bindings: one canonical variable per tag, sized to
    // the largest extent bound anywhere in the kernel. Stages binding a
    // smaller extent run guarded on the canonical variable.
    let mut thread_vars: HashMap<ThreadTag, (Var, i64)> = HashMap::new();
    for stage in &sched.stages {
        if matches!(stage.attach, Attach::Inline) {
            continue;
        }
        let Some(sd) = data.get(&stage.op_id()) else {
            continue;
        };
        for leaf in &stage.leaf_iters {
            if let Some(attr) = stage.iter_attrs.get(&leaf.var.id()) {
                if let Some(tag) = attr.thread {
                    let ext = sd.extents.get(&leaf.var.id()).copied().unwrap_or(1);
                    let entry = thread_vars
                        .entry(tag)
                        .or_insert_with(|| (Var::int(tag.name()), ext));
                    entry.1 = entry.1.max(ext);
                }
            }
        }
    }

    Ok(LowerPlan {
        bodies,
        data,
        attach_map,
        thread_vars,
    })
}

/// Emits a lowered function from a pre-computed [`LowerPlan`]. `sched`
/// must be the schedule the plan was computed from, or a clone of it that
/// differs only in loop annotations (the clone shares itervar identities,
/// which is what keeps the plan's variable maps valid).
pub fn emit_planned(
    sched: &Schedule,
    plan: &LowerPlan,
    args: &[Tensor],
    name: &str,
    opts: &LowerOptions,
) -> Result<LoweredFunc, TeError> {
    LOWERINGS.fetch_add(1, Ordering::Relaxed);
    let data = &plan.data;

    // Buffer variables: params first (stable across calls), then internals.
    let mut buffers: HashMap<OpId, Var> = HashMap::new();
    for t in args {
        buffers.insert(t.op_id(), Var::new(t.name(), t.dtype()));
    }
    for id in data.keys() {
        if !buffers.contains_key(id) {
            if let Some(stage) = sched.stage_by_op(*id) {
                buffers.insert(*id, Var::new(stage.tensor.name(), stage.tensor.dtype()));
            } else if let Some(t) = sched.tensor(*id) {
                buffers.insert(*id, Var::new(t.name(), t.dtype()));
            }
        }
    }

    let mut em = Emitter {
        sched,
        plan,
        buffers,
    };

    // Emit root stages in order, wrapping non-param roots in allocations.
    let emit_span = tvm_obs::span("emit");
    let mut pieces: Vec<(OpId, Stmt)> = Vec::new();
    for stage in &sched.stages {
        if matches!(stage.attach, Attach::Root) {
            let mut s = tvm_obs::span("emit_stage");
            s.arg("stage", stage.tensor.name());
            pieces.push((stage.op_id(), em.emit_stage(stage.op_id())?));
        }
    }
    drop(emit_span);
    let param_ids: HashSet<OpId> = args.iter().map(|t| t.op_id()).collect();
    let mut body = Stmt::nop();
    for (op, nest) in pieces.into_iter().rev() {
        body = Stmt::seq(vec![nest, body]);
        if !param_ids.contains(&op) {
            let sd = &data[&op];
            let extent: i64 = sd.realize_ext.iter().product::<i64>().max(1);
            let stage = sched.stage_by_op(op).expect("root stage");
            body = Stmt::allocate(
                &em.buffers[&op],
                stage.tensor.dtype(),
                extent,
                stage.scope,
                body,
            );
        }
    }

    // Wrap the kernel with one canonical loop per bound thread axis:
    // threadIdx innermost, blockIdx outermost.
    for tag in [
        ThreadTag::ThreadIdxX,
        ThreadTag::ThreadIdxY,
        ThreadTag::ThreadIdxZ,
        ThreadTag::BlockIdxX,
        ThreadTag::BlockIdxY,
        ThreadTag::BlockIdxZ,
    ] {
        if let Some((v, ext)) = em.plan.thread_vars.get(&tag) {
            body = Stmt::loop_(v, 0, *ext, ForKind::ThreadBinding(tag), body);
        }
    }

    let params: Vec<Var> = args
        .iter()
        .map(|t| em.buffers[&t.op_id()].clone())
        .collect();
    let param_extents: Vec<usize> = args.iter().map(|t| t.numel() as usize).collect();

    validate_stage("emit", name, &body, &params, &param_extents)?;
    let body = {
        let _s = tvm_obs::span("hoist_shared_allocs");
        hoist_shared_allocs(&body)
    };
    validate_stage("hoist_shared_allocs", name, &body, &params, &param_extents)?;
    let body = {
        let _s = tvm_obs::span(if opts.dae_sync {
            "lower_dae"
        } else {
            "lower_vthreads"
        });
        if opts.dae_sync {
            crate::vthread::lower_dae(&body)
        } else {
            crate::vthread::lower_vthreads(&body)
        }
    };
    validate_stage("lower_vthreads", name, &body, &params, &param_extents)?;
    let body = {
        let _s = tvm_obs::span("simplify");
        tvm_ir::simplify_stmt(&body)
    };
    validate_stage("simplify", name, &body, &params, &param_extents)?;

    Ok(LoweredFunc {
        name: name.to_string(),
        param_dtypes: args.iter().map(|t| t.dtype()).collect(),
        param_extents,
        params,
        body,
    })
}

/// Runs the static verifier (`tvm-analysis`, ssa + bounds + sync) on the
/// intermediate body after each lowering stage, turning any error finding
/// into a `TeError` that names the offending pass. Enabled in debug
/// builds; override with `TVM_VALIDATE_LOWER=1` / `=0`.
fn validate_stage(
    stage: &str,
    func: &str,
    body: &Stmt,
    params: &[Var],
    param_extents: &[usize],
) -> Result<(), TeError> {
    if !validation_enabled() {
        return Ok(());
    }
    let _s = tvm_obs::span_with("validate", &[("after", stage)]);
    let report = tvm_analysis::analyze_stmt(
        body,
        params,
        param_extents,
        &tvm_analysis::AnalysisOptions::lowering_hook(),
    );
    if report.has_errors() {
        let msgs: Vec<String> = report.errors().map(|d| d.to_string()).collect();
        return err(format!(
            "IR validation failed after `{stage}` while lowering `{func}`: {}",
            msgs.join("; ")
        ));
    }
    Ok(())
}

fn validation_enabled() -> bool {
    match std::env::var("TVM_VALIDATE_LOWER") {
        Ok(v) => v != "0",
        Err(_) => cfg!(debug_assertions),
    }
}

/// Applies `compute_inline` substitution, returning effective bodies for
/// every non-inlined compute op.
fn effective_bodies(sched: &Schedule) -> HashMap<OpId, ComputeBody> {
    let mut bodies: HashMap<OpId, ComputeBody> = HashMap::new();
    for stage in &sched.stages {
        if let Some(spec) = sched.spec(stage.op_id()) {
            bodies.insert(stage.op_id(), spec.body.clone());
        }
    }
    // Topological order: inline producers into everything downstream.
    for stage in &sched.stages {
        if !matches!(stage.attach, Attach::Inline) {
            continue;
        }
        let id = stage.op_id();
        let expr = match bodies.get(&id) {
            Some(ComputeBody::Plain(e)) => e.clone(),
            _ => continue, // validated at schedule time
        };
        let axes: Vec<Var> = stage
            .tensor
            .op
            .axes()
            .iter()
            .map(|iv| iv.var.clone())
            .collect();
        let keys: Vec<OpId> = bodies.keys().copied().collect();
        for key in keys {
            if key == id {
                continue;
            }
            let b = bodies.remove(&key).expect("key exists");
            bodies.insert(key, crate::rewrite::inline_reads(&b, id, &axes, &expr));
        }
        bodies.remove(&id);
    }
    bodies
}

fn full_realize(shape: &[i64]) -> (Vec<Expr>, Vec<i64>) {
    (shape.iter().map(|_| Expr::int(0)).collect(), shape.to_vec())
}

fn infer_bounds(
    sched: &Schedule,
    bodies: &HashMap<OpId, ComputeBody>,
) -> Result<HashMap<OpId, StageData>, TeError> {
    let mut out: HashMap<OpId, StageData> = HashMap::new();
    // Thread-bound / vthread leaf extents seen so far; when a producer
    // lives in shared memory, these axes are *relaxed* (ranged over) so the
    // tile covers the whole thread block — even when the thread variable
    // reaches the region expression through an attachment chain.
    let mut thread_extents: HashMap<VarId, i64> = HashMap::new();
    // Consumers first.
    for stage in sched.stages.iter().rev() {
        if matches!(stage.attach, Attach::Inline) {
            continue;
        }
        let shape = stage.tensor.shape();
        let (mins, exts) = match &stage.attach {
            Attach::Root | Attach::Inline => full_realize(shape),
            Attach::At { consumer, iter } => {
                let cons_stage = sched.stage_by_op(*consumer).ok_or_else(|| {
                    TeError::msg(format!("unknown consumer for `{}`", stage.tensor.name()))
                })?;
                let cons_data = out
                    .get(consumer)
                    .ok_or_else(|| TeError::ComputeAtUnbounded {
                        producer: stage.tensor.name().to_string(),
                        consumer: cons_stage.tensor.name().to_string(),
                        consumer_inlined: matches!(cons_stage.attach, Attach::Inline),
                    })?;
                compute_region(
                    sched,
                    stage,
                    cons_stage,
                    cons_data,
                    iter,
                    bodies,
                    &thread_extents,
                )?
            }
        };
        // Root iter extents: data axes take realize extents, reduce axes
        // keep declared extents.
        let mut root_ext: HashMap<VarId, i64> = HashMap::new();
        let mut kinds: HashMap<VarId, IterKind> = HashMap::new();
        for (axis, e) in stage.tensor.op.axes().iter().zip(&exts) {
            root_ext.insert(axis.var.id(), *e);
            kinds.insert(axis.var.id(), IterKind::Data);
        }
        // Reduce axes from the *effective* body (cache_write moves them).
        if let Some(ComputeBody::Reduce { axes, .. }) = bodies.get(&stage.op_id()) {
            for r in axes {
                let e = r.const_extent().ok_or_else(|| {
                    TeError::msg(format!(
                        "reduce axis `{}` has no constant extent",
                        r.var.name()
                    ))
                })?;
                root_ext.insert(r.var.id(), e);
                kinds.insert(r.var.id(), IterKind::Reduce);
            }
        }
        let (extents, var_expr, guards) = resolve_iters(stage, root_ext, kinds)?;
        // Record thread-bound / vthread leaves for transitive relaxation.
        for leaf in &stage.leaf_iters {
            if let Some(attr) = stage.iter_attrs.get(&leaf.var.id()) {
                let threaded = matches!(attr.thread, Some(t) if !t.is_block());
                let vthreaded = matches!(attr.ann, Some(LoopAnn::VThread));
                if threaded || vthreaded {
                    if let Some(e) = extents.get(&leaf.var.id()) {
                        thread_extents.insert(leaf.var.id(), *e);
                    }
                }
            }
        }
        out.insert(
            stage.op_id(),
            StageData {
                realize_min: mins,
                realize_ext: exts,
                extents,
                var_expr,
                guards,
            },
        );
    }
    // Placeholders realize their full shape.
    for stage in &sched.stages {
        for inp in sched.input_tensors_of(stage.op_id()) {
            let id = inp.op_id();
            if sched.stage_by_op(id).is_none() && !out.contains_key(&id) {
                let (mins, exts) = full_realize(inp.shape());
                out.insert(
                    id,
                    StageData {
                        realize_min: mins,
                        realize_ext: exts,
                        extents: HashMap::new(),
                        var_expr: HashMap::new(),
                        guards: Vec::new(),
                    },
                );
            }
        }
    }
    Ok(out)
}

/// Computes the realize region of `stage` when attached inside `cons_stage`
/// under leaf `attach_iter`.
fn compute_region(
    sched: &Schedule,
    stage: &Stage,
    cons_stage: &Stage,
    cons_data: &StageData,
    attach_iter: &Var,
    bodies: &HashMap<OpId, ComputeBody>,
    thread_extents: &HashMap<VarId, i64>,
) -> Result<(Vec<Expr>, Vec<i64>), TeError> {
    let shape = stage.tensor.shape();
    let pos = cons_stage
        .leaf_iters
        .iter()
        .position(|l| l.var == *attach_iter)
        .ok_or_else(|| {
            TeError::msg(format!(
                "attach iter `{}` is not a leaf of `{}`",
                attach_iter.name(),
                cons_stage.tensor.name()
            ))
        })?;
    // Inner vars range; outer vars are symbolic points. Thread-bound and
    // vthread outer leaves are relaxed when the producer is shared.
    let mut inner: HashSet<VarId> = cons_stage.leaf_iters[pos + 1..]
        .iter()
        .map(|l| l.var.id())
        .collect();
    if stage.scope == MemScope::Shared {
        for leaf in &cons_stage.leaf_iters[..=pos] {
            if let Some(attr) = cons_stage.iter_attrs.get(&leaf.var.id()) {
                let threaded = matches!(attr.thread, Some(t) if !t.is_block());
                let vthreaded = matches!(attr.ann, Some(LoopAnn::VThread));
                if threaded || vthreaded {
                    inner.insert(leaf.var.id());
                }
            }
        }
    }
    // Consumer coordinate substitution: axis -> realize_min + local expr.
    let mut sub: HashMap<VarId, Expr> = HashMap::new();
    for (d, axis) in cons_stage.tensor.op.axes().iter().enumerate() {
        let local = cons_data
            .var_expr
            .get(&axis.var.id())
            .cloned()
            .unwrap_or_else(|| axis.expr());
        sub.insert(axis.var.id(), cons_data.realize_min[d].clone() + local);
    }
    if let Some(ComputeBody::Reduce { axes, .. }) = bodies.get(&cons_stage.op_id()) {
        for r in axes {
            let local = cons_data
                .var_expr
                .get(&r.var.id())
                .cloned()
                .unwrap_or_else(|| r.expr());
            sub.insert(r.var.id(), local);
        }
    }
    let body = bodies.get(&cons_stage.op_id()).ok_or_else(|| {
        TeError::msg(format!(
            "consumer `{}` has no body",
            cons_stage.tensor.name()
        ))
    })?;
    let mut regions: Vec<(Vec<Expr>, Vec<i64>)> = Vec::new();
    let target = stage.op_id();
    let lookup = |id: OpId| sched.tensor(id).cloned();
    collect_reads(body.source_expr(), &lookup, &mut |t, idx| {
        if t.op_id() != target {
            return;
        }
        let mut mins = Vec::with_capacity(idx.len());
        let mut exts = Vec::with_capacity(idx.len());
        for (d, e) in idx.iter().enumerate() {
            let e = tvm_ir::simplify(&tvm_ir::substitute(e, &sub));
            let ranged = |v: &Var| {
                inner.contains(&v.id())
                    || (stage.scope == MemScope::Shared && thread_extents.contains_key(&v.id()))
            };
            if divmod_mixes_ranged(&e, &ranged) {
                // A floor-div/mod whose dividend mixes ranged (inner) and
                // pinned (outer) variables has no per-instance width that
                // is uniform in the outer value — e.g. an attachment under
                // a fused-then-split loop whose chunks straddle an inner
                // dimension boundary. Realize the whole axis, like TVM
                // relaxes unaligned fused sub-ranges.
                mins.push(Expr::int(0));
                exts.push(shape[d]);
                continue;
            }
            // Width: inner vars ranged, everything else pinned to 0.
            let mut bounds: HashMap<VarId, Interval> = HashMap::new();
            let mut ranged_hi: Vec<(VarId, i64)> = Vec::new();
            for v in tvm_ir::collect_vars(&e) {
                let iv = if inner.contains(&v.id()) {
                    let ext = cons_data.extents.get(&v.id()).copied().unwrap_or(1);
                    ranged_hi.push((v.id(), (ext - 1).max(0)));
                    Interval::new(0, (ext - 1).max(0))
                } else if stage.scope == MemScope::Shared && thread_extents.contains_key(&v.id()) {
                    // Transitive thread relaxation: thread variables that
                    // reach this index through the attachment chain range
                    // over the whole block for shared producers.
                    ranged_hi.push((v.id(), (thread_extents[&v.id()] - 1).max(0)));
                    Interval::new(0, (thread_extents[&v.id()] - 1).max(0))
                } else {
                    Interval::point(0)
                };
                bounds.insert(v.id(), iv);
            }
            match tvm_ir::eval_interval(&e, &bounds) {
                Some(iv) => {
                    let width = iv.extent().min(shape[d]);
                    // Min: substitute each ranged var by whichever loop
                    // endpoint minimizes the index. Indices that *decrease*
                    // in a reduction var — conv2d_transpose's mirrored
                    // weight access `k - 1 - r` — take their minimum at the
                    // var's upper end; always substituting 0 mis-offsets
                    // the realize region by the whole flip.
                    let mut min_sub: HashMap<VarId, Expr> = HashMap::new();
                    for &(vid, hi) in &ranged_hi {
                        let at = |x: i64| {
                            let mut b = bounds.clone();
                            b.insert(vid, Interval::point(x));
                            tvm_ir::eval_interval(&e, &b).map(|i| i.min)
                        };
                        let pick = match (at(0), at(hi)) {
                            (Some(lo0), Some(lo1)) if lo1 < lo0 => hi,
                            _ => 0,
                        };
                        min_sub.insert(vid, Expr::int(pick));
                    }
                    let min_e = tvm_ir::simplify(&tvm_ir::substitute(&e, &min_sub));
                    mins.push(min_e);
                    exts.push(width);
                }
                None => {
                    // Unanalyzable index: realize the whole axis.
                    mins.push(Expr::int(0));
                    exts.push(shape[d]);
                }
            }
        }
        regions.push((mins, exts));
    })?;
    if regions.is_empty() {
        // Consumer does not read this op directly (multi-level attachment
        // chains read through other stages): be conservative.
        return Ok(full_realize(shape));
    }
    // Merge: identical mins -> max extents; otherwise fall back to full.
    let (first_min, mut ext) = regions[0].clone();
    for (m, e) in &regions[1..] {
        let same = m.iter().zip(&first_min).all(|(a, b)| a.structural_eq(b));
        if !same {
            return Ok(full_realize(shape));
        }
        for (acc, v) in ext.iter_mut().zip(e) {
            *acc = (*acc).max(*v);
        }
    }
    Ok((first_min, ext))
}

/// True when some floor-div/mod inside `e` has a dividend mixing variables
/// the region query ranges over with variables it pins to a point. Interval
/// evaluation with the pinned vars at 0 underestimates the width of such
/// expressions (the span of `(outer*c + inner) // m` depends on `outer`),
/// so [`compute_region`] must fall back to the full axis for them.
fn divmod_mixes_ranged(e: &Expr, ranged: &dyn Fn(&Var) -> bool) -> bool {
    use tvm_ir::{BinOp, ExprNode};
    match &*e.0 {
        ExprNode::Binary {
            op: BinOp::Div | BinOp::Mod,
            a,
            b,
        } => {
            let vars = tvm_ir::collect_vars(a);
            let mixes = vars.iter().any(ranged) && vars.iter().any(|v| !ranged(v));
            mixes || divmod_mixes_ranged(a, ranged) || divmod_mixes_ranged(b, ranged)
        }
        ExprNode::Binary { a, b, .. } | ExprNode::Cmp { a, b, .. } => {
            divmod_mixes_ranged(a, ranged) || divmod_mixes_ranged(b, ranged)
        }
        ExprNode::And { a, b } | ExprNode::Or { a, b } => {
            divmod_mixes_ranged(a, ranged) || divmod_mixes_ranged(b, ranged)
        }
        ExprNode::Not { a }
        | ExprNode::Cast { value: a, .. }
        | ExprNode::Broadcast { value: a, .. } => divmod_mixes_ranged(a, ranged),
        ExprNode::Select {
            cond,
            then_case,
            else_case,
        } => {
            divmod_mixes_ranged(cond, ranged)
                || divmod_mixes_ranged(then_case, ranged)
                || divmod_mixes_ranged(else_case, ranged)
        }
        ExprNode::Ramp { base, stride, .. } => {
            divmod_mixes_ranged(base, ranged) || divmod_mixes_ranged(stride, ranged)
        }
        ExprNode::Let { value, body, .. } => {
            divmod_mixes_ranged(value, ranged) || divmod_mixes_ranged(body, ranged)
        }
        ExprNode::Load {
            index, predicate, ..
        } => {
            divmod_mixes_ranged(index, ranged)
                || predicate
                    .as_ref()
                    .is_some_and(|p| divmod_mixes_ranged(p, ranged))
        }
        ExprNode::Call { args, .. } => args.iter().any(|a| divmod_mixes_ranged(a, ranged)),
        ExprNode::IntImm { .. }
        | ExprNode::FloatImm { .. }
        | ExprNode::StringImm(_)
        | ExprNode::Var(_) => false,
    }
}

type ResolvedIters = (
    HashMap<VarId, i64>,
    HashMap<VarId, Expr>,
    Vec<(Expr, IterKind)>,
);

/// Resolves extents, leaf-coordinate expressions and split guards for all
/// itervars of a stage.
fn resolve_iters(
    stage: &Stage,
    root_ext: HashMap<VarId, i64>,
    mut kinds: HashMap<VarId, IterKind>,
) -> Result<ResolvedIters, TeError> {
    let mut extents = root_ext;
    let mut overshoot: Vec<(Var, i64)> = Vec::new(); // (parent, parent extent)
    for rel in &stage.relations {
        match rel {
            IterRelation::Split {
                parent,
                outer,
                inner,
                factor,
            } => {
                let ep = *extents.get(&parent.id()).ok_or_else(|| {
                    TeError::msg(format!(
                        "split parent `{}` has unknown extent",
                        parent.name()
                    ))
                })?;
                let ei = (*factor).min(ep).max(1);
                let eo = (ep + ei - 1) / ei;
                extents.insert(outer.var.id(), eo);
                extents.insert(inner.var.id(), ei);
                let kind = kinds.get(&parent.id()).copied().unwrap_or(IterKind::Data);
                kinds.insert(outer.var.id(), kind);
                kinds.insert(inner.var.id(), kind);
                if eo * ei > ep {
                    overshoot.push((parent.clone(), ep));
                }
            }
            IterRelation::Fuse {
                outer,
                inner,
                fused,
            } => {
                let eo = *extents.get(&outer.id()).ok_or_else(|| {
                    TeError::msg(format!("fuse outer `{}` has unknown extent", outer.name()))
                })?;
                let ei = *extents.get(&inner.id()).ok_or_else(|| {
                    TeError::msg(format!("fuse inner `{}` has unknown extent", inner.name()))
                })?;
                extents.insert(fused.var.id(), eo * ei);
                let kind = kinds.get(&outer.id()).copied().unwrap_or(IterKind::Data);
                kinds.insert(fused.var.id(), kind);
            }
        }
    }
    // Leaf-coordinate expressions, memoized.
    let mut var_expr: HashMap<VarId, Expr> = HashMap::new();
    let all_vars: Vec<Var> = {
        let mut v: Vec<Var> = stage
            .tensor
            .op
            .axes()
            .iter()
            .map(|a| a.var.clone())
            .collect();
        v.extend(stage.tensor.op.reduce_axes().iter().map(|a| a.var.clone()));
        for rel in &stage.relations {
            match rel {
                IterRelation::Split {
                    parent,
                    outer,
                    inner,
                    ..
                } => {
                    v.push(parent.clone());
                    v.push(outer.var.clone());
                    v.push(inner.var.clone());
                }
                IterRelation::Fuse { fused, .. } => v.push(fused.var.clone()),
            }
        }
        v
    };
    for var in &all_vars {
        let e = expand_var(var, stage, &extents, &mut HashSet::new())?;
        var_expr.insert(var.id(), e);
    }
    let guards: Vec<(Expr, IterKind)> = overshoot
        .into_iter()
        .map(|(parent, ep)| {
            let pe = var_expr
                .get(&parent.id())
                .cloned()
                .unwrap_or_else(|| parent.to_expr());
            let kind = kinds.get(&parent.id()).copied().unwrap_or(IterKind::Data);
            (pe.lt(Expr::int(ep)), kind)
        })
        .collect();
    Ok((extents, var_expr, guards))
}

fn expand_var(
    var: &Var,
    stage: &Stage,
    extents: &HashMap<VarId, i64>,
    seen: &mut HashSet<VarId>,
) -> Result<Expr, TeError> {
    if !seen.insert(var.id()) {
        return err(format!("cyclic iter relation at `{}`", var.name()));
    }
    for rel in &stage.relations {
        match rel {
            IterRelation::Split {
                parent,
                outer,
                inner,
                ..
            } if parent.id() == var.id() => {
                let eo = expand_var(&outer.var, stage, extents, seen)?;
                let ei_expr = expand_var(&inner.var, stage, extents, seen)?;
                let ei = *extents.get(&inner.var.id()).expect("resolved");
                seen.remove(&var.id());
                return Ok(eo * ei + ei_expr);
            }
            IterRelation::Fuse {
                outer,
                inner,
                fused,
            } => {
                let ei = *extents.get(&inner.id()).ok_or_else(|| {
                    TeError::msg(format!("fuse inner `{}` unresolved", inner.name()))
                })?;
                if outer.id() == var.id() {
                    let f = expand_var(&fused.var, stage, extents, seen)?;
                    seen.remove(&var.id());
                    return Ok(f / ei);
                }
                if inner.id() == var.id() {
                    let f = expand_var(&fused.var, stage, extents, seen)?;
                    seen.remove(&var.id());
                    return Ok(f % ei);
                }
            }
            _ => {}
        }
    }
    seen.remove(&var.id());
    Ok(var.to_expr())
}

struct Emitter<'a> {
    sched: &'a Schedule,
    plan: &'a LowerPlan,
    buffers: HashMap<OpId, Var>,
}

struct Plan {
    op: OpId,
    leaves: Vec<IterVar>,
    init_pos: Option<usize>,
    init_stmt: Option<Stmt>,
    init_loop_leaves: Vec<IterVar>,
    body_stmt: Stmt,
    ten_pos: Option<usize>,
}

impl Emitter<'_> {
    fn strides_of(&self, op: OpId) -> Vec<i64> {
        let exts = &self.plan.data[&op].realize_ext;
        row_major_strides(exts)
    }

    /// Applies the stage's coordinate substitution, then converts tensor
    /// reads to flat buffer loads rebased into each producer's realize
    /// region. Order matters: realize mins reference consumer *loop*
    /// variables which may coincide with this stage's axis variables, so
    /// they must be added after the substitution has run.
    fn convert_body_expr(
        &self,
        e: &Expr,
        axis_sub: &HashMap<VarId, Expr>,
    ) -> Result<Expr, TeError> {
        let substituted = tvm_ir::substitute(e, axis_sub);
        self.convert_reads(&substituted)
    }

    fn convert_reads(&self, e: &Expr) -> Result<Expr, TeError> {
        struct C<'b, 'c> {
            em: &'b Emitter<'c>,
            error: Option<TeError>,
        }
        impl tvm_ir::Mutator for C<'_, '_> {
            fn mutate_expr(&mut self, e: &Expr) -> Expr {
                if let ExprNode::Call { name, args, .. } = &*e.0 {
                    if let Some(id) = crate::tensor::parse_read_key(name) {
                        let args: Vec<Expr> = args.iter().map(|a| self.mutate_expr(a)).collect();
                        match self.em.flat_read(id, &args) {
                            Ok(load) => return load,
                            Err(te) => {
                                self.error.get_or_insert(te);
                                return e.clone();
                            }
                        }
                    }
                }
                self.default_mutate_expr(e)
            }
        }
        let mut c = C {
            em: self,
            error: None,
        };
        let out = tvm_ir::Mutator::mutate_expr(&mut c, e);
        match c.error {
            Some(te) => Err(te),
            None => Ok(out),
        }
    }

    fn flat_read(&self, id: OpId, idx: &[Expr]) -> Result<Expr, TeError> {
        let buf = self
            .buffers
            .get(&id)
            .ok_or_else(|| TeError::msg(format!("no buffer for read of op {id:?}")))?;
        let sd = self
            .plan
            .data
            .get(&id)
            .ok_or_else(|| TeError::msg(format!("no bounds for read of op {id:?}")))?;
        let strides = row_major_strides(&sd.realize_ext);
        let mut flat = Expr::int(0);
        for (d, e) in idx.iter().enumerate() {
            let local = e.clone() - sd.realize_min[d].clone();
            flat = flat + local * Expr::int(strides[d]);
        }
        Ok(Expr::load(buf, tvm_ir::simplify(&flat)))
    }

    fn plan_stage(&self, op: OpId) -> Result<Plan, TeError> {
        let stage = self
            .sched
            .stage_by_op(op)
            .ok_or_else(|| TeError::msg("missing stage"))?;
        let sd = &self.plan.data[&op];
        let body =
            self.plan.bodies.get(&op).ok_or_else(|| {
                TeError::msg(format!("stage `{}` has no body", stage.tensor.name()))
            })?;
        let leaves = stage.leaf_iters.clone();
        let self_buf = self.buffers[&op].clone();
        let strides = self.strides_of(op);
        let dtype = stage.tensor.dtype();

        // Coordinate substitution for the body: axis -> min + local expr.
        let mut axis_sub: HashMap<VarId, Expr> = HashMap::new();
        let axes = stage.tensor.op.axes();
        for (d, axis) in axes.iter().enumerate() {
            let local = sd
                .var_expr
                .get(&axis.var.id())
                .cloned()
                .unwrap_or_else(|| axis.expr());
            axis_sub.insert(axis.var.id(), sd.realize_min[d].clone() + local);
        }
        if let ComputeBody::Reduce { axes: raxes, .. } = body {
            for r in raxes {
                let local = sd
                    .var_expr
                    .get(&r.var.id())
                    .cloned()
                    .unwrap_or_else(|| r.expr());
                axis_sub.insert(r.var.id(), local);
            }
        }

        // Store index (local coordinates).
        let mut store_idx = Expr::int(0);
        for (d, axis) in axes.iter().enumerate() {
            let local = sd
                .var_expr
                .get(&axis.var.id())
                .cloned()
                .unwrap_or_else(|| axis.expr());
            store_idx = store_idx + local * Expr::int(strides[d]);
        }
        let store_idx = tvm_ir::simplify(&store_idx);

        let mut data_guards: Vec<Expr> = sd
            .guards
            .iter()
            .filter(|(_, k)| *k == IterKind::Data)
            .map(|(g, _)| g.clone())
            .collect();
        let mut all_guards: Vec<Expr> = sd.guards.iter().map(|(g, _)| g.clone()).collect();
        // Attached stages may realize a region that overruns the tensor
        // when the consumer's own tiles are guarded; clamp computation to
        // the declared shape. The simplifier drops these when provably
        // in-bounds. Tensorized stages assert perfect tiling instead.
        if stage.tensorize_at.is_none() {
            let shape = stage.tensor.shape();
            for (d, axis) in axes.iter().enumerate() {
                let full = sd.realize_min[d].as_int() == Some(0) && sd.realize_ext[d] == shape[d];
                if !full {
                    let coord = axis_sub[&axis.var.id()].clone();
                    let g = coord.lt(Expr::int(shape[d]));
                    data_guards.push(g.clone());
                    all_guards.push(g);
                }
            }
        }
        let guard = |stmt: Stmt, gs: &[Expr]| -> Stmt {
            if gs.is_empty() {
                stmt
            } else {
                let cond = gs[1..]
                    .iter()
                    .fold(gs[0].clone(), |acc, g| acc.and(g.clone()));
                Stmt::if_then(cond, stmt)
            }
        };

        // Tensorize position.
        let ten = stage.tensorize_at.as_ref();
        let ten_pos = match ten {
            Some((vid, _)) => Some(
                leaves
                    .iter()
                    .position(|l| l.var.id() == *vid)
                    .ok_or_else(|| TeError::msg("tensorize target is not a leaf"))?,
            ),
            None => None,
        };

        // First reduce leaf (init position).
        let init_pos = match body {
            ComputeBody::Reduce { .. } => Some(
                leaves
                    .iter()
                    .position(|l| l.kind == IterKind::Reduce)
                    .unwrap_or(0),
            ),
            ComputeBody::Plain(_) => None,
        };

        let (init_stmt, body_stmt, init_loop_leaves) = match ten {
            None => match body {
                ComputeBody::Plain(e) => {
                    let val = self.convert_body_expr(e, &axis_sub)?;
                    let st = guard(Stmt::store(&self_buf, store_idx.clone(), val), &all_guards);
                    (None, st, Vec::new())
                }
                ComputeBody::Reduce {
                    combiner, source, ..
                } => {
                    let val = self.convert_body_expr(source, &axis_sub)?;
                    let acc = Expr::load(&self_buf, store_idx.clone());
                    let upd = Stmt::store(&self_buf, store_idx.clone(), combiner.combine(acc, val));
                    let upd = guard(upd, &all_guards);
                    let init = Stmt::store(&self_buf, store_idx.clone(), combiner.identity(dtype));
                    let init = guard(init, &data_guards);
                    let p = init_pos.expect("reduce has init pos");
                    let end = ten_pos.unwrap_or(leaves.len());
                    let init_leaves: Vec<IterVar> = leaves[p..end]
                        .iter()
                        .filter(|l| l.kind == IterKind::Data)
                        .cloned()
                        .collect();
                    (Some(init), upd, init_leaves)
                }
            },
            Some((_, intrin)) => {
                let tp = ten_pos.expect("position resolved");
                // Guards may not reference tensorized leaves.
                let ten_ids: HashSet<VarId> = leaves[tp..].iter().map(|l| l.var.id()).collect();
                for (g, _) in &sd.guards {
                    for v in tvm_ir::collect_vars(g) {
                        if ten_ids.contains(&v.id()) {
                            return err(format!(
                                "tensorize region of `{}` has a non-perfect split",
                                stage.tensor.name()
                            ));
                        }
                    }
                }
                // Extent checks.
                let data_prod: i64 = leaves[tp..]
                    .iter()
                    .filter(|l| l.kind == IterKind::Data)
                    .map(|l| sd.extents[&l.var.id()])
                    .product();
                let red_prod: i64 = leaves[tp..]
                    .iter()
                    .filter(|l| l.kind == IterKind::Reduce)
                    .map(|l| sd.extents[&l.var.id()])
                    .product();
                let want_data: i64 = intrin.output_shape().iter().product();
                let want_red: i64 = intrin.reduce_extents().iter().product::<i64>().max(1);
                if data_prod != want_data || red_prod != want_red {
                    return err(format!(
                        "tensorize mismatch on `{}`: loops cover {}x{} but intrinsic `{}` covers {}x{}",
                        stage.tensor.name(), data_prod, red_prod, intrin.name(), want_data, want_red
                    ));
                }
                // Zero the tensorized leaves to get slice origins.
                let zero_sub: HashMap<VarId, Expr> =
                    ten_ids.iter().map(|id| (*id, Expr::int(0))).collect();
                let out_off = tvm_ir::simplify(&tvm_ir::substitute(&store_idx, &zero_sub));
                let output = BufferSlice {
                    var: self_buf.clone(),
                    offset: out_off,
                    strides: strides.iter().map(|s| Expr::int(*s)).collect(),
                    shape: intrin.output_shape().to_vec(),
                    dtype,
                };
                // Input slices, in body read order.
                let mut inputs: Vec<BufferSlice> = Vec::new();
                let lookup = |id: OpId| self.sched.tensor(id).cloned();
                collect_reads(body.source_expr(), &lookup, &mut |t, idx| {
                    let id = t.op_id();
                    let tsd = &self.plan.data[&id];
                    let tstr = row_major_strides(&tsd.realize_ext);
                    let mut flat = Expr::int(0);
                    for (d, e) in idx.iter().enumerate() {
                        let e = tvm_ir::substitute(e, &axis_sub);
                        let local = e - tsd.realize_min[d].clone();
                        flat = flat + local * Expr::int(tstr[d]);
                    }
                    let off = tvm_ir::simplify(&tvm_ir::substitute(&flat, &zero_sub));
                    inputs.push(BufferSlice {
                        var: self.buffers[&id].clone(),
                        offset: off,
                        strides: tstr.iter().map(|s| Expr::int(*s)).collect(),
                        shape: tsd.realize_ext.clone(),
                        dtype: t.dtype(),
                    });
                })?;
                let imp = (intrin.0.lower)(&inputs, &output);
                // When the whole reduction sits inside the tensorized
                // region, the reset belongs at the tensorize position.
                let p = init_pos.unwrap_or(0).min(tp);
                let init_leaves: Vec<IterVar> = leaves[p..tp]
                    .iter()
                    .filter(|l| l.kind == IterKind::Data)
                    .cloned()
                    .collect();
                (imp.reset, imp.body, init_leaves)
            }
        };

        Ok(Plan {
            op,
            leaves,
            init_pos,
            init_stmt,
            init_loop_leaves,
            body_stmt,
            ten_pos,
        })
    }

    fn emit_stage(&mut self, op: OpId) -> Result<Stmt, TeError> {
        let plan = self.plan_stage(op)?;
        self.emit_from(&plan, 0)
    }

    fn emit_from(&mut self, plan: &Plan, idx: usize) -> Result<Stmt, TeError> {
        if Some(idx) == plan.ten_pos || idx == plan.leaves.len() {
            // A reduction fully covered by the tensorized region needs its
            // reset emitted right before the intrinsic body.
            if Some(idx) == plan.ten_pos && plan.init_pos.map(|p| p >= idx).unwrap_or(false) {
                let init = plan.init_stmt.clone().unwrap_or_else(Stmt::nop);
                return Ok(Stmt::seq(vec![init, plan.body_stmt.clone()]));
            }
            return Ok(plan.body_stmt.clone());
        }
        let stage = self.sched.stage_by_op(plan.op).expect("stage exists");
        let sd = &self.plan.data[&plan.op];
        let leaf = plan.leaves[idx].clone();
        let ext = *sd
            .extents
            .get(&leaf.var.id())
            .ok_or_else(|| TeError::msg(format!("no extent for leaf `{}`", leaf.var.name())))?;

        let mut inner = self.emit_from(plan, idx + 1)?;

        // Attached producers nest right after this loop opens. All
        // allocations are hoisted above one flat sequence so downstream
        // passes (DAE token injection) see the producer groups and the
        // consumer as siblings.
        if let Some(list) = self.plan.attach_map.get(&(plan.op, leaf.var.id())).cloned() {
            let mut items: Vec<Stmt> = Vec::new();
            let mut allocs: Vec<(Var, DType, i64, MemScope)> = Vec::new();
            for p in list {
                let p_stage = self.sched.stage_by_op(p).expect("attached stage exists");
                let scope = p_stage.scope;
                let dtype = p_stage.tensor.dtype();
                let buf = self.buffers[&p].clone();
                let extent: i64 = self.plan.data[&p]
                    .realize_ext
                    .iter()
                    .product::<i64>()
                    .max(1);
                let nest = self.emit_stage(p)?;
                if scope == MemScope::Shared {
                    // WAR: previous iteration's readers must finish before
                    // the tile is overwritten; RAW: make it visible after.
                    items.push(Stmt::new(StmtNode::Barrier));
                    items.push(nest);
                    items.push(Stmt::new(StmtNode::Barrier));
                } else {
                    items.push(nest);
                }
                allocs.push((buf, dtype, extent, scope));
            }
            items.push(inner);
            inner = Stmt::seq(items);
            for (buf, dtype, extent, scope) in allocs.into_iter().rev() {
                inner = Stmt::allocate(&buf, dtype, extent, scope, inner);
            }
        }

        let attr = stage
            .iter_attrs
            .get(&leaf.var.id())
            .cloned()
            .unwrap_or_default();
        let loop_stmt = if let Some(tag) = attr.thread {
            // Thread-bound loops are elided here: every leaf bound to the
            // same tag unifies with the pre-scanned canonical variable, and
            // the kernel is wrapped with a single loop nest per tag at the
            // end of lowering (all statements in a kernel execute on every
            // thread, as on real hardware). A stage binding fewer
            // iterations than the canonical extent runs under a guard.
            let (tv, text) = self.plan.thread_vars.get(&tag).cloned().ok_or_else(|| {
                TeError::msg(format!("thread axis {} not pre-scanned", tag.name()))
            })?;
            let mut m = HashMap::new();
            m.insert(leaf.var.id(), tv.to_expr());
            let unified = tvm_ir::substitute_stmt(&inner, &m);
            if ext < text {
                Stmt::if_then(tv.to_expr().lt(Expr::int(ext)), unified)
            } else {
                unified
            }
        } else {
            let kind = match attr.ann {
                Some(LoopAnn::Vectorize) => ForKind::Vectorized,
                Some(LoopAnn::Unroll) => ForKind::Unrolled,
                Some(LoopAnn::Parallel) => ForKind::Parallel,
                Some(LoopAnn::VThread) => ForKind::VThread,
                None => ForKind::Serial,
            };
            let f = Stmt::loop_(&leaf.var, 0, ext, kind, inner);
            match &attr.pragma {
                Some(key) => Stmt::attr(format!("pragma.{key}"), Expr::int(ext), f),
                None => f,
            }
        };

        if Some(idx) == plan.init_pos && plan.ten_pos.map(|t| idx < t).unwrap_or(true) {
            let mut init = plan.init_stmt.clone().unwrap_or_else(Stmt::nop);
            for l in plan.init_loop_leaves.iter().rev() {
                let e = sd.extents[&l.var.id()];
                init = Stmt::for_(&l.var, 0, e, init);
            }
            Ok(Stmt::seq(vec![init, loop_stmt]))
        } else {
            Ok(loop_stmt)
        }
    }
}

fn row_major_strides(exts: &[i64]) -> Vec<i64> {
    let mut strides = vec![1i64; exts.len()];
    for d in (0..exts.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * exts[d + 1];
    }
    strides
}

/// Hoists shared-memory allocations out of thread-bound loops so that one
/// tile is shared by the whole thread block.
fn hoist_shared_allocs(s: &Stmt) -> Stmt {
    use tvm_ir::Mutator;
    struct H;
    impl Mutator for H {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            if let StmtNode::For {
                kind: ForKind::ThreadBinding(tag),
                ..
            } = &*s.0
            {
                if !tag.is_block() {
                    let mut specs = Vec::new();
                    let stripped = strip_shared(s, &mut specs);
                    let mut out = stripped;
                    for (buf, dtype, extent) in specs.into_iter().rev() {
                        out = Stmt::allocate(&buf, dtype, extent, MemScope::Shared, out);
                    }
                    return out;
                }
            }
            self.default_mutate_stmt(s)
        }
    }
    H.mutate_stmt(s)
}

fn strip_shared(s: &Stmt, specs: &mut Vec<(Var, DType, Expr)>) -> Stmt {
    use tvm_ir::Mutator;
    struct S<'a> {
        specs: &'a mut Vec<(Var, DType, Expr)>,
    }
    impl Mutator for S<'_> {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            if let StmtNode::Allocate {
                buffer,
                dtype,
                extent,
                scope: MemScope::Shared,
                body,
            } = &*s.0
            {
                self.specs.push((buffer.clone(), *dtype, extent.clone()));
                return self.mutate_stmt(body);
            }
            self.default_mutate_stmt(s)
        }
    }
    S { specs }.mutate_stmt(s)
}
