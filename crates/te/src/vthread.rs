//! Virtual-thread lowering and explicit memory-latency hiding (§4.4, Fig 8).
//!
//! Decoupled access-execute (DAE) accelerators run their load, compute and
//! store units concurrently; correctness is enforced by dependence-token
//! queues between units. This module implements the paper's two-step
//! lowering:
//!
//! 1. **Token injection** — within each loop level, buffer read/write sets
//!    are computed per statement group and classified by executing unit;
//!    RAW edges get `push_dep_to`/`pop_dep_from` pairs, and cyclic WAR
//!    edges (a unit overwriting a buffer a downstream unit still reads)
//!    additionally get seed credits before the loop and drain pops after
//!    it — reproducing Fig. 8's middle column.
//! 2. **Virtual-thread interleaving** — each `vthread` loop is unrolled;
//!    buffers allocated inside it are duplicated per virtual thread and the
//!    copies' instruction streams are interleaved under the shared serial
//!    loops, yielding the single synchronized instruction stream of Fig.
//!    8's right column. The hardware (the VDLA simulator) then recovers
//!    pipeline parallelism from the tokens.

use std::collections::{HashMap, HashSet};

use tvm_ir::expr::ExprNode;
use tvm_ir::stmt::StmtNode;
use tvm_ir::{Expr, ForKind, MemScope, Mutator, PipeStage, Stmt, Var, VarId, Visitor};

/// Replaces `vthread` loops with ordinary serial loops — the correct
/// lowering for targets without a DAE pipeline (CPU/GPU).
pub fn lower_vthreads(s: &Stmt) -> Stmt {
    struct M;
    impl Mutator for M {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            if let StmtNode::For {
                var,
                min,
                extent,
                kind: ForKind::VThread,
                body,
            } = &*s.0
            {
                let body = self.mutate_stmt(body);
                return Stmt::loop_(var, min.clone(), extent.clone(), ForKind::Serial, body);
            }
            self.default_mutate_stmt(s)
        }
    }
    M.mutate_stmt(s)
}

/// Full DAE lowering: token injection plus virtual-thread interleaving.
pub fn lower_dae(s: &Stmt) -> Stmt {
    let scopes = collect_scopes(s);
    let mut found = false;
    let out = map_vthreads(s, &scopes, &mut found);
    if found {
        out
    } else {
        inject_sync(&out, false, &scopes)
    }
}

fn map_vthreads(s: &Stmt, scopes: &HashMap<VarId, MemScope>, found: &mut bool) -> Stmt {
    struct M<'a> {
        scopes: &'a HashMap<VarId, MemScope>,
        found: &'a mut bool,
    }
    impl Mutator for M<'_> {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            if let StmtNode::For {
                var,
                min,
                extent,
                kind: ForKind::VThread,
                body,
            } = &*s.0
            {
                *self.found = true;
                let body = self.mutate_stmt(body);
                let lo = min.as_int().unwrap_or(0);
                let n = extent.as_int().unwrap_or(1);
                let synced = inject_sync(&body, true, self.scopes);
                return interleave(&synced, var, lo, n);
            }
            self.default_mutate_stmt(s)
        }
    }
    M {
        scopes,
        found: &mut *found,
    }
    .mutate_stmt(s)
}

/// Collects allocation scopes; unknown buffers (function params) are global.
pub fn collect_scopes(s: &Stmt) -> HashMap<VarId, MemScope> {
    struct C {
        out: HashMap<VarId, MemScope>,
    }
    impl Visitor for C {
        fn visit_stmt(&mut self, s: &Stmt) {
            if let StmtNode::Allocate { buffer, scope, .. } = &*s.0 {
                self.out.insert(buffer.id(), *scope);
            }
            self.walk_stmt(s);
        }
    }
    let mut c = C {
        out: HashMap::new(),
    };
    c.visit_stmt(s);
    c.out
}

fn scope_of(scopes: &HashMap<VarId, MemScope>, id: VarId) -> MemScope {
    scopes.get(&id).copied().unwrap_or(MemScope::Global)
}

/// The unit that executes a store into a buffer of the given scope.
fn unit_of_store(scope: MemScope) -> PipeStage {
    match scope {
        MemScope::InpBuffer | MemScope::WgtBuffer => PipeStage::Load,
        MemScope::AccBuffer | MemScope::Local | MemScope::Shared => PipeStage::Compute,
        MemScope::Global => PipeStage::Store,
    }
}

fn unit_of_intrinsic(name: &str) -> Option<PipeStage> {
    if name.contains("load") {
        Some(PipeStage::Load)
    } else if name.contains("store") {
        Some(PipeStage::Store)
    } else if name.contains("gemm") || name.contains("alu") || name.contains("fill") {
        Some(PipeStage::Compute)
    } else {
        None
    }
}

/// Per-item buffer access summary: which unit writes / reads each buffer.
#[derive(Default, Clone, Debug)]
struct GroupInfo {
    writes: HashMap<VarId, PipeStage>,
    reads: HashMap<VarId, Vec<PipeStage>>,
}

fn group_info(s: &Stmt, scopes: &HashMap<VarId, MemScope>) -> GroupInfo {
    struct G<'a> {
        scopes: &'a HashMap<VarId, MemScope>,
        info: GroupInfo,
    }
    impl G<'_> {
        fn add_read(&mut self, id: VarId, unit: PipeStage) {
            let v = self.info.reads.entry(id).or_default();
            if !v.contains(&unit) {
                v.push(unit);
            }
        }
        fn collect_loads(&mut self, e: &Expr, unit: PipeStage) {
            struct L<'b, 'c> {
                g: &'b mut G<'c>,
                unit: PipeStage,
            }
            impl Visitor for L<'_, '_> {
                fn visit_expr(&mut self, e: &Expr) {
                    if let ExprNode::Load { buffer, .. } = &*e.0 {
                        self.g.add_read(buffer.id(), self.unit);
                    }
                    self.walk_expr(e);
                }
            }
            L { g: self, unit }.visit_expr(e);
        }
    }
    impl Visitor for G<'_> {
        fn visit_stmt(&mut self, s: &Stmt) {
            match &*s.0 {
                StmtNode::Store {
                    buffer,
                    index,
                    value,
                    predicate,
                } => {
                    let unit = unit_of_store(scope_of(self.scopes, buffer.id()));
                    self.info.writes.insert(buffer.id(), unit);
                    self.collect_loads(value, unit);
                    self.collect_loads(index, unit);
                    if let Some(p) = predicate {
                        self.collect_loads(p, unit);
                    }
                }
                StmtNode::Evaluate(e) => {
                    if let ExprNode::Call { name, args, .. } = &*e.0 {
                        if let Some(unit) = unit_of_intrinsic(name) {
                            // Convention: the first buffer-handle argument is
                            // the output; the rest are inputs.
                            let mut first = true;
                            for a in args {
                                if let ExprNode::Var(v) = &*a.0 {
                                    if first {
                                        self.info.writes.insert(v.id(), unit);
                                        first = false;
                                    } else {
                                        self.add_read(v.id(), unit);
                                    }
                                }
                            }
                        }
                    }
                    self.walk_stmt(s);
                }
                _ => self.walk_stmt(s),
            }
        }
    }
    let mut g = G {
        scopes,
        info: GroupInfo::default(),
    };
    g.visit_stmt(s);
    g.info
}

/// Injects DAE tokens across the whole statement. `cyclic_top` treats the
/// outermost statement sequence as the body of an implicit enclosing loop
/// (true for virtual-thread bodies, which repeat per outer tile).
pub fn inject_sync(s: &Stmt, cyclic_top: bool, scopes: &HashMap<VarId, MemScope>) -> Stmt {
    let rewritten = rewrite_loops(s, scopes);
    let (body, seeds, drains) = tokenize_level(&rewritten, cyclic_top, scopes);
    let mut items = seeds;
    items.push(body);
    items.extend(drains);
    Stmt::seq(items)
}

/// Recursively processes inner loops: each serial loop body becomes a
/// tokenized level, with its cyclic seeds/drains hoisted around the loop.
fn rewrite_loops(s: &Stmt, scopes: &HashMap<VarId, MemScope>) -> Stmt {
    struct R<'a> {
        scopes: &'a HashMap<VarId, MemScope>,
    }
    impl Mutator for R<'_> {
        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            if let StmtNode::For {
                var,
                min,
                extent,
                kind,
                body,
            } = &*s.0
            {
                if !matches!(kind, ForKind::VThread) {
                    let body = self.mutate_stmt(body);
                    let (body, seeds, drains) = tokenize_level(&body, true, self.scopes);
                    let f = Stmt::loop_(var, min.clone(), extent.clone(), *kind, body);
                    let mut items = seeds;
                    items.push(f);
                    items.extend(drains);
                    return Stmt::seq(items);
                }
            }
            self.default_mutate_stmt(s)
        }
    }
    R { scopes }.mutate_stmt(s)
}

/// Tokenizes one level. Returns the transformed statement plus the seed
/// credits and drain pops that must be placed before/after the enclosing
/// loop.
fn tokenize_level(
    s: &Stmt,
    cyclic: bool,
    scopes: &HashMap<VarId, MemScope>,
) -> (Stmt, Vec<Stmt>, Vec<Stmt>) {
    match &*s.0 {
        // Transparent wrappers: the level continues inside.
        StmtNode::Allocate {
            buffer,
            dtype,
            extent,
            scope,
            body,
        } => {
            let (b, seeds, drains) = tokenize_level(body, cyclic, scopes);
            (
                Stmt::allocate(buffer, *dtype, extent.clone(), *scope, b),
                seeds,
                drains,
            )
        }
        StmtNode::LetStmt { var, value, body } => {
            let (b, seeds, drains) = tokenize_level(body, cyclic, scopes);
            (
                Stmt::new(StmtNode::LetStmt {
                    var: var.clone(),
                    value: value.clone(),
                    body: b,
                }),
                seeds,
                drains,
            )
        }
        StmtNode::Seq(items) => {
            let (items, seeds, drains) = tokenize_items(items, cyclic, scopes);
            (Stmt::seq(items), seeds, drains)
        }
        _ => {
            let (items, seeds, drains) = tokenize_items(std::slice::from_ref(s), cyclic, scopes);
            (Stmt::seq(items), seeds, drains)
        }
    }
}

fn push_tok(from: PipeStage, to: PipeStage) -> Stmt {
    Stmt::new(StmtNode::PushDep { from, to })
}

fn pop_tok(by: PipeStage, from: PipeStage) -> Stmt {
    Stmt::new(StmtNode::PopDep { by, from })
}

fn tokenize_items(
    items: &[Stmt],
    cyclic: bool,
    scopes: &HashMap<VarId, MemScope>,
) -> (Vec<Stmt>, Vec<Stmt>, Vec<Stmt>) {
    let infos: Vec<GroupInfo> = items.iter().map(|it| group_info(it, scopes)).collect();
    let n = items.len();
    let mut prefix: Vec<Vec<Stmt>> = vec![Vec::new(); n];
    let mut suffix: Vec<Vec<Stmt>> = vec![Vec::new(); n];
    let mut seeds: Vec<Stmt> = Vec::new();
    let mut drains: Vec<Stmt> = Vec::new();
    let mut raw_done: HashSet<(usize, usize, PipeStage, PipeStage)> = HashSet::new();
    let mut war_done: HashSet<(usize, usize, PipeStage, PipeStage)> = HashSet::new();

    // Forward RAW: item i writes a buffer item j (> i) reads on another unit.
    for i in 0..n {
        for j in i + 1..n {
            for (buf, uw) in &infos[i].writes {
                if let Some(readers) = infos[j].reads.get(buf) {
                    for ur in readers {
                        if ur != uw && raw_done.insert((i, j, *uw, *ur)) {
                            suffix[i].push(push_tok(*uw, *ur));
                            prefix[j].push(pop_tok(*ur, *uw));
                        }
                    }
                }
            }
        }
    }
    // Cyclic WAR: item iw's next-iteration write must wait for item ir's
    // current-iteration read to finish.
    if cyclic {
        for iw in 0..n {
            for ir in 0..n {
                if iw == ir {
                    continue;
                }
                for (buf, uw) in &infos[iw].writes {
                    if let Some(readers) = infos[ir].reads.get(buf) {
                        for ur in readers {
                            if ur != uw && war_done.insert((iw, ir, *uw, *ur)) {
                                prefix[iw].push(pop_tok(*uw, *ur));
                                suffix[ir].push(push_tok(*ur, *uw));
                                seeds.push(push_tok(*ur, *uw));
                                drains.push(pop_tok(*uw, *ur));
                            }
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        out.append(&mut prefix[i]);
        out.push(item.clone());
        out.append(&mut suffix[i]);
    }
    (out, seeds, drains)
}

type CopySubst = (i64, HashMap<VarId, Var>);

/// Unrolls a virtual-thread loop, duplicating buffers allocated inside it
/// and interleaving the copies' statements under shared serial loops.
pub fn interleave(body: &Stmt, var: &Var, lo: i64, n: i64) -> Stmt {
    let copies: Vec<CopySubst> = (0..n).map(|i| (lo + i, HashMap::new())).collect();
    push_copies(body, var, &copies)
}

/// True when the subtree contains a pipeline boundary: a DMA pragma region
/// or dependence tokens.
fn has_boundary(s: &Stmt) -> bool {
    match &*s.0 {
        StmtNode::AttrStmt { key, .. } if key.starts_with("pragma.") => true,
        StmtNode::PushDep { .. } | StmtNode::PopDep { .. } => true,
        StmtNode::For { body, .. } => has_boundary(body),
        StmtNode::Seq(items) => items.iter().any(has_boundary),
        StmtNode::Allocate { body, .. }
        | StmtNode::AttrStmt { body, .. }
        | StmtNode::LetStmt { body, .. } => has_boundary(body),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => has_boundary(then_case) || else_case.as_ref().is_some_and(has_boundary),
        _ => false,
    }
}

/// True when the statement contains a loop that must stay shared across
/// virtual threads: a loop whose body has pipeline boundaries is the
/// software-pipeline loop the copies interleave within. Everything else —
/// including pure-compute loop nests and the tokens bracketing them — is
/// duplicated whole per copy so each copy's token/op bracket stays intact.
fn contains_shared_loop(s: &Stmt) -> bool {
    match &*s.0 {
        StmtNode::AttrStmt { key, .. } if key.starts_with("pragma.") => false,
        StmtNode::For { body, .. } => has_boundary(body),
        StmtNode::Seq(items) => items.iter().any(contains_shared_loop),
        StmtNode::Allocate { body, .. }
        | StmtNode::AttrStmt { body, .. }
        | StmtNode::LetStmt { body, .. } => contains_shared_loop(body),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => {
            contains_shared_loop(then_case) || else_case.as_ref().is_some_and(contains_shared_loop)
        }
        _ => false,
    }
}

fn dup_for_copy(s: &Stmt, var: &Var, copy: &CopySubst) -> Stmt {
    let (i, bufmap) = copy;
    let mut vsub = HashMap::new();
    vsub.insert(var.id(), Expr::int(*i));
    let s1 = tvm_ir::substitute_stmt(s, &vsub);
    crate::rewrite::substitute_buffers(&s1, bufmap)
}

fn push_copies(s: &Stmt, var: &Var, copies: &[CopySubst]) -> Stmt {
    match &*s.0 {
        StmtNode::For {
            var: lv,
            min,
            extent,
            kind,
            body,
        } if !matches!(kind, ForKind::VThread) => {
            if has_boundary(body) {
                // Pipeline loop: shared across copies, interleave inside.
                Stmt::loop_(
                    lv,
                    min.clone(),
                    extent.clone(),
                    *kind,
                    push_copies(body, var, copies),
                )
            } else {
                // Pure compute nest: one whole copy per virtual thread.
                Stmt::seq(copies.iter().map(|c| dup_for_copy(s, var, c)).collect())
            }
        }
        StmtNode::Seq(items) => {
            // Interleave at per-virtual-thread *group* granularity (Fig. 8
            // right column): maximal runs of leaf statements — including
            // their dependence tokens — are emitted copy-by-copy, so a
            // unit's token pops pair with the pushes of the same copy's
            // producers; statements containing shared loops recurse.
            let mut out: Vec<Stmt> = Vec::new();
            let mut run: Vec<Stmt> = Vec::new();
            let flush = |run: &mut Vec<Stmt>, out: &mut Vec<Stmt>| {
                if run.is_empty() {
                    return;
                }
                for copy in copies {
                    for item in run.iter() {
                        out.push(dup_for_copy(item, var, copy));
                    }
                }
                run.clear();
            };
            for item in items {
                if contains_shared_loop(item) {
                    flush(&mut run, &mut out);
                    out.push(push_copies(item, var, copies));
                } else {
                    run.push(item.clone());
                }
            }
            flush(&mut run, &mut out);
            Stmt::seq(out)
        }
        StmtNode::Allocate {
            buffer,
            dtype,
            extent,
            scope,
            body,
        } => {
            let mut new_copies = copies.to_vec();
            let mut fresh: Vec<Var> = Vec::new();
            for (i, (_, map)) in new_copies.iter_mut().enumerate() {
                let nv = Var::new(format!("{}.v{}", buffer.name(), i), buffer.dtype());
                map.insert(buffer.id(), nv.clone());
                fresh.push(nv);
            }
            let mut inner = push_copies(body, var, &new_copies);
            for nv in fresh.into_iter().rev() {
                inner = Stmt::allocate(&nv, *dtype, extent.clone(), *scope, inner);
            }
            inner
        }
        // Non-pragma attributes are transparent.
        StmtNode::AttrStmt { key, value, body } if !key.starts_with("pragma.") => {
            Stmt::attr(key.clone(), value.clone(), push_copies(body, var, copies))
        }
        // Single leaf: one copy per virtual thread.
        _ => Stmt::seq(copies.iter().map(|c| dup_for_copy(s, var, c)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_ir::{DType, Interp};

    #[test]
    fn serialize_vthreads_preserves_semantics() {
        let out = Var::new("O", DType::float32());
        let v = Var::int("vt");
        let i = Var::int("i");
        let body = Stmt::for_(
            &i,
            0,
            4,
            Stmt::store(
                &out,
                v.clone() * 4 + i.clone(),
                (v.clone() * 4 + i.clone()).cast(DType::float32()),
            ),
        );
        let s = Stmt::loop_(&v, 0, 2, ForKind::VThread, body);
        let lowered = lower_vthreads(&s);
        let f = tvm_ir::LoweredFunc {
            name: "t".into(),
            params: vec![out],
            param_dtypes: vec![DType::float32()],
            param_extents: vec![8],
            body: lowered,
        };
        let mut arrays = vec![vec![0.0f32; 8]];
        Interp::new().run_f32(&f, &mut arrays).expect("runs");
        assert_eq!(arrays[0], vec![0., 1., 2., 3., 4., 5., 6., 7.]);
    }

    #[test]
    fn interleave_duplicates_buffers_and_preserves_semantics() {
        // Each vthread accumulates into its own local buffer, then writes
        // back; interleaving must keep the accumulators separate.
        let out = Var::new("O", DType::float32());
        let acc = Var::new("acc", DType::float32());
        let v = Var::int("vt");
        let k = Var::int("k");
        let init = Stmt::store(&acc, Expr::int(0), Expr::f32(0.0));
        let upd = Stmt::store(
            &acc,
            Expr::int(0),
            Expr::load(&acc, Expr::int(0)) + (v.clone() + 1).cast(DType::float32()),
        );
        let kloop = Stmt::for_(&k, 0, 3, upd);
        let wb = Stmt::store(&out, v.to_expr(), Expr::load(&acc, Expr::int(0)));
        let body = Stmt::allocate(
            &acc,
            DType::float32(),
            1,
            MemScope::AccBuffer,
            Stmt::seq(vec![init, kloop, wb]),
        );
        let s = Stmt::loop_(&v, 0, 2, ForKind::VThread, body);
        let lowered = lower_dae(&s);
        let f = tvm_ir::LoweredFunc {
            name: "t".into(),
            params: vec![out],
            param_dtypes: vec![DType::float32()],
            param_extents: vec![2],
            body: lowered,
        };
        let mut arrays = vec![vec![0.0f32; 2]];
        Interp::new().run_f32(&f, &mut arrays).expect("runs");
        assert_eq!(arrays[0], vec![3.0, 6.0]);
    }

    #[test]
    fn tokens_inserted_for_load_compute_pipeline() {
        // inp-buffer fill (load unit) then acc accumulate (compute unit)
        // inside a loop: expect RAW push/pop and cyclic WAR tokens with
        // seeds/drains.
        let inp = Var::new("il", DType::float32());
        let acc = Var::new("acc", DType::float32());
        let src = Var::new("A", DType::float32());
        let k = Var::int("k");
        let load = Stmt::store(&inp, Expr::int(0), Expr::load(&src, k.to_expr()));
        let compute = Stmt::store(
            &acc,
            Expr::int(0),
            Expr::load(&acc, Expr::int(0)) + Expr::load(&inp, Expr::int(0)),
        );
        let body = Stmt::seq(vec![load, compute]);
        let kloop = Stmt::for_(&k, 0, 4, body);
        let prog = Stmt::allocate(
            &inp,
            DType::float32(),
            1,
            MemScope::InpBuffer,
            Stmt::allocate(&acc, DType::float32(), 1, MemScope::AccBuffer, kloop),
        );
        let out = lower_dae(&prog);
        let text = out.to_string();
        assert!(text.contains("ld.push_dep_to(ex)"), "{text}");
        assert!(text.contains("ex.pop_dep_from(ld)"), "{text}");
        assert!(text.contains("ex.push_dep_to(ld)"), "{text}");
        assert!(text.contains("ld.pop_dep_from(ex)"), "{text}");
        // Program still computes the same result.
        let f = tvm_ir::LoweredFunc {
            name: "t".into(),
            params: vec![src.clone()],
            param_dtypes: vec![DType::float32()],
            param_extents: vec![4],
            body: out,
        };
        let mut arrays = vec![vec![1.0f32, 2.0, 3.0, 4.0]];
        Interp::new().run_f32(&f, &mut arrays).expect("runs");
    }

    #[test]
    fn token_balance_in_loops() {
        // Static token balance: per (from,to) queue, pushes == pops when
        // weighting by loop trip counts.
        let inp = Var::new("il", DType::float32());
        let acc = Var::new("acc", DType::float32());
        let src = Var::new("A", DType::float32());
        let k = Var::int("k");
        let load = Stmt::store(&inp, Expr::int(0), Expr::load(&src, k.to_expr()));
        let compute = Stmt::store(
            &acc,
            Expr::int(0),
            Expr::load(&acc, Expr::int(0)) + Expr::load(&inp, Expr::int(0)),
        );
        let kloop = Stmt::for_(&k, 0, 7, Stmt::seq(vec![load, compute]));
        let prog = Stmt::allocate(
            &inp,
            DType::float32(),
            1,
            MemScope::InpBuffer,
            Stmt::allocate(&acc, DType::float32(), 1, MemScope::AccBuffer, kloop),
        );
        let out = lower_dae(&prog);
        fn count(s: &Stmt, mult: i64, pushes: &mut i64, pops: &mut i64) {
            match &*s.0 {
                StmtNode::PushDep { .. } => *pushes += mult,
                StmtNode::PopDep { .. } => *pops += mult,
                StmtNode::For { extent, body, .. } => {
                    count(body, mult * extent.as_int().unwrap_or(1), pushes, pops)
                }
                StmtNode::Seq(v) => {
                    for it in v {
                        count(it, mult, pushes, pops);
                    }
                }
                StmtNode::Allocate { body, .. }
                | StmtNode::AttrStmt { body, .. }
                | StmtNode::LetStmt { body, .. } => count(body, mult, pushes, pops),
                _ => {}
            }
        }
        let (mut pushes, mut pops) = (0, 0);
        count(&out, 1, &mut pushes, &mut pops);
        assert!(pushes > 0);
        assert_eq!(pushes, pops, "token queues must balance:\n{out}");
    }
}
