//! Schedules: trees of loop transformations over tensor expressions (§4.1).
//!
//! A [`Schedule`] holds one [`Stage`] per compute operation. Schedule
//! primitives (`split`, `tile`, `fuse`, `reorder`, `bind`, `compute_at`,
//! `cache_read`, `cache_write`, `set_scope`, `vectorize`, `unroll`,
//! `parallel`, `vthread`, `tensorize`, `pragma`) incrementally transform the
//! loop structure while preserving program semantics; the lowering pass
//! (`crate::lower`) turns the final schedule into a low-level loop program.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use tvm_ir::{Expr, MemScope, ThreadTag, Var, VarId};

use crate::tensor::{compute_with_axes, ComputeBody, ComputeSpec, IterVar, OpId, Tensor};
use crate::tensorize::TensorIntrin;

/// Typed error raised by schedule primitives instead of panicking: a bad
/// primitive application (wrong itervar, non-adjacent fuse, inlining an
/// output, ...) is a user input error, not a compiler invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// The itervar is not a leaf of the stage (wrong tensor, or the var was
    /// already split/fused away).
    NotALeaf {
        /// Offending itervar name.
        iter: String,
        /// Stage the caller addressed.
        stage: String,
    },
    /// The tensor's operation has no stage in this schedule.
    NotScheduled {
        /// The unscheduled tensor's name.
        tensor: String,
    },
    /// `split` with factor < 1.
    BadSplitFactor {
        /// The rejected factor.
        factor: i64,
        /// Stage being split.
        stage: String,
    },
    /// `fuse` on two leaves that are not adjacent in the current order.
    NotAdjacent {
        /// Requested outer leaf.
        outer: String,
        /// Requested inner leaf.
        inner: String,
        /// Stage being fused.
        stage: String,
    },
    /// `compute_inline` on an output stage.
    InlineOutput {
        /// The output stage.
        stage: String,
    },
    /// `compute_inline` on a reduction stage.
    InlineReduction {
        /// The reduction stage.
        stage: String,
    },
    /// A caching primitive addressed a stage with no compute body
    /// (a placeholder).
    NoBody {
        /// The primitive that failed.
        primitive: &'static str,
        /// The body-less stage/tensor.
        stage: String,
    },
    /// `cache_read` with an empty reader list.
    NoReaders {
        /// Tensor being cached.
        tensor: String,
    },
    /// `cache_write` applied after other primitives already transformed the
    /// stage (its reduce axes can no longer be moved).
    CacheWriteNotFirst {
        /// The already-transformed stage.
        stage: String,
    },
    /// An expression reads a tensor that cannot be resolved in the
    /// schedule's tensor context.
    UnregisteredRead {
        /// The unresolvable read key.
        name: String,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotALeaf { iter, stage } => {
                write!(f, "itervar `{iter}` is not a leaf of stage `{stage}`")
            }
            ScheduleError::NotScheduled { tensor } => {
                write!(f, "tensor `{tensor}` is not scheduled here")
            }
            ScheduleError::BadSplitFactor { factor, stage } => {
                write!(f, "split factor must be >= 1, got {factor} on `{stage}`")
            }
            ScheduleError::NotAdjacent {
                outer,
                inner,
                stage,
            } => write!(
                f,
                "fuse of `{outer}` and `{inner}` on `{stage}` requires adjacent \
                 leaves (reorder first)"
            ),
            ScheduleError::InlineOutput { stage } => {
                write!(f, "cannot inline output stage `{stage}`")
            }
            ScheduleError::InlineReduction { stage } => {
                write!(f, "cannot inline reduction stage `{stage}`")
            }
            ScheduleError::NoBody { primitive, stage } => {
                write!(f, "{primitive} target `{stage}` has no body")
            }
            ScheduleError::NoReaders { tensor } => {
                write!(f, "cache_read of `{tensor}` requires at least one reader")
            }
            ScheduleError::CacheWriteNotFirst { stage } => write!(
                f,
                "cache_write must be applied before other schedule primitives on `{stage}`"
            ),
            ScheduleError::UnregisteredRead { name } => {
                write!(f, "unregistered tensor read {name}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Loop annotation applied by annotation primitives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopAnn {
    /// SIMD-vectorize the loop.
    Vectorize,
    /// Fully unroll the loop.
    Unroll,
    /// Multi-core parallelize the loop.
    Parallel,
    /// Virtual thread for DAE latency hiding (§4.4).
    VThread,
}

/// Per-itervar schedule attributes.
#[derive(Clone, Default, Debug)]
pub struct IterAttr {
    /// Loop annotation, if any.
    pub ann: Option<LoopAnn>,
    /// GPU thread-axis binding, if any.
    pub thread: Option<ThreadTag>,
    /// Back-end pragma (e.g. `dma_copy` for accelerator DMA lowering).
    pub pragma: Option<String>,
}

/// Where a stage's computation is placed.
#[derive(Clone, Debug)]
pub enum Attach {
    /// At the top level of the function.
    Root,
    /// Substituted into consumers (no materialized loops or buffer).
    Inline,
    /// Nested inside `consumer`'s loop over `iter`.
    At {
        /// Consumer operation.
        consumer: OpId,
        /// Leaf iteration variable of the consumer to attach under.
        iter: Var,
    },
}

/// Iteration-variable relations produced by `split` and `fuse`.
#[derive(Clone, Debug)]
pub enum IterRelation {
    /// `parent` is rewritten as `outer * factor + inner`.
    Split {
        /// The variable being split.
        parent: Var,
        /// Outer result.
        outer: IterVar,
        /// Inner result (extent = `factor`).
        inner: IterVar,
        /// Split factor.
        factor: i64,
    },
    /// `fused` iterates the flattened product of `outer` then `inner`.
    Fuse {
        /// Original outer variable.
        outer: Var,
        /// Original inner variable.
        inner: Var,
        /// Fused result.
        fused: IterVar,
    },
}

/// One operation's scheduling state.
#[derive(Clone, Debug)]
pub struct Stage {
    /// The stage's output tensor.
    pub tensor: Tensor,
    /// Current loop order (outermost first).
    pub leaf_iters: Vec<IterVar>,
    /// Applied split/fuse relations, in application order.
    pub relations: Vec<IterRelation>,
    /// Placement.
    pub attach: Attach,
    /// Memory scope of the stage's buffer.
    pub scope: MemScope,
    /// Per-itervar annotations keyed by the itervar's variable id.
    pub iter_attrs: HashMap<VarId, IterAttr>,
    /// Tensorization: replace the loop nest from this leaf inwards with a
    /// hardware intrinsic (§4.3).
    pub tensorize_at: Option<(VarId, TensorIntrin)>,
    /// True for stages whose tensor is a function output.
    pub is_output: bool,
}

impl Stage {
    fn new(tensor: Tensor, is_output: bool) -> Stage {
        let mut leaf_iters = tensor.op.axes();
        leaf_iters.extend(tensor.op.reduce_axes());
        Stage {
            tensor,
            leaf_iters,
            relations: Vec::new(),
            attach: Attach::Root,
            scope: MemScope::Global,
            iter_attrs: HashMap::new(),
            tensorize_at: None,
            is_output,
        }
    }

    /// Operation id.
    pub fn op_id(&self) -> OpId {
        self.tensor.op_id()
    }

    /// Position of an itervar among the leaves.
    fn leaf_pos(&self, iv: &IterVar) -> Result<usize, ScheduleError> {
        self.leaf_iters
            .iter()
            .position(|l| l.var == iv.var)
            .ok_or_else(|| ScheduleError::NotALeaf {
                iter: iv.var.name().to_string(),
                stage: self.tensor.name().to_string(),
            })
    }

    /// Mutable attribute entry for an itervar.
    fn attr_mut(&mut self, iv: &IterVar) -> &mut IterAttr {
        self.iter_attrs.entry(iv.var.id()).or_default()
    }
}

/// A schedule over a tensor-expression DAG.
///
/// Besides the per-op [`Stage`]s, a schedule owns its *tensor context*
/// (every tensor reachable from the outputs, plus cache tensors created by
/// `cache_read`/`cache_write`) and per-op *spec overrides*. Schedule-time
/// dataflow rewrites land in the overrides instead of mutating the shared,
/// immutable ops, so many schedules over one operation graph — including
/// concurrent ones on tuning workers — never interfere.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Stages in topological order (producers before consumers).
    pub stages: Vec<Stage>,
    /// Function outputs.
    pub outputs: Vec<Tensor>,
    stage_of: HashMap<OpId, usize>,
    /// Every tensor this schedule can resolve a read of, keyed by op id.
    tensors: HashMap<OpId, Tensor>,
    /// Rewritten compute specs (`cache_read`/`cache_write`), keyed by op id;
    /// ops without an entry use their own spec.
    overrides: HashMap<OpId, Arc<ComputeSpec>>,
}

/// Creates a schedule for the given output tensors — `t.create_schedule` in
/// the paper's API.
pub fn create_schedule(outputs: &[Tensor]) -> Schedule {
    let mut order: Vec<Tensor> = Vec::new();
    let mut tensors: HashMap<OpId, Tensor> = HashMap::new();
    fn dfs(t: &Tensor, order: &mut Vec<Tensor>, tensors: &mut HashMap<OpId, Tensor>) {
        if tensors.contains_key(&t.op_id()) {
            return;
        }
        tensors.insert(t.op_id(), t.clone());
        for inp in t.op.input_tensors() {
            dfs(&inp, order, tensors);
        }
        if t.op.body().is_some() {
            order.push(t.clone());
        }
    }
    for t in outputs {
        dfs(t, &mut order, &mut tensors);
    }
    let mut stages = Vec::with_capacity(order.len());
    let mut stage_of = HashMap::new();
    for t in order {
        let is_output = outputs.iter().any(|o| o.op_id() == t.op_id());
        stage_of.insert(t.op_id(), stages.len());
        stages.push(Stage::new(t, is_output));
    }
    Schedule {
        stages,
        outputs: outputs.to_vec(),
        stage_of,
        tensors,
        overrides: HashMap::new(),
    }
}

impl Schedule {
    /// Resolves an op id to its tensor within this schedule's context.
    pub fn tensor(&self, id: OpId) -> Option<&Tensor> {
        self.tensors.get(&id)
    }

    /// The compute spec in effect for op `id` under this schedule: the
    /// override installed by `cache_read`/`cache_write` if any, else the
    /// op's own immutable spec. `None` for placeholders and unknown ops.
    pub fn spec(&self, id: OpId) -> Option<Arc<ComputeSpec>> {
        if let Some(s) = self.overrides.get(&id) {
            return Some(Arc::clone(s));
        }
        self.tensors.get(&id).and_then(|t| t.op.spec().cloned())
    }

    /// Input tensors op `id` reads *under this schedule* (first-read
    /// order), reflecting any `cache_read`/`cache_write` redirections.
    pub fn input_tensors_of(&self, id: OpId) -> Vec<Tensor> {
        self.spec(id).map_or_else(Vec::new, |s| s.reads.clone())
    }

    /// The stage scheduling `t`'s operation.
    pub fn stage(&self, t: &Tensor) -> Result<&Stage, ScheduleError> {
        Ok(&self.stages[self.stage_index(t)?])
    }

    /// Mutable stage access.
    pub fn stage_mut(&mut self, t: &Tensor) -> Result<&mut Stage, ScheduleError> {
        let i = self.stage_index(t)?;
        Ok(&mut self.stages[i])
    }

    /// Stage index of a tensor's op.
    pub fn stage_index(&self, t: &Tensor) -> Result<usize, ScheduleError> {
        self.stage_of
            .get(&t.op_id())
            .copied()
            .ok_or_else(|| ScheduleError::NotScheduled {
                tensor: t.name().to_string(),
            })
    }

    /// Stage lookup by op id.
    pub fn stage_by_op(&self, id: OpId) -> Option<&Stage> {
        self.stage_of.get(&id).map(|&i| &self.stages[i])
    }

    /// Splits a leaf itervar by `factor`, returning `(outer, inner)`.
    pub fn split(
        &mut self,
        t: &Tensor,
        iv: &IterVar,
        factor: i64,
    ) -> Result<(IterVar, IterVar), ScheduleError> {
        if factor < 1 {
            return Err(ScheduleError::BadSplitFactor {
                factor,
                stage: t.name().to_string(),
            });
        }
        let stage = self.stage_mut(t)?;
        let pos = stage.leaf_pos(iv)?;
        let outer = IterVar {
            kind: iv.kind,
            ..IterVar::derived(format!("{}.o", iv.var.name()))
        };
        let inner = IterVar {
            kind: iv.kind,
            ..IterVar::derived(format!("{}.i", iv.var.name()))
        };
        stage.relations.push(IterRelation::Split {
            parent: iv.var.clone(),
            outer: outer.clone(),
            inner: inner.clone(),
            factor,
        });
        stage
            .leaf_iters
            .splice(pos..=pos, [outer.clone(), inner.clone()]);
        Ok((outer, inner))
    }

    /// Tiles two leaf itervars — `s[C].tile(y, x, fy, fx)` — returning
    /// `(yo, xo, yi, xi)` and reordering the leaves accordingly.
    #[allow(clippy::type_complexity)]
    pub fn tile(
        &mut self,
        t: &Tensor,
        y: &IterVar,
        x: &IterVar,
        fy: i64,
        fx: i64,
    ) -> Result<(IterVar, IterVar, IterVar, IterVar), ScheduleError> {
        let (yo, yi) = self.split(t, y, fy)?;
        let (xo, xi) = self.split(t, x, fx)?;
        self.reorder(t, &[&yo, &xo, &yi, &xi])?;
        Ok((yo, xo, yi, xi))
    }

    /// Splits a leaf itervar into `factors.len() + 1` nested levels —
    /// the multi-level tiling step sketch derivations are built from.
    /// `factors` are the extents of the inner levels, innermost last;
    /// the returned itervars are ordered outermost first. For an axis of
    /// extent `E` and factors `[f1, f2]` the levels have extents
    /// `[E / (f1*f2), f1, f2]` (non-perfect splits are guarded like any
    /// other [`split`](Schedule::split)).
    pub fn split_levels(
        &mut self,
        t: &Tensor,
        iv: &IterVar,
        factors: &[i64],
    ) -> Result<Vec<IterVar>, ScheduleError> {
        let mut levels = Vec::with_capacity(factors.len() + 1);
        let mut rest = iv.clone();
        for j in 0..factors.len() {
            let prod: i64 = factors[j..].iter().product();
            let (outer, inner) = self.split(t, &rest, prod)?;
            levels.push(outer);
            rest = inner;
        }
        levels.push(rest);
        Ok(levels)
    }

    /// Fuses two adjacent leaf itervars into one.
    pub fn fuse(
        &mut self,
        t: &Tensor,
        outer: &IterVar,
        inner: &IterVar,
    ) -> Result<IterVar, ScheduleError> {
        let stage = self.stage_mut(t)?;
        let po = stage.leaf_pos(outer)?;
        let pi = stage.leaf_pos(inner)?;
        if pi != po + 1 {
            return Err(ScheduleError::NotAdjacent {
                outer: outer.var.name().to_string(),
                inner: inner.var.name().to_string(),
                stage: stage.tensor.name().to_string(),
            });
        }
        let kind = outer.kind;
        let fused = IterVar {
            kind,
            ..IterVar::derived(format!("{}.{}.f", outer.var.name(), inner.var.name()))
        };
        stage.relations.push(IterRelation::Fuse {
            outer: outer.var.clone(),
            inner: inner.var.clone(),
            fused: fused.clone(),
        });
        stage.leaf_iters.splice(po..=pi, [fused.clone()]);
        Ok(fused)
    }

    /// Reorders the listed leaves into the given relative order (leaves not
    /// listed keep their positions).
    pub fn reorder(&mut self, t: &Tensor, order: &[&IterVar]) -> Result<(), ScheduleError> {
        let stage = self.stage_mut(t)?;
        let positions: Vec<usize> = order
            .iter()
            .map(|iv| stage.leaf_pos(iv))
            .collect::<Result<_, _>>()?;
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        for (slot, iv) in sorted.iter().zip(order.iter()) {
            stage.leaf_iters[*slot] = (*iv).clone();
        }
        Ok(())
    }

    /// Binds a leaf itervar to a GPU thread axis.
    pub fn bind(&mut self, t: &Tensor, iv: &IterVar, tag: ThreadTag) -> Result<(), ScheduleError> {
        let stage = self.stage_mut(t)?;
        stage.leaf_pos(iv)?; // validate
        stage.attr_mut(iv).thread = Some(tag);
        Ok(())
    }

    /// Marks a leaf itervar for SIMD vectorization.
    pub fn vectorize(&mut self, t: &Tensor, iv: &IterVar) -> Result<(), ScheduleError> {
        self.annotate(t, iv, LoopAnn::Vectorize)
    }

    /// Marks a leaf itervar for unrolling.
    pub fn unroll(&mut self, t: &Tensor, iv: &IterVar) -> Result<(), ScheduleError> {
        self.annotate(t, iv, LoopAnn::Unroll)
    }

    /// Marks a leaf itervar for CPU multi-core parallelism.
    pub fn parallel(&mut self, t: &Tensor, iv: &IterVar) -> Result<(), ScheduleError> {
        self.annotate(t, iv, LoopAnn::Parallel)
    }

    /// Marks a leaf itervar as a virtual thread (§4.4).
    pub fn vthread(&mut self, t: &Tensor, iv: &IterVar) -> Result<(), ScheduleError> {
        self.annotate(t, iv, LoopAnn::VThread)
    }

    fn annotate(&mut self, t: &Tensor, iv: &IterVar, ann: LoopAnn) -> Result<(), ScheduleError> {
        let stage = self.stage_mut(t)?;
        stage.leaf_pos(iv)?; // validate
        stage.attr_mut(iv).ann = Some(ann);
        Ok(())
    }

    /// Attaches a back-end pragma to a leaf itervar (e.g. `dma_copy`).
    pub fn pragma(
        &mut self,
        t: &Tensor,
        iv: &IterVar,
        key: impl Into<String>,
    ) -> Result<(), ScheduleError> {
        let stage = self.stage_mut(t)?;
        stage.leaf_pos(iv)?; // validate
        stage.attr_mut(iv).pragma = Some(key.into());
        Ok(())
    }

    /// Nests `producer`'s computation inside `consumer`'s loop over `iv`.
    pub fn compute_at(
        &mut self,
        producer: &Tensor,
        consumer: &Tensor,
        iv: &IterVar,
    ) -> Result<(), ScheduleError> {
        let cons_id = consumer.op_id();
        // Validate that `iv` is a leaf of the consumer.
        self.stage(consumer)?.leaf_pos(iv)?;
        let stage = self.stage_mut(producer)?;
        stage.attach = Attach::At {
            consumer: cons_id,
            iter: iv.var.clone(),
        };
        Ok(())
    }

    /// Inlines an injective stage into all of its consumers.
    pub fn compute_inline(&mut self, t: &Tensor) -> Result<(), ScheduleError> {
        let is_plain = matches!(
            self.spec(t.op_id()).as_deref(),
            Some(ComputeSpec {
                body: ComputeBody::Plain(_),
                ..
            })
        );
        let stage = self.stage_mut(t)?;
        if stage.is_output {
            return Err(ScheduleError::InlineOutput {
                stage: t.name().to_string(),
            });
        }
        if !is_plain {
            return Err(ScheduleError::InlineReduction {
                stage: t.name().to_string(),
            });
        }
        stage.attach = Attach::Inline;
        Ok(())
    }

    /// Sets the memory scope of a stage's buffer.
    pub fn set_scope(&mut self, t: &Tensor, scope: MemScope) -> Result<(), ScheduleError> {
        self.stage_mut(t)?.scope = scope;
        Ok(())
    }

    /// Creates a cached copy of `t` in `scope` and redirects `readers` to
    /// consume the cache — the `cache_read` primitive that enables
    /// cooperative shared-memory fetching (§4.2) and accelerator DMA
    /// staging.
    pub fn cache_read(
        &mut self,
        t: &Tensor,
        scope: MemScope,
        readers: &[&Tensor],
    ) -> Result<Tensor, ScheduleError> {
        if readers.is_empty() {
            return Err(ScheduleError::NoReaders {
                tensor: t.name().to_string(),
            });
        }
        // Validate up front (before installing any override) so a failed
        // call leaves the schedule untouched.
        let mut insert_at = usize::MAX;
        for reader in readers {
            if self.spec(reader.op_id()).is_none() {
                return Err(ScheduleError::NoBody {
                    primitive: "cache_read reader",
                    stage: reader.name().to_string(),
                });
            }
            insert_at = insert_at.min(self.stage_index(reader)?);
        }
        let axes: Vec<IterVar> = t
            .shape()
            .iter()
            .enumerate()
            .map(|(d, &e)| IterVar::data(e, format!("{}_{}_c{}", t.name(), scope.name(), d)))
            .collect();
        let idx: Vec<Expr> = axes.iter().map(|a| a.expr()).collect();
        let body = ComputeBody::Plain(t.at(&idx));
        let cached = compute_with_axes(
            t.shape(),
            format!("{}.{}", t.name(), scope.name()),
            axes,
            body,
            std::slice::from_ref(t),
        );
        // Redirect reader specs (validated non-placeholder above) via
        // overrides — the ops themselves stay untouched.
        for reader in readers {
            let spec = self
                .spec(reader.op_id())
                .ok_or_else(|| ScheduleError::NoBody {
                    primitive: "cache_read reader",
                    stage: reader.name().to_string(),
                })?;
            let new_body = crate::rewrite::replace_reads(&spec.body, t.op_id(), &cached);
            let mut known: Vec<Tensor> = spec.reads.clone();
            known.push(cached.clone());
            let new_spec = ComputeSpec::gather(new_body, &|id| {
                known.iter().find(|x| x.op_id() == id).cloned()
            });
            self.overrides.insert(reader.op_id(), Arc::new(new_spec));
        }
        self.tensors.insert(cached.op_id(), cached.clone());
        // Insert the cache stage immediately before the earliest reader.
        let mut stage = Stage::new(cached.clone(), false);
        stage.scope = scope;
        self.insert_stage(insert_at, stage);
        Ok(cached)
    }

    /// Moves `t`'s computation into a new stage writing to `scope`, leaving
    /// the original stage as a copy-out — the `cache_write` primitive used
    /// for register/accumulator tiling.
    ///
    /// Must be applied before other primitives touch `t`'s stage: the
    /// reduction axes move to the returned cache stage.
    pub fn cache_write(&mut self, t: &Tensor, scope: MemScope) -> Result<Tensor, ScheduleError> {
        let spec = self.spec(t.op_id()).ok_or_else(|| ScheduleError::NoBody {
            primitive: "cache_write",
            stage: t.name().to_string(),
        })?;
        // Validate placement before installing any override below.
        let orig_index = self.stage_index(t)?;
        if !self.stages[orig_index].relations.is_empty() {
            return Err(ScheduleError::CacheWriteNotFirst {
                stage: t.name().to_string(),
            });
        }
        let old_axes = t.op.axes();
        let new_axes: Vec<IterVar> = t
            .shape()
            .iter()
            .enumerate()
            .map(|(d, &e)| IterVar::data(e, format!("{}_{}_w{}", t.name(), scope.name(), d)))
            .collect();
        let mut sub = HashMap::new();
        for (old, new) in old_axes.iter().zip(&new_axes) {
            sub.insert(old.var.id(), new.expr());
        }
        let new_body = crate::rewrite::substitute_body(&spec.body, &sub);
        let cached = compute_with_axes(
            t.shape(),
            format!("{}.{}", t.name(), scope.name()),
            new_axes,
            new_body,
            &spec.reads,
        );
        // The original op becomes an identity copy of the cache — as an
        // override, so the shared op itself is untouched.
        let idx: Vec<Expr> = old_axes.iter().map(|a| a.expr()).collect();
        let copy_spec = ComputeSpec::gather(ComputeBody::Plain(cached.at(&idx)), &|id| {
            (id == cached.op_id()).then(|| cached.clone())
        });
        self.overrides.insert(t.op_id(), Arc::new(copy_spec));
        self.tensors.insert(cached.op_id(), cached.clone());
        // Reset the original stage's loop state: its reduce axes are gone.
        self.stages[orig_index].leaf_iters = t.op.axes();
        let mut stage = Stage::new(cached.clone(), false);
        stage.scope = scope;
        self.insert_stage(orig_index, stage);
        Ok(cached)
    }

    /// Replaces the loop nest from leaf `iv` inwards with a declared
    /// hardware intrinsic (§4.3).
    pub fn tensorize(
        &mut self,
        t: &Tensor,
        iv: &IterVar,
        intrin: TensorIntrin,
    ) -> Result<(), ScheduleError> {
        let stage = self.stage_mut(t)?;
        stage.leaf_pos(iv)?; // validate
        stage.tensorize_at = Some((iv.var.id(), intrin));
        Ok(())
    }

    fn insert_stage(&mut self, index: usize, stage: Stage) {
        let id = stage.op_id();
        self.stages.insert(index, stage);
        self.stage_of.clear();
        for (i, s) in self.stages.iter().enumerate() {
            self.stage_of.insert(s.op_id(), i);
        }
        debug_assert!(self.stage_of.contains_key(&id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{compute, placeholder, reduce_axis, sum};
    use tvm_ir::DType;

    fn matmul(n: i64) -> (Tensor, Tensor, Tensor) {
        let a = placeholder(&[n, n], DType::float32(), "A");
        let b = placeholder(&[n, n], DType::float32(), "B");
        let k = reduce_axis(n, "k");
        let c = compute(&[n, n], "C", |i| {
            sum(
                a.at(&[i[0].clone(), k.expr()]) * b.at(&[k.expr(), i[1].clone()]),
                std::slice::from_ref(&k),
            )
        });
        (a, b, c)
    }

    #[test]
    fn create_schedule_orders_producers_first() {
        let (_, _, c) = matmul(16);
        let d = compute(&[16, 16], "D", |i| c.at(&[i[0].clone(), i[1].clone()]) + 1);
        let s = create_schedule(std::slice::from_ref(&d));
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[0].tensor.name(), "C");
        assert_eq!(s.stages[1].tensor.name(), "D");
        assert!(s.stages[1].is_output);
        assert!(!s.stages[0].is_output);
    }

    #[test]
    fn split_replaces_leaf() {
        let (_, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let axes = c.op.axes();
        assert_eq!(s.stage(&c).unwrap().leaf_iters.len(), 3); // y, x, k
        let (yo, yi) = s.split(&c, &axes[0], 4).unwrap();
        let leaves = &s.stage(&c).unwrap().leaf_iters;
        assert_eq!(leaves.len(), 4);
        assert_eq!(leaves[0].var, yo.var);
        assert_eq!(leaves[1].var, yi.var);
    }

    #[test]
    fn split_levels_nests_outermost_first() {
        let (a, b, c) = matmul(64);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let axes = c.op.axes();
        let levels = s.split_levels(&c, &axes[0], &[8, 2]).unwrap();
        assert_eq!(levels.len(), 3);
        let leaves = &s.stage(&c).unwrap().leaf_iters;
        // Leaves: [y.o, y.i.o, y.i.i, x, k], outermost level first.
        assert_eq!(leaves[0].var, levels[0].var);
        assert_eq!(leaves[1].var, levels[1].var);
        assert_eq!(leaves[2].var, levels[2].var);
        // The derived loop nest still lowers (extents 4 * 8 * 2 = 64).
        let f = crate::lower(&s, &[a, b, c], "ml_split").expect("lowers");
        assert!(format!("{f:?}").len() > 0);
    }

    #[test]
    fn tile_reorders() {
        let (_, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let axes = c.op.axes();
        let (yo, xo, yi, xi) = s.tile(&c, &axes[0], &axes[1], 4, 4).unwrap();
        let names: Vec<VarId> = s
            .stage(&c)
            .unwrap()
            .leaf_iters
            .iter()
            .map(|l| l.var.id())
            .collect();
        assert_eq!(
            names[..4],
            [yo.var.id(), xo.var.id(), yi.var.id(), xi.var.id()]
        );
    }

    #[test]
    fn fuse_requires_adjacent() {
        let (_, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let axes = c.op.axes();
        let f = s.fuse(&c, &axes[0], &axes[1]).unwrap();
        let leaves = &s.stage(&c).unwrap().leaf_iters;
        assert_eq!(leaves.len(), 2); // fused, k
        assert_eq!(leaves[0].var, f.var);
    }

    #[test]
    fn cache_write_moves_reduction() {
        let (_, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let cl = s.cache_write(&c, MemScope::Local).unwrap();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[0].tensor.op_id(), cl.op_id());
        assert_eq!(s.stages[0].scope, MemScope::Local);
        // Under this schedule the original op is an identity read of the
        // cache; the op itself is untouched (shared across schedules).
        assert!(matches!(
            s.spec(c.op_id()).expect("spec").body,
            ComputeBody::Plain(_)
        ));
        assert!(matches!(
            c.op.body().expect("body"),
            ComputeBody::Reduce { .. }
        ));
        assert_eq!(s.stage(&c).unwrap().leaf_iters.len(), 2); // reduce axis moved
        assert_eq!(s.stage(&cl).unwrap().leaf_iters.len(), 3);
    }

    #[test]
    fn cache_read_redirects_readers() {
        let (a, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let ashared = s.cache_read(&a, MemScope::Shared, &[&c]).unwrap();
        let inputs = s.input_tensors_of(c.op_id());
        assert!(inputs.iter().any(|t| t.op_id() == ashared.op_id()));
        assert!(!inputs.iter().any(|t| t.op_id() == a.op_id()));
        // The op's declared dataflow is untouched.
        let declared = c.op.input_tensors();
        assert!(declared.iter().any(|t| t.op_id() == a.op_id()));
        assert_eq!(s.stage(&ashared).unwrap().scope, MemScope::Shared);
        // Cache stage precedes the consumer.
        assert!(s.stage_index(&ashared).unwrap() < s.stage_index(&c).unwrap());
    }

    #[test]
    fn split_nonexistent_leaf_errors() {
        let (_, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let bogus = IterVar::data(4, "bogus");
        let err = s.split(&c, &bogus, 2).unwrap_err();
        assert!(matches!(err, ScheduleError::NotALeaf { .. }), "{err}");
        assert!(err.to_string().contains("not a leaf"), "{err}");
    }

    #[test]
    fn bad_primitive_applications_error() {
        let (a, _, c) = matmul(16);
        let mut s = create_schedule(std::slice::from_ref(&c));
        let axes = c.op.axes();
        assert!(matches!(
            s.split(&c, &axes[0], 0),
            Err(ScheduleError::BadSplitFactor { .. })
        ));
        // Fusing y with k (not adjacent to y) is rejected.
        let k = &s.stage(&c).unwrap().leaf_iters[2].clone();
        assert!(matches!(
            s.fuse(&c, &axes[0], k),
            Err(ScheduleError::NotAdjacent { .. })
        ));
        assert!(matches!(
            s.compute_inline(&c),
            Err(ScheduleError::InlineOutput { .. })
        ));
        assert!(matches!(
            s.cache_read(&a, MemScope::Shared, &[]),
            Err(ScheduleError::NoReaders { .. })
        ));
        assert!(matches!(
            s.cache_write(&a, MemScope::Local),
            Err(ScheduleError::NoBody { .. })
        ));
        // An unscheduled tensor is reported by name.
        let stray = placeholder(&[4], DType::float32(), "stray");
        assert!(matches!(
            s.stage_index(&stray),
            Err(ScheduleError::NotScheduled { .. })
        ));
    }
}
