//! Dataflow rewriting helpers used by schedule primitives and lowering:
//! redirecting tensor reads, substituting axis variables inside compute
//! bodies, inlining stage bodies, and renaming buffer variables.

use std::collections::HashMap;

use tvm_ir::expr::ExprNode;
use tvm_ir::stmt::StmtNode;
use tvm_ir::{Expr, Mutator, Stmt, Var, VarId};

use crate::tensor::{parse_read_key, ComputeBody, OpId, Tensor};

/// Replaces reads of `from` with reads of `to` (same indices) in a body.
pub fn replace_reads(body: &ComputeBody, from: OpId, to: &Tensor) -> ComputeBody {
    struct R<'a> {
        from: OpId,
        to: &'a Tensor,
    }
    impl Mutator for R<'_> {
        fn mutate_expr(&mut self, e: &Expr) -> Expr {
            if let ExprNode::Call { name, args, .. } = &*e.0 {
                if parse_read_key(name) == Some(self.from) {
                    let new_args: Vec<Expr> = args.iter().map(|a| self.mutate_expr(a)).collect();
                    return self.to.at(&new_args);
                }
            }
            self.default_mutate_expr(e)
        }
    }
    map_body(body, &mut R { from, to })
}

/// Substitutes variables inside a body's source expression.
pub fn substitute_body(body: &ComputeBody, sub: &HashMap<VarId, Expr>) -> ComputeBody {
    match body {
        ComputeBody::Plain(e) => ComputeBody::Plain(tvm_ir::substitute(e, sub)),
        ComputeBody::Reduce {
            combiner,
            source,
            axes,
        } => ComputeBody::Reduce {
            combiner: *combiner,
            source: tvm_ir::substitute(source, sub),
            axes: axes.clone(),
        },
    }
}

/// Inlines reads of op `id` by substituting `axes -> indices` into its plain
/// body expression.
pub fn inline_reads(
    target: &ComputeBody,
    id: OpId,
    producer_axes: &[Var],
    producer_expr: &Expr,
) -> ComputeBody {
    struct I<'a> {
        id: OpId,
        axes: &'a [Var],
        expr: &'a Expr,
    }
    impl Mutator for I<'_> {
        fn mutate_expr(&mut self, e: &Expr) -> Expr {
            if let ExprNode::Call { name, args, .. } = &*e.0 {
                if parse_read_key(name) == Some(self.id) {
                    let mut sub = HashMap::new();
                    for (ax, idx) in self.axes.iter().zip(args) {
                        sub.insert(ax.id(), self.mutate_expr(idx));
                    }
                    return tvm_ir::substitute(self.expr, &sub);
                }
            }
            self.default_mutate_expr(e)
        }
    }
    map_body(
        target,
        &mut I {
            id,
            axes: producer_axes,
            expr: producer_expr,
        },
    )
}

fn map_body(body: &ComputeBody, m: &mut impl Mutator) -> ComputeBody {
    match body {
        ComputeBody::Plain(e) => ComputeBody::Plain(m.mutate_expr(e)),
        ComputeBody::Reduce {
            combiner,
            source,
            axes,
        } => ComputeBody::Reduce {
            combiner: *combiner,
            source: m.mutate_expr(source),
            axes: axes.clone(),
        },
    }
}

/// Renames buffer variables in `Load`/`Store` nodes and in bare-variable
/// intrinsic arguments (hardware calls pass buffers by handle) — used by
/// virtual-thread lowering to duplicate per-vthread buffers.
pub fn substitute_buffers(s: &Stmt, map: &HashMap<VarId, Var>) -> Stmt {
    struct B<'a> {
        map: &'a HashMap<VarId, Var>,
    }
    impl Mutator for B<'_> {
        fn mutate_expr(&mut self, e: &Expr) -> Expr {
            match &*e.0 {
                ExprNode::Load {
                    buffer,
                    index,
                    predicate,
                } => {
                    let buffer = self
                        .map
                        .get(&buffer.id())
                        .cloned()
                        .unwrap_or(buffer.clone());
                    Expr::new(ExprNode::Load {
                        buffer,
                        index: self.mutate_expr(index),
                        predicate: predicate.as_ref().map(|p| self.mutate_expr(p)),
                    })
                }
                ExprNode::Var(v) => match self.map.get(&v.id()) {
                    Some(nv) => nv.to_expr(),
                    None => e.clone(),
                },
                _ => self.default_mutate_expr(e),
            }
        }

        fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
            match &*s.0 {
                StmtNode::Store {
                    buffer,
                    index,
                    value,
                    predicate,
                } => {
                    let buffer = self
                        .map
                        .get(&buffer.id())
                        .cloned()
                        .unwrap_or(buffer.clone());
                    Stmt::new(StmtNode::Store {
                        buffer,
                        index: self.mutate_expr(index),
                        value: self.mutate_expr(value),
                        predicate: predicate.as_ref().map(|p| self.mutate_expr(p)),
                    })
                }
                StmtNode::Allocate {
                    buffer,
                    dtype,
                    extent,
                    scope,
                    body,
                } => {
                    let buffer = self
                        .map
                        .get(&buffer.id())
                        .cloned()
                        .unwrap_or(buffer.clone());
                    Stmt::new(StmtNode::Allocate {
                        buffer,
                        dtype: *dtype,
                        extent: self.mutate_expr(extent),
                        scope: *scope,
                        body: self.mutate_stmt(body),
                    })
                }
                _ => self.default_mutate_stmt(s),
            }
        }
    }
    B { map }.mutate_stmt(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::{compute, placeholder};
    use tvm_ir::{DType, Interp};

    #[test]
    fn inline_substitutes_producer_expr() {
        let a = placeholder(&[8], DType::float32(), "A");
        let b = compute(&[8], "B", |i| a.at(&[i[0].clone()]) * 2);
        let c = compute(&[8], "C", |i| b.at(&[i[0].clone()]) + 1);
        let b_axes: Vec<Var> = b.op.axes().iter().map(|iv| iv.var.clone()).collect();
        let b_body = match b.op.body().expect("body") {
            ComputeBody::Plain(e) => e,
            _ => unreachable!(),
        };
        let inlined = inline_reads(&c.op.body().expect("body"), b.op_id(), &b_axes, &b_body);
        // C's body must now read A directly.
        let lookup = |id: OpId| (id == a.op_id()).then(|| a.clone());
        let inputs: Vec<OpId> = {
            let mut out = Vec::new();
            let _ = crate::tensor::collect_reads(inlined.source_expr(), &lookup, &mut |t, _| {
                out.push(t.op_id())
            });
            out
        };
        assert_eq!(inputs, vec![a.op_id()]);
    }

    #[test]
    fn buffer_substitution_renames_loads_and_stores() {
        let old = Var::new("buf", DType::float32());
        let new = Var::new("buf2", DType::float32());
        let s = Stmt::store(
            &old,
            Expr::int(0),
            Expr::load(&old, Expr::int(0)) + Expr::f32(1.0),
        );
        let mut m = HashMap::new();
        m.insert(old.id(), new.clone());
        let s2 = substitute_buffers(&s, &m);
        // Execute on the renamed buffer to confirm both sides moved.
        let mut it = Interp::new();
        let f = tvm_ir::LoweredFunc {
            name: "t".into(),
            params: vec![new],
            param_dtypes: vec![DType::float32()],
            param_extents: vec![1],
            body: s2,
        };
        let mut arrays = vec![vec![5.0f32]];
        it.run_f32(&f, &mut arrays).expect("runs");
        assert_eq!(arrays[0][0], 6.0);
    }
}
