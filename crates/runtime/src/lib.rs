//! `tvm-runtime` — the deployable-module runtime (§2's end-user example):
//! `NDArray` tensors, a [`Module`] packaging the optimized graph with its
//! compiled kernels and memory plan, and a [`GraphExecutor`] with the
//! `set_input` / `run` / `get_output` interface.
//!
//! Execution is *functional* (the reference interpreter computes real
//! values) while timing is *simulated* (each kernel carries the cost its
//! target simulator estimated at compile time) — see DESIGN.md.

use std::collections::HashMap;
use std::sync::Arc;

use tvm_graph::{FusedGraph, Graph, GraphReport, KernelView, MemoryPlan, NodeId, OpType};
use tvm_ir::{Interp, LoweredFunc};

/// Typed executor failures: malformed bindings and interpreter faults are
/// recoverable `Err`s, not process aborts — a serving layer can reject one
/// bad request and keep the executor alive.
#[derive(Clone, Debug)]
pub enum RuntimeError {
    /// `set_input` named no input node.
    UnknownInput(String),
    /// `set_param` named no parameter node.
    UnknownParam(String),
    /// A bound tensor's shape disagrees with the graph node's shape.
    ShapeMismatch {
        /// Node name.
        name: String,
        /// Shape declared by the graph.
        expected: Vec<i64>,
        /// Shape of the tensor supplied.
        got: Vec<i64>,
    },
    /// `run` found an unbound input.
    MissingInput(String),
    /// `get_output` index out of range.
    BadOutputIndex {
        /// Index requested.
        index: usize,
        /// Number of graph outputs.
        outputs: usize,
    },
    /// `get_output` before a successful `run`.
    NotRun(String),
    /// A kernel's argument list is malformed (e.g. no output binding).
    MalformedKernel(String),
    /// A kernel referenced a node id outside the graph (stale or corrupt
    /// module).
    BadNodeRef {
        /// Kernel whose argument list holds the reference.
        kernel: String,
        /// The out-of-range node index.
        node: usize,
    },
    /// A tensor payload's length disagrees with its declared shape.
    DataMismatch {
        /// Elements the shape implies.
        expected: usize,
        /// Elements supplied.
        got: usize,
    },
    /// The reference interpreter faulted while executing a kernel.
    Interp(tvm_ir::InterpError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::UnknownInput(n) => write!(f, "no input named `{n}`"),
            RuntimeError::UnknownParam(n) => write!(f, "no param named `{n}`"),
            RuntimeError::ShapeMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "`{name}` shape mismatch: graph declares {expected:?}, tensor has {got:?}"
            ),
            RuntimeError::MissingInput(n) => write!(f, "missing value for `{n}` (unset input?)"),
            RuntimeError::BadOutputIndex { index, outputs } => {
                write!(f, "output index {index} out of range ({outputs} outputs)")
            }
            RuntimeError::NotRun(n) => write!(f, "output `{n}` not computed: run() first"),
            RuntimeError::MalformedKernel(n) => {
                write!(f, "kernel `{n}` has a malformed argument list")
            }
            RuntimeError::BadNodeRef { kernel, node } => {
                write!(
                    f,
                    "kernel `{kernel}` references node {node} outside the graph"
                )
            }
            RuntimeError::DataMismatch { expected, got } => {
                write!(f, "payload has {got} elements, shape implies {expected}")
            }
            RuntimeError::Interp(e) => write!(f, "interpreter fault: {e:?}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<tvm_ir::InterpError> for RuntimeError {
    fn from(e: tvm_ir::InterpError) -> Self {
        RuntimeError::Interp(e)
    }
}

/// A dense host tensor (f32).
#[derive(Clone, Debug, PartialEq)]
pub struct NDArray {
    /// Shape.
    pub shape: Vec<i64>,
    /// Row-major contents.
    pub data: Vec<f32>,
}

impl NDArray {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[i64]) -> NDArray {
        NDArray {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product::<i64>() as usize],
        }
    }

    /// Tensor from contents. Panics on a shape/length mismatch; request
    /// paths should use [`NDArray::try_new`].
    pub fn new(shape: &[i64], data: Vec<f32>) -> NDArray {
        Self::try_new(shape, data).expect("shape/data length mismatch")
    }

    /// Tensor from contents, rejecting length mismatches and negative
    /// dimensions with a typed error instead of panicking — the request
    /// ingestion path of a serving layer.
    pub fn try_new(shape: &[i64], data: Vec<f32>) -> Result<NDArray, RuntimeError> {
        let expected = numel_of(shape).ok_or(RuntimeError::DataMismatch {
            expected: usize::MAX,
            got: data.len(),
        })?;
        if expected != data.len() {
            return Err(RuntimeError::DataMismatch {
                expected,
                got: data.len(),
            });
        }
        Ok(NDArray {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Deterministic pseudo-random tensor (for parameter initialization in
    /// examples and benches).
    pub fn seeded(shape: &[i64], seed: u64) -> NDArray {
        let n = shape.iter().product::<i64>() as usize;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u32 << 24) as f32) - 0.5
            })
            .collect();
        NDArray {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }
}

/// Element count a shape implies; `None` when a dimension is negative
/// (a corrupt shape must not turn into a giant allocation).
fn numel_of(shape: &[i64]) -> Option<usize> {
    if shape.iter().any(|&d| d < 0) {
        return None;
    }
    Some(shape.iter().product::<i64>() as usize)
}

/// Simulator cost figures carried from compile time into the runtime, as
/// plain numbers so the runtime stays independent of `tvm-sim`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct GroupCost {
    /// Simulated device cycles.
    pub cycles: f64,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved to/from simulated DRAM.
    pub dram_bytes: f64,
}

/// One compiled fused kernel.
pub struct CompiledGroup {
    /// The lowered function.
    pub func: LoweredFunc,
    /// Graph nodes whose values bind to the function's buffer params, in
    /// order; the last entry is the kernel output.
    pub args: Vec<NodeId>,
    /// Simulated execution time on the module's target.
    pub est_ms: f64,
    /// Detailed simulator cost (zeros when the builder does not model it).
    pub cost: GroupCost,
    /// Display name.
    pub name: String,
}

/// A deployable module: optimized graph + generated operators + plan —
/// the `(graph, lib, params)` triple of §2.
pub struct Module {
    /// The optimized graph.
    pub graph: Graph,
    /// The fusion grouping the kernels were generated from (kernel `i`
    /// implements group `i`) — kept so the graph-layer verifiers can check
    /// the module without re-deriving fusion.
    pub fused: FusedGraph,
    /// Compiled kernels in execution order.
    pub kernels: Vec<CompiledGroup>,
    /// Static memory plan.
    pub plan: MemoryPlan,
    /// Target name the module was built for.
    pub target_name: String,
}

impl Module {
    /// Total simulated end-to-end time.
    pub fn total_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.est_ms).sum()
    }

    /// Runs the graph-layer static verifiers over this module: memory-plan
    /// safety (recomputed liveness + interference), fusion legality, and
    /// the cross-layer slot contracts proving each kernel's touch set fits
    /// the planner's allocation. Used by the debug-build/`TVM_VALIDATE_GRAPH`
    /// hook, `tvm-lint --graph`, and the serving artifact cache when it
    /// replays journaled build decisions.
    pub fn verify(&self) -> GraphReport {
        let views: Vec<KernelView<'_>> = self
            .kernels
            .iter()
            .map(|k| KernelView {
                name: &k.name,
                func: &k.func,
                args: &k.args,
            })
            .collect();
        tvm_graph::verify_build(&self.graph, &self.fused, &self.plan, &views)
    }

    /// Human-readable per-kernel breakdown.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "module for {} ({} kernels)\n",
            self.target_name,
            self.kernels.len()
        );
        for k in &self.kernels {
            s.push_str(&format!("  {:<40} {:>10.4} ms\n", k.name, k.est_ms));
        }
        s.push_str(&format!("  total {:.4} ms", self.total_ms()));
        s
    }
}

/// One kernel launch as observed by the [`Profiler`].
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Kernel display name.
    pub name: String,
    /// Simulated time for this launch.
    pub est_ms: f64,
    /// Simulated device cycles.
    pub cycles: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// Simulated DRAM traffic in bytes.
    pub dram_bytes: f64,
    /// Bytes read from bound input/intermediate tensors.
    pub input_bytes: usize,
    /// Bytes written to the output tensor.
    pub output_bytes: usize,
    /// Storage slot the output lands in, if the plan materializes it.
    pub slot: Option<usize>,
}

/// Static-plan reuse statistics (how much memory slot sharing saved).
#[derive(Clone, Debug, Default)]
pub struct SlotStats {
    /// Number of distinct storage slots in the plan.
    pub slots: usize,
    /// Total planned bytes (with reuse).
    pub planned_bytes: usize,
    /// Bytes if every materialized tensor got its own buffer.
    pub unshared_bytes: usize,
    /// Tensors the plan materializes (excludes inputs/params/internal).
    pub materialized: usize,
}

/// Per-op runtime profiler. Created by
/// [`GraphExecutor::enable_profiling`]; when absent, [`GraphExecutor::run`]
/// takes no profiling branches beyond one `Option` check per kernel.
#[derive(Default)]
pub struct Profiler {
    /// One record per kernel launch, in execution order (reset each run).
    pub ops: Vec<OpRecord>,
    /// Completed `run` calls since profiling was enabled.
    pub runs: usize,
    /// Memory-plan reuse statistics (static; computed once).
    pub slot_stats: SlotStats,
}

impl Profiler {
    /// Sum of simulated cycles over the last run's kernels.
    pub fn total_cycles(&self) -> f64 {
        self.ops.iter().map(|o| o.cycles).sum()
    }

    /// Sum of simulated milliseconds over the last run's kernels.
    pub fn total_ms(&self) -> f64 {
        self.ops.iter().map(|o| o.est_ms).sum()
    }

    /// Fixed-width per-op breakdown table (deterministic fields only, so
    /// it is safe to golden-test).
    pub fn table(&self) -> String {
        let mut s = format!(
            "{:<44} {:>10} {:>14} {:>12} {:>12} {:>10} {:>5}\n",
            "op", "est_ms", "cycles", "flops", "dram_bytes", "out_bytes", "slot"
        );
        for o in &self.ops {
            let slot = o.slot.map_or("-".to_string(), |x| x.to_string());
            s.push_str(&format!(
                "{:<44} {:>10.4} {:>14.0} {:>12.0} {:>12.0} {:>10} {:>5}\n",
                o.name, o.est_ms, o.cycles, o.flops, o.dram_bytes, o.output_bytes, slot
            ));
        }
        s.push_str(&format!(
            "total: {:.4} ms, {:.0} cycles over {} ops; plan: {} slots, {} B planned vs {} B unshared\n",
            self.total_ms(),
            self.total_cycles(),
            self.ops.len(),
            self.slot_stats.slots,
            self.slot_stats.planned_bytes,
            self.slot_stats.unshared_bytes,
        ));
        s
    }
}

/// Pre-run hook that registers hardware-intrinsic functional models.
pub type InterpSetup = Box<dyn Fn(&mut Interp)>;

/// The graph executor: `runtime.create(graph, lib, ctx)` in §2.
///
/// The module is held behind an [`Arc`] so a serving layer can share one
/// compiled artifact across many concurrent batched executors without
/// recompiling or cloning kernels — see [`GraphExecutor::from_arc`].
pub struct GraphExecutor {
    module: Arc<Module>,
    values: HashMap<NodeId, NDArray>,
    /// Simulated time of the last `run`.
    pub last_run_ms: f64,
    /// Hook to register hardware-intrinsic functional models before runs.
    pub interp_setup: Option<InterpSetup>,
    profiler: Option<Profiler>,
}

impl GraphExecutor {
    /// Creates an executor and auto-initializes all parameters with
    /// deterministic pseudo-random values (override via
    /// [`GraphExecutor::set_param`]).
    pub fn new(module: Module) -> GraphExecutor {
        Self::from_arc(Arc::new(module))
    }

    /// Creates an executor over a shared compiled module (the serving
    /// cache hands the same `Arc` to every batch executor).
    pub fn from_arc(module: Arc<Module>) -> GraphExecutor {
        Self::from_arc_with_weights(module, 0)
    }

    /// [`GraphExecutor::from_arc`] with an explicit *weight-set seed*:
    /// every parameter is initialized from a stream keyed by both its
    /// node id and `weights`, so two executors with the same seed hold
    /// bit-identical weights and two seeds model two different pushed
    /// weight sets (the serving layer's versioned models). Seed `0`
    /// reproduces [`GraphExecutor::from_arc`] exactly.
    pub fn from_arc_with_weights(module: Arc<Module>, weights: u64) -> GraphExecutor {
        let mut values = HashMap::new();
        for node in &module.graph.nodes {
            if matches!(node.op, OpType::Param) {
                let seed = (node.id.0 as u64 + 1)
                    .wrapping_add(weights.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                values.insert(node.id, NDArray::seeded(&node.shape, seed));
            }
        }
        GraphExecutor {
            module,
            values,
            last_run_ms: 0.0,
            interp_setup: None,
            profiler: None,
        }
    }

    /// Module accessor.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Turns on per-op profiling. Subsequent [`run`](GraphExecutor::run)
    /// calls record an [`OpRecord`] per kernel and emit `tvm-obs` spans;
    /// results are unchanged.
    pub fn enable_profiling(&mut self) {
        let plan = &self.module.plan;
        let g = &self.module.graph;
        let mut unshared = 0usize;
        let mut materialized = 0usize;
        for node in &g.nodes {
            if plan
                .storage_of
                .get(node.id.0)
                .is_some_and(|&s| s != usize::MAX)
            {
                materialized += 1;
                unshared += node.shape.iter().product::<i64>() as usize * node.dtype.bytes();
            }
        }
        self.profiler = Some(Profiler {
            ops: Vec::new(),
            runs: 0,
            slot_stats: SlotStats {
                slots: plan.slot_sizes.len(),
                planned_bytes: plan.total_bytes(),
                unshared_bytes: unshared,
                materialized,
            },
        });
    }

    /// The profiler, if [`enable_profiling`](GraphExecutor::enable_profiling)
    /// was called.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.profiler.as_ref()
    }

    /// Binds an input by node name; rejects unknown names and shape
    /// mismatches.
    pub fn set_input(&mut self, name: &str, value: NDArray) -> Result<(), RuntimeError> {
        let id = self
            .module
            .graph
            .nodes
            .iter()
            .find(|n| n.name == name && matches!(n.op, OpType::Input))
            .ok_or_else(|| RuntimeError::UnknownInput(name.to_string()))?
            .id;
        let expected = &self.module.graph.node(id).shape;
        if *expected != value.shape {
            return Err(RuntimeError::ShapeMismatch {
                name: name.to_string(),
                expected: expected.clone(),
                got: value.shape,
            });
        }
        self.values.insert(id, value);
        Ok(())
    }

    /// Overrides a parameter by name; rejects unknown names and shape
    /// mismatches.
    pub fn set_param(&mut self, name: &str, value: NDArray) -> Result<(), RuntimeError> {
        let id = self
            .module
            .graph
            .nodes
            .iter()
            .find(|n| n.name == name && matches!(n.op, OpType::Param))
            .ok_or_else(|| RuntimeError::UnknownParam(name.to_string()))?
            .id;
        let expected = &self.module.graph.node(id).shape;
        if *expected != value.shape {
            return Err(RuntimeError::ShapeMismatch {
                name: name.to_string(),
                expected: expected.clone(),
                got: value.shape,
            });
        }
        self.values.insert(id, value);
        Ok(())
    }

    /// Executes the graph; returns the simulated time in ms. Unbound
    /// inputs and interpreter faults come back as [`RuntimeError`]s and
    /// leave the executor usable (bind the input and run again).
    pub fn run(&mut self) -> Result<f64, RuntimeError> {
        let mut total = 0.0;
        if let Some(p) = self.profiler.as_mut() {
            p.ops.clear();
        }
        for gi in 0..self.module.kernels.len() {
            let k = &self.module.kernels[gi];
            let out_id = *k
                .args
                .last()
                .ok_or_else(|| RuntimeError::MalformedKernel(k.name.clone()))?;
            let mut bufs: Vec<Vec<f32>> = Vec::with_capacity(k.args.len());
            let mut input_bytes = 0usize;
            for (ai, &arg) in k.args.iter().enumerate() {
                let is_output = ai + 1 == k.args.len();
                let node = self.module.graph.get(arg).ok_or(RuntimeError::BadNodeRef {
                    kernel: k.name.clone(),
                    node: arg.0,
                })?;
                if is_output {
                    let n = numel_of(&node.shape).ok_or(RuntimeError::BadNodeRef {
                        kernel: k.name.clone(),
                        node: arg.0,
                    })?;
                    bufs.push(vec![0.0; n]);
                } else {
                    let v = self
                        .values
                        .get(&arg)
                        .ok_or_else(|| RuntimeError::MissingInput(node.name.clone()))?;
                    input_bytes += v.data.len() * std::mem::size_of::<f32>();
                    bufs.push(v.data.clone());
                }
            }
            let mut it = Interp::new();
            if let Some(setup) = &self.interp_setup {
                setup(&mut it);
            }
            {
                let _op_span = if self.profiler.is_some() {
                    Some(tvm_obs::span_with("run_op", &[("kernel", &k.name)]))
                } else {
                    None
                };
                it.run_f32(&k.func, &mut bufs)?;
            }
            let out_shape = self
                .module
                .graph
                .get(out_id)
                .ok_or(RuntimeError::BadNodeRef {
                    kernel: k.name.clone(),
                    node: out_id.0,
                })?
                .shape
                .clone();
            let out = bufs
                .pop()
                .ok_or_else(|| RuntimeError::MalformedKernel(k.name.clone()))?;
            if let Some(p) = self.profiler.as_mut() {
                let out_node = self.module.graph.node(out_id);
                let slot = self
                    .module
                    .plan
                    .storage_of
                    .get(out_id.0)
                    .copied()
                    .filter(|&s| s != usize::MAX);
                let out_bytes = out.len() * out_node.dtype.bytes();
                p.ops.push(OpRecord {
                    name: k.name.clone(),
                    est_ms: k.est_ms,
                    cycles: k.cost.cycles,
                    flops: k.cost.flops,
                    dram_bytes: k.cost.dram_bytes,
                    input_bytes,
                    output_bytes: out_bytes,
                    slot,
                });
                tvm_obs::counter_add("runtime.kernel_launches", 1);
                tvm_obs::counter_add("runtime.output_bytes", out_bytes as u64);
            }
            self.values.insert(out_id, NDArray::new(&out_shape, out));
            total += self.module.kernels[gi].est_ms;
        }
        if let Some(p) = self.profiler.as_mut() {
            p.runs += 1;
        }
        self.last_run_ms = total;
        Ok(total)
    }

    /// Fetches the i-th graph output (after a successful [`run`]).
    ///
    /// [`run`]: GraphExecutor::run
    pub fn get_output(&self, i: usize) -> Result<&NDArray, RuntimeError> {
        let outputs = self.module.graph.outputs.len();
        if i >= outputs {
            return Err(RuntimeError::BadOutputIndex { index: i, outputs });
        }
        let id = self.module.graph.outputs[i];
        self.values.get(&id).ok_or_else(|| {
            let name = self
                .module
                .graph
                .get(id)
                .map(|n| n.name.clone())
                .unwrap_or_else(|| format!("node#{}", id.0));
            RuntimeError::NotRun(name)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndarray_construction() {
        let a = NDArray::zeros(&[2, 3]);
        assert_eq!(a.numel(), 6);
        let b = NDArray::seeded(&[4, 4], 7);
        assert_eq!(b.numel(), 16);
        // Deterministic.
        assert_eq!(b, NDArray::seeded(&[4, 4], 7));
        assert_ne!(b, NDArray::seeded(&[4, 4], 8));
        assert!(b.data.iter().all(|v| v.abs() <= 0.5));
    }

    #[test]
    fn weight_seed_zero_matches_default_and_seeds_differ() {
        let mut g = Graph::new();
        let x = g.input(&[1, 4], "data");
        let w = g.add(OpType::Param, vec![], vec![4, 4], "w");
        g.outputs.push(x);
        let fused = tvm_graph::fuse(&g, true);
        let plan = tvm_graph::plan_memory(&g, &fused);
        let module = Arc::new(Module {
            graph: g,
            fused,
            kernels: vec![],
            plan,
            target_name: "test".into(),
        });
        let default = GraphExecutor::from_arc(Arc::clone(&module));
        let v0 = GraphExecutor::from_arc_with_weights(Arc::clone(&module), 0);
        let v1 = GraphExecutor::from_arc_with_weights(Arc::clone(&module), 1);
        let param = |ex: &GraphExecutor| ex.values.get(&w).cloned().expect("param");
        assert_eq!(param(&default), param(&v0), "seed 0 must be the default");
        assert_ne!(param(&v0), param(&v1), "weight sets must differ by seed");
        // Same seed, same bits — versioned weights are reproducible.
        let v1b = GraphExecutor::from_arc_with_weights(module, 1);
        assert_eq!(param(&v1), param(&v1b));
    }

    #[test]
    fn input_shape_checked() {
        // A minimal module with one input and no kernels.
        let mut g = Graph::new();
        let x = g.input(&[1, 4], "data");
        g.outputs.push(x);
        let fused = tvm_graph::fuse(&g, true);
        let plan = tvm_graph::plan_memory(&g, &fused);
        let module = Module {
            graph: g,
            fused,
            kernels: vec![],
            plan,
            target_name: "test".into(),
        };
        let mut ex = GraphExecutor::new(module);
        match ex.set_input("data", NDArray::zeros(&[2, 4])) {
            Err(RuntimeError::ShapeMismatch {
                name,
                expected,
                got,
            }) => {
                assert_eq!(name, "data");
                assert_eq!(expected, vec![1, 4]);
                assert_eq!(got, vec![2, 4]);
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
        // The executor survives the rejection: a correct bind still works.
        ex.set_input("data", NDArray::zeros(&[1, 4])).expect("ok");
    }
}
