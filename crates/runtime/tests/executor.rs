//! Executor tests against hand-assembled modules (no compiler dependency):
//! argument binding, kernel sequencing through intermediate values, and
//! parameter override.

use tvm_graph::{fuse, plan_memory, Graph, OpType};
use tvm_ir::{DType, Expr, LoweredFunc, Stmt, Var};
use tvm_runtime::{CompiledGroup, GraphExecutor, Module, NDArray, RuntimeError};

/// Hand-lowers `out[i] = in[i] * k + c` as a kernel.
fn affine_kernel(n: i64, k: f32, c: f32, name: &str) -> LoweredFunc {
    let src = Var::new("src", DType::float32());
    let dst = Var::new("dst", DType::float32());
    let i = Var::int("i");
    let body = Stmt::for_(
        &i,
        0,
        n,
        Stmt::store(
            &dst,
            i.to_expr(),
            Expr::load(&src, i.to_expr()) * Expr::f32(k) + Expr::f32(c),
        ),
    );
    LoweredFunc {
        name: name.into(),
        params: vec![src, dst],
        param_dtypes: vec![DType::float32(); 2],
        param_extents: vec![n as usize; 2],
        body,
    }
}

fn two_stage_module() -> (Module, tvm_graph::NodeId) {
    // Graph: input -> relu(a) -> tanh(b); kernels are affine stand-ins so
    // the test controls the math exactly: y = (x*2+1)*3+0.
    let mut g = Graph::new();
    let x = g.input(&[1, 4], "data");
    let shape = vec![1, 4];
    let a = g.add(OpType::Relu, vec![x], shape.clone(), "a");
    let b = g.add(OpType::Tanh, vec![a], shape, "b");
    g.outputs.push(b);
    let fused = fuse(&g, false);
    let plan = plan_memory(&g, &fused);
    let kernels = vec![
        CompiledGroup {
            func: affine_kernel(4, 2.0, 1.0, "k1"),
            args: vec![x, a],
            est_ms: 0.5,
            cost: tvm_runtime::GroupCost {
                cycles: 500.0,
                flops: 8.0,
                dram_bytes: 32.0,
            },
            name: "k1".into(),
        },
        CompiledGroup {
            func: affine_kernel(4, 3.0, 0.0, "k2"),
            args: vec![a, b],
            est_ms: 0.25,
            cost: tvm_runtime::GroupCost {
                cycles: 250.0,
                flops: 4.0,
                dram_bytes: 16.0,
            },
            name: "k2".into(),
        },
    ];
    (
        Module {
            graph: g,
            fused,
            kernels,
            plan,
            target_name: "test".into(),
        },
        b,
    )
}

#[test]
fn kernels_chain_through_intermediates() {
    let (module, _out) = two_stage_module();
    let mut ex = GraphExecutor::new(module);
    ex.set_input("data", NDArray::new(&[1, 4], vec![0.0, 1.0, 2.0, 3.0]))
        .expect("bind");
    let ms = ex.run().expect("runs");
    assert!((ms - 0.75).abs() < 1e-12, "kernel times accumulate: {ms}");
    assert_eq!(
        ex.get_output(0).expect("output").data,
        vec![3.0, 9.0, 15.0, 21.0]
    );
    assert_eq!(ex.last_run_ms, ms);
}

#[test]
fn rerun_with_new_input_updates_output() {
    let (module, _) = two_stage_module();
    let mut ex = GraphExecutor::new(module);
    ex.set_input("data", NDArray::new(&[1, 4], vec![1.0; 4]))
        .expect("bind");
    ex.run().expect("runs");
    assert_eq!(ex.get_output(0).expect("output").data, vec![9.0; 4]);
    ex.set_input("data", NDArray::new(&[1, 4], vec![0.0; 4]))
        .expect("bind");
    ex.run().expect("runs");
    assert_eq!(ex.get_output(0).expect("output").data, vec![3.0; 4]);
}

#[test]
fn profiler_records_per_op_and_changes_nothing() {
    // Reference run without profiling.
    let (module, _) = two_stage_module();
    let mut plain = GraphExecutor::new(module);
    plain
        .set_input("data", NDArray::new(&[1, 4], vec![0.0, 1.0, 2.0, 3.0]))
        .expect("bind");
    let plain_ms = plain.run().expect("runs");
    let plain_out = plain.get_output(0).expect("output").data.clone();

    let (module, _) = two_stage_module();
    let mut ex = GraphExecutor::new(module);
    assert!(ex.profiler().is_none(), "off by default");
    ex.enable_profiling();
    ex.set_input("data", NDArray::new(&[1, 4], vec![0.0, 1.0, 2.0, 3.0]))
        .expect("bind");
    let ms = ex.run().expect("runs");
    // Bit-for-bit identical results with profiling on.
    assert_eq!(ex.get_output(0).expect("output").data, plain_out);
    assert_eq!(ms, plain_ms);

    let prof = ex.profiler().expect("enabled");
    assert_eq!(prof.runs, 1);
    assert_eq!(prof.ops.len(), 2);
    assert_eq!(prof.ops[0].name, "k1");
    assert_eq!(prof.ops[1].name, "k2");
    assert_eq!(prof.ops[0].cycles, 500.0);
    assert_eq!(prof.ops[1].cycles, 250.0);
    assert!((prof.total_cycles() - 750.0).abs() < 1e-9);
    assert!((prof.total_ms() - 0.75).abs() < 1e-12);
    // f32 tensors of 4 elements: 16 bytes each.
    assert_eq!(prof.ops[0].output_bytes, 16);
    assert_eq!(prof.ops[1].input_bytes, 16);
    // Plan stats are populated.
    assert!(prof.slot_stats.planned_bytes > 0);
    assert!(prof.slot_stats.unshared_bytes >= prof.slot_stats.planned_bytes);
    // The table lists both kernels and the totals line.
    let table = prof.table();
    assert!(table.contains("k1") && table.contains("k2"), "{table}");
    assert!(table.contains("total:"), "{table}");

    // Records reset per run, run counter accumulates.
    ex.run().expect("runs again");
    let prof = ex.profiler().expect("enabled");
    assert_eq!(prof.runs, 2);
    assert_eq!(prof.ops.len(), 2);
}

#[test]
fn module_describe_lists_kernels() {
    let (module, _) = two_stage_module();
    let text = module.describe();
    assert!(text.contains("k1"));
    assert!(text.contains("k2"));
    assert!(text.contains("total 0.75"), "{text}");
}

#[test]
fn unknown_names_and_bad_output_are_typed_errors() {
    let (module, _) = two_stage_module();
    let mut ex = GraphExecutor::new(module);
    assert!(matches!(
        ex.set_input("bogus", NDArray::zeros(&[1, 4])),
        Err(RuntimeError::UnknownInput(n)) if n == "bogus"
    ));
    assert!(matches!(
        ex.set_param("bogus", NDArray::zeros(&[1, 4])),
        Err(RuntimeError::UnknownParam(n)) if n == "bogus"
    ));
    // Output requested before any run: typed error, not a panic.
    assert!(matches!(ex.get_output(0), Err(RuntimeError::NotRun(_))));
    assert!(matches!(
        ex.get_output(7),
        Err(RuntimeError::BadOutputIndex {
            index: 7,
            outputs: 1
        })
    ));
    // Running with the input still unbound is recoverable too.
    assert!(matches!(ex.run(), Err(RuntimeError::MissingInput(n)) if n == "data"));
    ex.set_input("data", NDArray::zeros(&[1, 4])).expect("bind");
    ex.run().expect("runs after the input is bound");
}

#[test]
fn params_are_seeded_and_overridable() {
    let mut g = Graph::new();
    let x = g.input(&[1, 2], "data");
    let p = g.param(&[1, 2], "w");
    let s = g.add_op(x, p, "sum");
    g.outputs.push(s);
    let fused = fuse(&g, false);
    let plan = plan_memory(&g, &fused);
    // One kernel: out = a + b, hand-lowered.
    let av = Var::new("a", DType::float32());
    let bv = Var::new("b", DType::float32());
    let ov = Var::new("o", DType::float32());
    let i = Var::int("i");
    let body = Stmt::for_(
        &i,
        0,
        2,
        Stmt::store(
            &ov,
            i.to_expr(),
            Expr::load(&av, i.to_expr()) + Expr::load(&bv, i.to_expr()),
        ),
    );
    let func = LoweredFunc {
        name: "add".into(),
        params: vec![av, bv, ov],
        param_dtypes: vec![DType::float32(); 3],
        param_extents: vec![2; 3],
        body,
    };
    let module = Module {
        graph: g,
        fused,
        kernels: vec![CompiledGroup {
            func,
            args: vec![x, p, s],
            est_ms: 0.1,
            cost: Default::default(),
            name: "add".into(),
        }],
        plan,
        target_name: "test".into(),
    };
    let mut ex = GraphExecutor::new(module);
    ex.set_input("data", NDArray::new(&[1, 2], vec![10.0, 20.0]))
        .expect("bind");
    ex.set_param("w", NDArray::new(&[1, 2], vec![1.0, 2.0]))
        .expect("bind");
    assert!(
        matches!(
            ex.set_param("w", NDArray::zeros(&[2, 2])),
            Err(RuntimeError::ShapeMismatch { .. })
        ),
        "param shapes are checked too"
    );
    ex.run().expect("runs");
    assert_eq!(ex.get_output(0).expect("output").data, vec![11.0, 22.0]);
}
