//! Criterion benches over the experiment harness: each group regenerates a
//! (scaled-down) slice of a paper figure/table per iteration, so `cargo
//! bench` both times the compiler stack and continuously re-derives the
//! evaluation data. The full-scale printable figures come from the
//! `src/bin/figNN` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tvm::prelude::*;
use tvm_ir::DType;
use tvm_sim::{arm_a53, estimate, titanx};
use tvm_topi as topi;

fn small_conv() -> topi::Conv2dWorkload {
    topi::Conv2dWorkload {
        batch: 1,
        size: 14,
        in_c: 32,
        out_c: 64,
        kernel: 3,
        stride: 1,
        pad: 1,
    }
}

/// Fig. 4 slice: build the fused and unfused conv+bn+relu modules.
fn bench_fig04_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig04_fusion");
    group.sample_size(10);
    group.bench_function("conv_bn_relu_fused_build", |b| {
        b.iter(|| {
            let mut g = tvm_graph::Graph::new();
            let x = g.input(&[1, 32, 14, 14], "data");
            let cid = g.conv2d(x, small_conv(), "conv");
            let bn = g.batch_norm(cid, "bn");
            let r = g.relu(bn, "relu");
            g.outputs.push(r);
            let m = tvm::build(&g, &titanx(), &Default::default()).expect("builds");
            black_box(m.total_ms())
        })
    });
    group.finish();
}

/// Fig. 7 slice: measure one cooperative and one non-cooperative matmul
/// schedule.
fn bench_fig07_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig07_gemm");
    group.sample_size(10);
    let w = topi::DenseWorkload {
        m: 256,
        n: 256,
        k: 256,
        dtype: DType::float32(),
    };
    let task = topi::dense_task(w, titanx());
    group.bench_function("measure_config", |b| {
        let cfg = topi::default_config(&task.space);
        b.iter(|| black_box(task.measure(&cfg)))
    });
    group.finish();
}

/// Fig. 10 slice: trace + pipeline-simulate one VDLA conv layer.
fn bench_fig10_vdla(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_vdla");
    group.sample_size(10);
    let w = topi::resnet18_convs()[11]; // C12, the smallest
    group.bench_function("trace_and_simulate", |b| {
        b.iter(|| {
            let (r, _) = tvm_bench::vdla_gemm::run_conv_on_vdla(&w, true);
            black_box(r.cycles)
        })
    });
    group.finish();
}

/// Fig. 12 slice: one ML tuning round (model fit + annealing + measure).
fn bench_fig12_tuning(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_tuning");
    group.sample_size(10);
    group.bench_function("ml_tuner_16_trials", |b| {
        b.iter(|| {
            let task = topi::conv2d_task(small_conv(), DType::float32(), titanx());
            let opts = TuneOptions {
                n_trials: 16,
                batch: 8,
                sa_steps: 4,
                sa_chains: 4,
                seed: 1,
                warm_start: Vec::new(),
            };
            black_box(tune(&task, &opts, TunerKind::GbtRank).best_ms)
        })
    });
    group.finish();
}

/// Figs. 14/16 slice: end-to-end compile of DQN for both target classes.
fn bench_e2e_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_fig16_e2e");
    group.sample_size(10);
    for (name, target) in [("gpu", titanx()), ("cpu", arm_a53())] {
        group.bench_function(format!("build_dqn_{name}"), |b| {
            b.iter(|| {
                let g = tvm_models::dqn();
                let m = tvm::build(&g, &target, &Default::default()).expect("builds");
                black_box(m.total_ms())
            })
        });
    }
    group.finish();
}

/// Fig. 18 slice: lower + estimate a bit-serial low-precision conv.
fn bench_fig18_lowprec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig18_lowprec");
    group.sample_size(10);
    let w = tvm_topi::bitserial::BitserialWorkload {
        conv: topi::Conv2dWorkload {
            batch: 1,
            size: 16,
            in_c: 64,
            out_c: 16,
            kernel: 3,
            stride: 1,
            pad: 0,
        },
        a_bits: 2,
        w_bits: 1,
    };
    let task = tvm_topi::bitserial::bitserial_task(w, arm_a53(), true);
    group.bench_function("measure_config", |b| {
        let cfg = topi::default_config(&task.space);
        b.iter(|| black_box(task.measure(&cfg)))
    });
    group.finish();
}

/// Compiler-stack microbenches: lowering, analysis, cost-model fit.
fn bench_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler_stack");
    group.sample_size(20);
    let task = topi::conv2d_task(small_conv(), DType::float32(), titanx());
    let cfg = topi::default_config(&task.space);
    let func = (task.builder)(&cfg).expect("builds");
    group.bench_function("lower_conv2d", |b| {
        b.iter(|| black_box((task.builder)(&cfg).expect("builds").name.len()))
    });
    group.bench_function("simulate_conv2d", |b| {
        b.iter(|| black_box(estimate(&func, &task.target).cycles))
    });
    group.bench_function("extract_features", |b| {
        b.iter(|| black_box(tvm_autotune::extract(&func).len()))
    });
    group.bench_function("gbt_fit_128", |b| {
        let xs: Vec<Vec<f64>> = (0..128)
            .map(|i| (0..16).map(|j| ((i * j) % 17) as f64).collect())
            .collect();
        let ys: Vec<f64> = (0..128).map(|i| (i % 23) as f64).collect();
        b.iter(|| black_box(tvm_autotune::fit(&xs, &ys, &Default::default()).n_trees()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig04_fusion,
    bench_fig07_gemm,
    bench_fig10_vdla,
    bench_fig12_tuning,
    bench_e2e_compile,
    bench_fig18_lowprec,
    bench_stack
);
criterion_main!(benches);
