//! End-to-end baseline framework models (MXNet, TensorFlow, TF-XLA,
//! TFLite, ARM ComputeLib) assembled from the vendor kernel models: each
//! framework executes the graph kernel-by-kernel with its library's
//! operators, with or without injective-op fusion (XLA fuses).

use tvm_graph::{Graph, OpType};
use tvm_sim::{estimate, Target};
use tvm_te::{create_schedule, lower};
use tvm_topi::{self as topi, Library};

/// Which framework to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Framework {
    /// MXNet: cuDNN/cuBLAS + handcrafted depthwise, no fusion.
    MxNet,
    /// TensorFlow: same libraries, slightly more framework overhead.
    TensorFlow,
    /// TensorFlow XLA: JIT-fuses element-wise ops, library convs.
    TensorFlowXla,
    /// TensorFlow Lite on ARM CPU.
    TfLite,
    /// ARM Compute Library on Mali.
    ArmComputeLib,
}

fn conv_lib(fw: Framework) -> Library {
    match fw {
        Framework::MxNet | Framework::TensorFlow | Framework::TensorFlowXla => Library::CuDnn,
        Framework::TfLite => Library::TfLite,
        Framework::ArmComputeLib => Library::ArmComputeLib,
    }
}

fn dense_lib(fw: Framework) -> Library {
    match fw {
        Framework::MxNet | Framework::TensorFlow | Framework::TensorFlowXla => Library::CuBlas,
        Framework::TfLite => Library::TfLite,
        Framework::ArmComputeLib => Library::ArmComputeLib,
    }
}

/// Simulated cost of one stand-alone injective/reduction node executed as
/// its own kernel (what a non-fusing framework pays).
fn single_op_ms(g: &Graph, id: tvm_graph::NodeId, target: &Target) -> f64 {
    let group = tvm_graph::Group {
        nodes: vec![id],
        master: id,
        output: id,
    };
    let fused = tvm_graph::FusedGraph {
        groups: vec![group],
        group_of: vec![usize::MAX; g.nodes.len()],
    };
    let _ = &fused;
    // Build a one-op kernel through the compiler path.
    let node = g.node(id);
    let inputs: Vec<tvm_te::Tensor> = node
        .inputs
        .iter()
        .map(|&i| tvm_te::placeholder(&g.node(i).shape, g.node(i).dtype, &g.node(i).name))
        .collect();
    let out = match &node.op {
        OpType::Relu => topi::relu(&inputs[0]),
        OpType::BiasAdd => topi::bias_add(&inputs[0], &inputs[1]),
        OpType::BatchNorm => topi::batch_norm(&inputs[0], &inputs[1], &inputs[2]),
        OpType::Add => topi::add(&inputs[0], &inputs[1]),
        OpType::Multiply => topi::multiply(&inputs[0], &inputs[1]),
        OpType::Tanh => topi::tanh_t(&inputs[0]),
        OpType::Sigmoid => topi::sigmoid_t(&inputs[0]),
        OpType::Softmax => topi::softmax(&inputs[0]),
        OpType::MaxPool2d {
            window,
            stride,
            pad,
        } => topi::max_pool2d(&inputs[0], *window, *stride, *pad),
        OpType::GlobalAvgPool => topi::global_avg_pool(&inputs[0]),
        OpType::Flatten => topi::flatten(&inputs[0]),
        OpType::Reshape => topi::reshape(&inputs[0], &node.shape),
        _ => return 0.0,
    };
    let mut s = create_schedule(std::slice::from_ref(&out));
    if topi::schedule_injective(&mut s, &out, target).is_err() {
        return 0.0;
    }
    let mut args = inputs;
    args.push(out);
    match lower(&s, &args, node.op.name()) {
        Ok(f) => estimate(&f, target).millis(),
        Err(_) => 0.0,
    }
}

/// Models a framework's end-to-end time on a graph.
pub fn framework_e2e_ms(g: &Graph, fw: Framework, target: &Target) -> f64 {
    let mut total = 0.0;
    let mut injective_total = 0.0;
    for node in &g.nodes {
        match &node.op {
            OpType::Input | OpType::Param => {}
            OpType::Conv2d(w) => {
                total += topi::vendor_conv2d_ms(conv_lib(fw), w, node.dtype, target)
            }
            OpType::DepthwiseConv2d(w) => {
                // "they implement their own versions of depthwise
                // convolution" — handcrafted, not library-backed.
                let lib = if matches!(
                    fw,
                    Framework::MxNet | Framework::TensorFlow | Framework::TensorFlowXla
                ) {
                    Library::MxKernel
                } else {
                    conv_lib(fw)
                };
                total += topi::vendor_depthwise_ms(lib, w, node.dtype, target);
            }
            OpType::Dense(w) => total += topi::vendor_dense_ms(dense_lib(fw), w, target),
            OpType::Conv2dTranspose {
                in_c,
                in_size,
                out_c,
                kernel,
                stride,
                ..
            } => {
                // Libraries run transposed conv as a generic (unoptimized)
                // convolution over the dilated input.
                let eq = tvm_topi::Conv2dWorkload {
                    batch: 1,
                    size: (*in_size - 1) * *stride + *kernel,
                    in_c: *in_c,
                    out_c: *out_c,
                    kernel: *kernel,
                    stride: 1,
                    pad: 0,
                };
                total += topi::vendor_conv2d_ms(conv_lib(fw), &eq, node.dtype, target) * 1.3;
            }
            _ => injective_total += single_op_ms(g, node.id, target),
        }
    }
    // XLA's JIT fuses element-wise chains: most of the injective kernel
    // launches and round trips disappear.
    let fw_overhead = match fw {
        Framework::TensorFlow => 1.06,
        Framework::TensorFlowXla => 1.0,
        _ => 1.03,
    };
    let injective = match fw {
        Framework::TensorFlowXla => injective_total * 0.35,
        _ => injective_total,
    };
    (total + injective) * fw_overhead
}
