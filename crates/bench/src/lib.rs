//! `tvm-bench` — the evaluation harness: one module per paper figure or
//! table, each returning printable rows; `src/bin/figNN.rs` binaries
//! regenerate the corresponding figure's data and `EXPERIMENTS.md` records
//! the outcomes. Absolute numbers are simulator outputs (see DESIGN.md);
//! the assertions in `tests/` check the paper's *shape*: who wins, by
//! roughly what factor, where crossovers fall.

pub mod baselines_e2e;
pub mod figures;
pub mod profiling;
pub mod vdla_gemm;

/// Prints a table of rows with a header.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("== {title} ==");
    println!("{}", header.join("\t"));
    for r in rows {
        println!("{}", r.join("\t"));
    }
    println!();
}
