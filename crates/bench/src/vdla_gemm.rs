//! VDLA kernel builders for the accelerator experiments (Figs. 10 and 21):
//! tiled GEMM schedules with DMA staging, tensorized 16x16x16 tiles and
//! optional virtual-thread latency hiding, plus the conv-as-GEMM mapping
//! (the im2col view the accelerator executes).

use tvm_ir::{DType, LoweredFunc, MemScope};
use tvm_te::{compute, create_schedule, lower_with, placeholder, reduce_axis, sum, LowerOptions};
use tvm_topi::Conv2dWorkload;
use tvm_vdla::{gemm_intrin, VdlaRunResult, VdlaSpec};

/// Rounds `x` up to a multiple of `m`.
pub fn round_up(x: i64, m: i64) -> i64 {
    (x + m - 1) / m * m
}

/// Builds a VDLA GEMM kernel `C[m, n] = sum_k A[m, k] * B[n, k]` over
/// 8-bit operands with two-level tiling: `ts x ts` SRAM tiles staged by
/// DMA (amortizing off-chip traffic, like the paper's blocked 3-D tensor
/// loads), executed as tensorized `t x t x t` GEMM-core tiles;
/// `vthreads > 1` enables latency hiding.
pub fn vdla_gemm_func(m: i64, n: i64, k: i64, t: i64, vthreads: i64) -> LoweredFunc {
    let ts = (4 * t).min(m).min(n).min(k); // SRAM tile (64 when t = 16)
    assert!(
        m % ts == 0 && n % ts == 0 && k % ts == 0 && ts % t == 0,
        "dims must be tile-aligned"
    );
    let dt = DType::int8();
    let a = placeholder(&[m, k], dt, "A");
    let b = placeholder(&[n, k], dt, "B");
    let kk = reduce_axis(k, "k");
    let c = compute(&[m, n], "C", |i| {
        sum(
            a.at(&[i[0].clone(), kk.expr()]).cast(DType::int32())
                * b.at(&[i[1].clone(), kk.expr()]).cast(DType::int32()),
            std::slice::from_ref(&kk),
        )
    });
    let mut s = create_schedule(std::slice::from_ref(&c));
    let cl = s.cache_write(&c, MemScope::AccBuffer).unwrap();
    let ax = c.op.axes();
    let (_yo, xo, yi, _xi) = s.tile(&c, &ax[0], &ax[1], ts, ts).unwrap();
    let attach_leaf = if vthreads > 1 && (n / ts) % vthreads == 0 {
        let (_xoo, xov) = s.split(&c, &xo, vthreads).unwrap();
        s.vthread(&c, &xov).unwrap();
        xov
    } else {
        xo
    };
    s.pragma(&c, &yi, "dma_copy").unwrap();
    s.compute_at(&cl, &c, &attach_leaf).unwrap();
    // SRAM-level reduction tiling: stage ts x ts operand tiles on chip.
    let clr = cl.op.reduce_axes();
    let (ks, kin) = s.split(&cl, &clr[0], ts).unwrap();
    let clax = cl.op.axes();
    // GEMM-core level: 16x16x16 tensorized tiles within the SRAM tile.
    let (y1, y2) = s.split(&cl, &clax[0], t).unwrap();
    let (x1, x2) = s.split(&cl, &clax[1], t).unwrap();
    let (k1, k2) = s.split(&cl, &kin, t).unwrap();
    s.reorder(&cl, &[&ks, &y1, &x1, &k1, &y2, &x2, &k2])
        .unwrap();
    let al = s.cache_read(&a, MemScope::InpBuffer, &[&cl]).unwrap();
    let bl = s.cache_read(&b, MemScope::WgtBuffer, &[&cl]).unwrap();
    s.compute_at(&al, &cl, &ks).unwrap();
    s.compute_at(&bl, &cl, &ks).unwrap();
    let al_leaf = s.stage(&al).unwrap().leaf_iters[0].clone();
    s.pragma(&al, &al_leaf, "dma_copy").unwrap();
    let bl_leaf = s.stage(&bl).unwrap().leaf_iters[0].clone();
    s.pragma(&bl, &bl_leaf, "dma_copy").unwrap();
    s.tensorize(&cl, &y2, gemm_intrin(t, t, t, dt)).unwrap();
    lower_with(
        &s,
        &[a, b, c],
        &format!("vdla_gemm_{m}x{n}x{k}"),
        &LowerOptions { dae_sync: true },
    )
    .expect("vdla gemm lowers")
}

/// Maps a convolution onto the accelerator as an (im2col) GEMM:
/// `M = out_c`, `N = out_pixels`, `K = in_c * k * k`, padded to tiles.
pub fn conv_as_vdla_gemm(w: &Conv2dWorkload, vthreads: i64) -> LoweredFunc {
    let t = 16;
    let ts = 4 * t;
    let m = round_up(w.out_c, ts);
    // Pad the pixel dimension so the virtual threads divide the tile grid.
    let n = round_up(w.out_size() * w.out_size(), ts * vthreads.max(1));
    let k = round_up(w.in_c * w.kernel * w.kernel, ts);
    vdla_gemm_func(m, n, k, t, vthreads)
}

/// Runs a conv layer on the VDLA pipeline; returns the result and the
/// spec used.
pub fn run_conv_on_vdla(w: &Conv2dWorkload, latency_hiding: bool) -> (VdlaRunResult, VdlaSpec) {
    let spec = VdlaSpec::default();
    let f = conv_as_vdla_gemm(w, if latency_hiding { 2 } else { 1 });
    let r = if latency_hiding {
        tvm_vdla::run_timed(&f, &spec).expect("pipeline runs")
    } else {
        tvm_vdla::run_timed_monolithic(&f, &spec).expect("trace ok")
    };
    (r, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_func_builds_both_modes() {
        for v in [1, 2] {
            let f = vdla_gemm_func(32, 32, 64, 16, v);
            let txt = f.body.to_string();
            assert!(txt.contains("vdla.gemm"), "{txt}");
            assert!(txt.contains("push_dep_to"), "{txt}");
        }
    }

    #[test]
    fn conv_mapping_covers_all_macs() {
        let w = tvm_topi::resnet18_convs()[8]; // C9: 14x14, 256->256, 3x3
        let (r, _) = run_conv_on_vdla(&w, true);
        // Padded GEMM does at least the conv's MAC count.
        assert!(r.macs as f64 >= w.macs(), "{} < {}", r.macs, w.macs());
    }
}
