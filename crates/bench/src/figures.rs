//! Data generators for every evaluation figure and table of the paper.
//! Each function returns the rows the corresponding plot/table shows; the
//! binaries print them and `tests/` assert the paper's qualitative shape.

use tvm::compiler::{build, BuildOptions};
use tvm_autotune::{tune, Database, TuneOptions, TunerKind, TuningTask};
use tvm_graph::Graph;
use tvm_ir::DType;
use tvm_sim::{arm_a53, mali_t860, titanx, Target};
use tvm_topi::{self as topi, Library};

use crate::baselines_e2e::{framework_e2e_ms, Framework};
use crate::vdla_gemm::run_conv_on_vdla;

/// Small deterministic tuning budget used throughout the harness.
pub fn quick_tune_opts(n_trials: usize) -> TuneOptions {
    TuneOptions {
        n_trials,
        batch: 8,
        sa_steps: 10,
        sa_chains: 8,
        seed: 42,
        warm_start: Vec::new(),
    }
}

/// Tunes a task with the ML optimizer and returns the best simulated ms.
pub fn tuned_ms(task: &TuningTask, trials: usize) -> f64 {
    tune(task, &quick_tune_opts(trials), TunerKind::GbtRank).best_ms
}

// ---------------------------------------------------------------- Fig. 4

/// One fusion-benchmark row: workload, times without/with operator fusion.
pub struct FusionRow {
    /// Workload label (as in the figure).
    pub name: String,
    /// End-to-end ms without fusion.
    pub no_fusion_ms: f64,
    /// End-to-end ms with fusion.
    pub fusion_ms: f64,
}

impl FusionRow {
    /// Relative speedup from fusion.
    pub fn speedup(&self) -> f64 {
        self.no_fusion_ms / self.fusion_ms
    }
}

/// Fig. 4: fused vs non-fused operations on the server GPU model.
pub fn fig04_fusion() -> Vec<FusionRow> {
    let target = titanx();
    let mut rows = Vec::new();
    let cases: Vec<(&str, Graph)> = vec![
        ("conv+bn+relu 128x28x28 k1", {
            // 1x1x128x256 conv at 28x28 with bn + relu, per the figure.
            let mut g = Graph::new();
            let x = g.input(&[1, 128, 28, 28], "data");
            let w = topi::Conv2dWorkload {
                batch: 1,
                size: 28,
                in_c: 128,
                out_c: 256,
                kernel: 1,
                stride: 1,
                pad: 0,
            };
            let c = g.conv2d(x, w, "conv");
            let b = g.batch_norm(c, "bn");
            let r = g.relu(b, "relu");
            g.outputs.push(r);
            g
        }),
        ("dwconv+bn+relu 512x14x14 k3", {
            let mut g = Graph::new();
            let x = g.input(&[1, 512, 14, 14], "data");
            let w = topi::DepthwiseConv2dWorkload {
                batch: 1,
                size: 14,
                channels: 512,
                kernel: 3,
                stride: 1,
                pad: 1,
            };
            let d = g.depthwise_conv2d(x, w, "dw");
            let b = g.batch_norm(d, "bn");
            let r = g.relu(b, "relu");
            g.outputs.push(r);
            g
        }),
        ("rnn cell h=128", {
            // h' = tanh(Wx + Uh)
            let mut g = Graph::new();
            let dw = topi::DenseWorkload {
                m: 1,
                n: 128,
                k: 128,
                dtype: DType::float32(),
            };
            let x = g.input(&[1, 128], "x");
            let h = g.input(&[1, 128], "h");
            let a = g.dense(x, dw, "wx");
            let b = g.dense(h, dw, "uh");
            let s = g.add_op(a, b, "sum");
            let shape = g.node(s).shape.clone();
            let t = g.add(tvm_graph::OpType::Tanh, vec![s], shape, "tanh");
            g.outputs.push(t);
            g
        }),
        ("lstm cell h=128", { tvm_models::lstm_lm(128, 1) }),
    ];
    for (name, g) in cases {
        let fused = build(&g, &target, &BuildOptions::default()).expect("builds");
        let unfused = build(
            &g,
            &target,
            &BuildOptions {
                no_fusion: true,
                db: None,
                decisions: None,
            },
        )
        .expect("builds");
        rows.push(FusionRow {
            name: name.to_string(),
            no_fusion_ms: unfused.total_ms(),
            fusion_ms: fused.total_ms(),
        });
    }
    rows
}

// ---------------------------------------------------------------- Fig. 7

/// One matmul row of Fig. 7.
pub struct GemmRow {
    /// Square matrix size.
    pub size: i64,
    /// cuBLAS-model time.
    pub cublas_ms: f64,
    /// TVM without cooperative shared-memory fetching.
    pub tvm_no_coop_ms: f64,
    /// Full TVM (shared-memory cooperative fetch allowed).
    pub tvm_ms: f64,
}

/// Fig. 7: cooperative memory fetching on matmul, Titan X model.
pub fn fig07_gemm(trials: usize) -> Vec<GemmRow> {
    let target = titanx();
    let mut rows = Vec::new();
    for size in [1024i64, 2048] {
        let w = topi::DenseWorkload {
            m: size,
            n: size,
            k: size,
            dtype: DType::float32(),
        };
        let cublas = topi::vendor_dense_ms(Library::CuBlas, &w, &target);
        let mut no_coop = topi::dense_task(w, target.clone());
        // Restrict the space: shared-memory staging off.
        for k in &mut no_coop.space.knobs {
            if k.name == "use_shared" {
                k.options = vec![0];
            }
        }
        let mut coop = topi::dense_task(w, target.clone());
        for k in &mut coop.space.knobs {
            if k.name == "use_shared" {
                k.options = vec![1];
            }
        }
        rows.push(GemmRow {
            size,
            cublas_ms: cublas,
            tvm_no_coop_ms: tuned_ms(&no_coop, trials),
            tvm_ms: tuned_ms(&coop, trials),
        });
    }
    rows
}

// --------------------------------------------------------------- Fig. 10

/// One roofline point per ResNet conv layer on the VDLA.
pub struct RooflineRow {
    /// Layer label (C2..C12).
    pub name: String,
    /// Operational intensity (ops/byte).
    pub intensity: f64,
    /// GOPS without latency hiding.
    pub gops_base: f64,
    /// GOPS with latency hiding.
    pub gops_hidden: f64,
    /// Compute utilization without / with latency hiding.
    pub util_base: f64,
    /// Utilization with latency hiding.
    pub util_hidden: f64,
}

/// Fig. 10: roofline of the VDLA running ResNet conv layers, with and
/// without virtual-thread latency hiding.
pub fn fig10_roofline() -> Vec<RooflineRow> {
    let mut rows = Vec::new();
    for (i, w) in topi::resnet18_convs().iter().enumerate().skip(1) {
        let (base, spec) = run_conv_on_vdla(w, false);
        let (hidden, _) = run_conv_on_vdla(w, true);
        rows.push(RooflineRow {
            name: format!("C{}", i + 1),
            intensity: hidden.intensity(),
            gops_base: base.gops(&spec),
            gops_hidden: hidden.gops(&spec),
            util_base: base
                .busy
                .get(&tvm_ir::PipeStage::Compute)
                .copied()
                .unwrap_or(0.0)
                / base.cycles.max(1.0),
            util_hidden: hidden.compute_utilization(),
        });
    }
    rows
}

// --------------------------------------------------------------- Fig. 12

/// A tuning-convergence curve.
pub struct TuneCurve {
    /// Method label.
    pub method: String,
    /// Best cost after each trial.
    pub best_curve: Vec<f64>,
}

/// Fig. 12: ML-based model vs blackbox genetic algorithm vs random search
/// on a ResNet-18 conv2d (C7), against the cuDNN model baseline.
/// Returns (curves, cudnn_ms).
pub fn fig12_tuning(trials: usize) -> (Vec<TuneCurve>, f64) {
    let target = titanx();
    let w = topi::resnet18_convs()[6]; // C7
    let cudnn = topi::vendor_conv2d_ms(Library::CuDnn, &w, DType::float32(), &target);
    let mut curves = Vec::new();
    for (name, kind) in [
        ("ML-based model", TunerKind::GbtRank),
        ("Blackbox genetic", TunerKind::Genetic),
        ("Random search", TunerKind::Random),
    ] {
        let task = topi::conv2d_task(w, DType::float32(), target.clone());
        let r = tune(&task, &quick_tune_opts(trials), kind);
        curves.push(TuneCurve {
            method: name.to_string(),
            best_curve: r.best_curve,
        });
    }
    (curves, cudnn)
}

// ------------------------------------------------- Figs. 14 / 16 / 19

/// One end-to-end row: model name and per-system times.
pub struct E2eRow {
    /// Model name.
    pub model: String,
    /// (system label, ms) pairs.
    pub systems: Vec<(String, f64)>,
}

impl E2eRow {
    /// Time of a labeled system.
    pub fn get(&self, label: &str) -> f64 {
        self.systems
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    }
}

fn tune_graph_convs(g: &Graph, target: &Target, trials: usize) -> Database {
    let mut db = Database::new();
    let mut seen: Vec<String> = Vec::new();
    for node in &g.nodes {
        match &node.op {
            tvm_graph::OpType::Conv2d(w) => {
                let task = topi::conv2d_task(*w, node.dtype, target.clone());
                if !seen.contains(&task.name) {
                    seen.push(task.name.clone());
                    let r = tune(&task, &quick_tune_opts(trials), TunerKind::GbtRank);
                    db.add_result(&task.name, &task.space, &r);
                }
            }
            tvm_graph::OpType::DepthwiseConv2d(w) => {
                let task = topi::depthwise_task(*w, node.dtype, target.clone());
                if !seen.contains(&task.name) {
                    seen.push(task.name.clone());
                    let r = tune(&task, &quick_tune_opts(trials), TunerKind::GbtRank);
                    db.add_result(&task.name, &task.space, &r);
                }
            }
            tvm_graph::OpType::Dense(w) => {
                let task = topi::dense_task(*w, target.clone());
                if !seen.contains(&task.name) {
                    seen.push(task.name.clone());
                    let r = tune(&task, &quick_tune_opts(trials), TunerKind::GbtRank);
                    db.add_result(&task.name, &task.space, &r);
                }
            }
            _ => {}
        }
    }
    db
}

fn e2e_row(
    model: &str,
    g: &Graph,
    target: &Target,
    baselines: &[Framework],
    trials: usize,
) -> E2eRow {
    let db = tune_graph_convs(g, target, trials);
    let tvm_full = build(
        g,
        target,
        &BuildOptions {
            no_fusion: false,
            db: Some(&db),
            decisions: None,
        },
    )
    .expect("builds");
    let tvm_nograph = build(
        g,
        target,
        &BuildOptions {
            no_fusion: true,
            db: Some(&db),
            decisions: None,
        },
    )
    .expect("builds");
    let mut systems: Vec<(String, f64)> = baselines
        .iter()
        .map(|fw| (format!("{fw:?}"), framework_e2e_ms(g, *fw, target)))
        .collect();
    systems.push(("TVM w/o graph opt".to_string(), tvm_nograph.total_ms()));
    systems.push(("TVM".to_string(), tvm_full.total_ms()));
    E2eRow {
        model: model.to_string(),
        systems,
    }
}

/// Fig. 14: server-GPU end-to-end comparison. `input_size` scales the
/// vision models (224 = paper scale); `trials` is the per-op tuning
/// budget.
pub fn fig14_gpu_e2e(input_size: i64, trials: usize) -> Vec<E2eRow> {
    let target = titanx();
    let fws = [
        Framework::MxNet,
        Framework::TensorFlow,
        Framework::TensorFlowXla,
    ];
    vec![
        e2e_row(
            "ResNet-18",
            &tvm_models::resnet18(input_size),
            &target,
            &fws,
            trials,
        ),
        e2e_row(
            "MobileNet",
            &tvm_models::mobilenet(input_size),
            &target,
            &fws,
            trials,
        ),
        e2e_row(
            "LSTM LM",
            &tvm_models::lstm_lm(128, 4),
            &target,
            &fws,
            trials,
        ),
        e2e_row("DQN", &tvm_models::dqn(), &target, &fws, trials),
        e2e_row(
            "DCGAN",
            &tvm_models::dcgan_generator(),
            &target,
            &fws,
            trials,
        ),
    ]
}

/// Fig. 16: ARM A53 end-to-end vs the TFLite model.
pub fn fig16_arm_e2e(input_size: i64, trials: usize) -> Vec<E2eRow> {
    let target = arm_a53();
    let fws = [Framework::TfLite];
    vec![
        e2e_row(
            "ResNet-18",
            &tvm_models::resnet18(input_size),
            &target,
            &fws,
            trials,
        ),
        e2e_row(
            "MobileNet",
            &tvm_models::mobilenet(input_size),
            &target,
            &fws,
            trials,
        ),
        e2e_row("DQN", &tvm_models::dqn(), &target, &fws, trials),
    ]
}

/// Fig. 19: Mali GPU, fp32 and fp16, vs the ARM Compute Library model.
/// Reported per model as the sum of its conv workload times (the
/// convolution-dominated portion), for both precisions.
pub fn fig19_mali(trials: usize) -> Vec<E2eRow> {
    let target = mali_t860();
    let mut rows = Vec::new();
    let models: Vec<(&str, Vec<topi::Conv2dWorkload>)> = vec![
        ("ResNet-18", topi::resnet18_convs()),
        ("DQN", topi::dqn_convs()),
    ];
    for (name, convs) in models {
        for (dt, label) in [(DType::float32(), "float32"), (DType::float16(), "float16")] {
            let mut acl = 0.0;
            let mut tvm_t = 0.0;
            for w in &convs {
                acl += topi::vendor_conv2d_ms(Library::ArmComputeLib, w, dt, &target);
                let task = topi::conv2d_task(*w, dt, target.clone());
                tvm_t += tuned_ms(&task, trials);
            }
            rows.push(E2eRow {
                model: format!("{name} {label}"),
                systems: vec![
                    ("ARMComputeLib".to_string(), acl),
                    ("TVM".to_string(), tvm_t),
                ],
            });
        }
    }
    rows
}

// ---------------------------------------------------- Figs. 15 / 17

/// Per-operator speedup row (relative to the figure's baseline).
pub struct OpRow {
    /// Operator label (C1..C12, D1..D9).
    pub name: String,
    /// (system, ms).
    pub systems: Vec<(String, f64)>,
}

impl OpRow {
    /// Speedup of `system` relative to `baseline`.
    pub fn speedup(&self, system: &str, baseline: &str) -> f64 {
        let b = self
            .systems
            .iter()
            .find(|(l, _)| l == baseline)
            .map(|(_, v)| *v);
        let s = self
            .systems
            .iter()
            .find(|(l, _)| l == system)
            .map(|(_, v)| *v);
        match (b, s) {
            (Some(b), Some(s)) => b / s,
            _ => f64::NAN,
        }
    }
}

/// Figs. 15 (GPU) / 17 (ARM): per-operator comparison over all Table 2
/// workloads. `gpu` selects the target and baselines.
pub fn per_op_rows(gpu: bool, trials: usize) -> Vec<OpRow> {
    let target = if gpu { titanx() } else { arm_a53() };
    let mut rows = Vec::new();
    for (i, w) in topi::resnet18_convs().iter().enumerate() {
        let mut systems = Vec::new();
        if gpu {
            systems.push((
                "cuDNN".to_string(),
                topi::vendor_conv2d_ms(Library::CuDnn, w, DType::float32(), &target),
            ));
            // Tensor Comprehensions: blackbox auto-tuning (scaled-down
            // trial count relative to the paper's 2000).
            let task = topi::conv2d_task(*w, DType::float32(), target.clone());
            let tc = tune(&task, &quick_tune_opts(trials), TunerKind::Genetic);
            systems.push(("TC".to_string(), tc.best_ms));
        } else {
            systems.push((
                "TFLite".to_string(),
                topi::vendor_conv2d_ms(Library::TfLite, w, DType::float32(), &target),
            ));
        }
        let task = topi::conv2d_task(*w, DType::float32(), target.clone());
        systems.push(("TVM".to_string(), tuned_ms(&task, trials)));
        // Weight-pretransformed Winograd for 3x3/s1 layers (TVM PT), CPU
        // flavor (see winograd module docs).
        if !gpu && w.kernel == 3 && w.stride == 1 && w.out_size() % 2 == 0 {
            let pt = topi::winograd_task(*w, DType::float32(), target.clone());
            systems.push(("TVM PT".to_string(), tuned_ms(&pt, trials)));
        }
        rows.push(OpRow {
            name: format!("C{}", i + 1),
            systems,
        });
    }
    for (i, w) in topi::mobilenet_dwconvs().iter().enumerate() {
        let mut systems = Vec::new();
        if gpu {
            systems.push((
                "MX Kernel".to_string(),
                topi::vendor_depthwise_ms(Library::MxKernel, w, DType::float32(), &target),
            ));
        } else {
            systems.push((
                "TFLite".to_string(),
                topi::vendor_depthwise_ms(Library::TfLite, w, DType::float32(), &target),
            ));
        }
        let task = topi::depthwise_task(*w, DType::float32(), target.clone());
        systems.push(("TVM".to_string(), tuned_ms(&task, trials)));
        rows.push(OpRow {
            name: format!("D{}", i + 1),
            systems,
        });
    }
    rows
}

// --------------------------------------------------------------- Fig. 18

/// Fig. 18: ultra-low-precision (2-bit activation, 1-bit weight) conv on
/// ARM vs the Caffe2 ultra-low-precision model; single- and multi-
/// threaded TVM.
pub fn fig18_lowprec(trials: usize) -> Vec<OpRow> {
    let target = arm_a53();
    let mut rows = Vec::new();
    for (i, c) in topi::resnet18_convs().iter().enumerate().skip(1) {
        // Packed inputs are spatially pre-padded; the operator itself runs
        // pad-free.
        let w = tvm_topi::bitserial::BitserialWorkload {
            conv: topi::Conv2dWorkload {
                pad: 0,
                size: c.size + 2 * c.pad,
                ..*c
            },
            a_bits: 2,
            w_bits: 1,
        };
        let base = topi::vendor_conv2d_ms(Library::Caffe2LowPrec, c, DType::uint(8), &target) / 9.0; // low-precision kernels are ~9x cheaper than int8 MACs
        let single = tvm_topi::bitserial::bitserial_task(w, target.clone(), false);
        let multi = tvm_topi::bitserial::bitserial_task(w, target.clone(), true);
        rows.push(OpRow {
            name: format!("C{}", i + 1),
            systems: vec![
                ("Hand optimized".to_string(), base),
                ("TVM single-threaded".to_string(), tuned_ms(&single, trials)),
                ("TVM multi-threaded".to_string(), tuned_ms(&multi, trials)),
            ],
        });
    }
    rows
}

// --------------------------------------------------------------- Fig. 21

/// Fig. 21 data: ResNet-18 inference time split into conv time and other
/// time, for CPU-only and CPU+FPGA execution.
pub struct OffloadRow {
    /// Execution mode label.
    pub mode: String,
    /// Time spent in offloadable conv layers.
    pub conv_ms: f64,
    /// First (non-offloaded) conv layer.
    pub layer0_ms: f64,
    /// Everything else (CPU).
    pub other_ms: f64,
}

impl OffloadRow {
    /// Total time.
    pub fn total_ms(&self) -> f64 {
        self.conv_ms + self.layer0_ms + self.other_ms
    }
}

/// Fig. 21: offloading ResNet conv layers to the VDLA.
pub fn fig21_offload(input_size: i64, trials: usize) -> Vec<OffloadRow> {
    let cpu = arm_a53();
    let g = tvm_models::resnet18(input_size);
    let db = tune_graph_convs(&g, &cpu, trials);
    let module = build(
        &g,
        &cpu,
        &BuildOptions {
            no_fusion: false,
            db: Some(&db),
            decisions: None,
        },
    )
    .expect("builds");
    // Split CPU kernel times: conv groups (except the shallow stem conv,
    // which stays on the CPU) vs the rest.
    let mut conv_cpu = 0.0;
    let mut layer0 = 0.0;
    let mut other = 0.0;
    for k in &module.kernels {
        if k.name.contains("conv2d") && !k.name.contains("depthwise") {
            if layer0 == 0.0 {
                layer0 = k.est_ms; // first conv in execution order = stem
            } else {
                conv_cpu += k.est_ms;
            }
        } else {
            other += k.est_ms;
        }
    }
    // FPGA path: every offloadable conv runs on the VDLA pipeline.
    let spec = tvm_vdla::VdlaSpec::default();
    let mut conv_fpga = 0.0;
    let mut seen_first = false;
    for node in &g.nodes {
        if let tvm_graph::OpType::Conv2d(w) = &node.op {
            if !seen_first {
                seen_first = true; // stem stays on CPU
                continue;
            }
            let (r, _) = run_conv_on_vdla(w, true);
            conv_fpga += r.millis(&spec);
        }
    }
    vec![
        OffloadRow {
            mode: "TVM ARM".to_string(),
            conv_ms: conv_cpu,
            layer0_ms: layer0,
            other_ms: other,
        },
        OffloadRow {
            mode: "TVM ARM+FPGA".to_string(),
            conv_ms: conv_fpga,
            layer0_ms: layer0,
            other_ms: other,
        },
    ]
}

// --------------------------------------------------------------- Table 1

/// Table 1, measured: trials needed by each automation method to reach
/// within `slack`x of the best cost any method found.
pub fn table01_data_efficiency(trials: usize, slack: f64) -> Vec<(String, usize)> {
    let target = titanx();
    let w = topi::resnet18_convs()[5]; // C6
    let mut results = Vec::new();
    let mut best_overall = f64::INFINITY;
    let mut curves = Vec::new();
    for (name, kind) in [
        ("ML based cost model", TunerKind::GbtRank),
        ("Blackbox auto-tuning (GA)", TunerKind::Genetic),
        ("Blackbox auto-tuning (random)", TunerKind::Random),
        ("Predefined cost model", TunerKind::Predefined),
    ] {
        let task = topi::conv2d_task(w, DType::float32(), target.clone());
        let r = tune(&task, &quick_tune_opts(trials), kind);
        best_overall = best_overall.min(r.best_ms);
        curves.push((name.to_string(), r.best_curve));
    }
    for (name, curve) in curves {
        let need = curve
            .iter()
            .position(|&c| c <= best_overall * slack)
            .map(|p| p + 1)
            .unwrap_or(trials + 1);
        results.push((name, need));
    }
    results
}
