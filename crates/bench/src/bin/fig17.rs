//! Regenerates Fig. 17: per-operator ARM speedups over TFLite kernels.
use tvm_bench::figures::per_op_rows;
use tvm_bench::print_table;

fn main() {
    let rows = per_op_rows(false, 32);
    print_table(
        "Figure 17: per-operator speedup on a53-sim (baseline = TFLite; PT = winograd pre-transformed)",
        &["op", "TFLite(ms)", "TVM(ms)", "TVM PT(ms)", "speedup", "PT speedup"],
        &rows
            .iter()
            .map(|r| {
                let base = r.systems[0].1;
                let tvm = r.systems.iter().find(|(l, _)| l == "TVM").map(|(_, v)| *v).unwrap();
                let pt = r.systems.iter().find(|(l, _)| l == "TVM PT").map(|(_, v)| *v);
                vec![
                    r.name.clone(),
                    format!("{base:.3}"),
                    format!("{tvm:.3}"),
                    pt.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
                    format!("{:.2}x", base / tvm),
                    pt.map(|v| format!("{:.2}x", base / v)).unwrap_or_else(|| "-".into()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
