//! Tuning-throughput benchmark: wall-clock and device-pool scaling of the
//! parallel autotuner on the Fig. 12 workloads (matmul + conv2d C7).
//!
//! For each worker count the same tuning run is repeated under a rayon
//! pool of that size; the run must produce a bit-for-bit identical trial
//! history and best cost at every worker count (the parallel-tuning
//! determinism contract) and the process exits non-zero if it does not.
//! Measurement scaling is then reported two ways:
//!
//! * **wall-clock** trials/sec of the host doing lowering + simulation +
//!   model fitting — honest numbers for however many cores the host
//!   actually has (CI containers often pin this to one). Adding workers
//!   must never regress this number (no-degradation gate);
//! * **virtual-lane thread scaling** from replaying the 1-thread run's
//!   per-item work log (measure/lower/anneal batches) onto N worker
//!   lanes — this measures the tuner's parallel fraction (lock
//!   contention, serial residue) independent of host core count, and
//!   gates `thread_speedup_4x` at 2x (quick) / 3x (full);
//! * **device-pool** throughput from replaying the measured configs
//!   through [`Tracker::run_batch`] on fleets of 1/2/4 simulated devices
//!   — the §5.4 scaling mechanism, computed from the tracker's exact
//!   per-device busy-time accounting and therefore host-independent.
//!
//! Writes `results/BENCH_tuning.json`. `--quick` shrinks the trial
//! budget and drops the 8-thread row for CI.
//!
//! `--robustness` instead benchmarks the fault-tolerance layer: the same
//! tuning run is repeated on a 4-device pool under escalating chaos
//! (fault-free, flaky fleet, three dead devices) and must converge to the
//! identical best config every time; the fleet-makespan overhead of
//! retries/timeouts/re-measurement is recorded to
//! `results/BENCH_robustness.json`.

use std::time::Instant;

use tvm_autotune::{
    pool::Tracker, tune, tune_with, RetryPolicy, TuneOptions, TuneResult, TuneStats, TunerKind,
    TuningTask, WorkLog,
};
use tvm_ir::DType;
use tvm_json::Value;
use tvm_sim::{titanx, FaultPlan, FaultRates};
use tvm_topi::{self as topi, DenseWorkload};

struct RunRow {
    threads: usize,
    wall_s: f64,
    best_ms: f64,
    history: Vec<(u64, f64)>,
    stats: TuneStats,
    work: WorkLog,
}

/// Makespan of scheduling `durs` onto `lanes` parallel lanes with the
/// greedy longest-processing-time rule: items sorted by decreasing
/// duration, each placed on the currently least-loaded lane.
fn lane_makespan(durs: &[f64], lanes: usize) -> f64 {
    let mut sorted: Vec<f64> = durs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut load = vec![0.0f64; lanes.max(1)];
    for d in sorted {
        let min = load
            .iter_mut()
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty lanes");
        *min += d;
    }
    load.iter().cloned().fold(0.0, f64::max)
}

/// Estimated wall time of the run replayed on `lanes` worker lanes: the
/// serial residue plus each recorded phase's lane makespan. Phases are
/// barriers (the tuner joins every batch before proposing the next), so
/// makespans add.
fn replay_wall_s(serial_s: f64, work: &WorkLog, lanes: usize) -> f64 {
    serial_s
        + work
            .phases
            .iter()
            .map(|p| lane_makespan(&p.durs_s, lanes))
            .sum::<f64>()
}

fn tune_at(threads: usize, task: &TuningTask, opts: &TuneOptions) -> (TuneResult, f64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool");
    let start = Instant::now();
    let r = pool.install(|| tune(task, opts, TunerKind::GbtRank));
    (r, start.elapsed().as_secs_f64())
}

/// Replays the run's distinct measured configs through the device pool on a
/// fleet of `n_devices`, returning the fleet makespan in simulated ms.
fn pool_makespan(task: &TuningTask, history: &[(u64, f64)], n_devices: usize) -> f64 {
    let mut seen = std::collections::HashSet::new();
    let funcs: Vec<_> = history
        .iter()
        .filter(|(idx, cost)| cost.is_finite() && seen.insert(*idx))
        .filter_map(|(idx, _)| (task.builder)(&task.space.get(*idx)).ok())
        .collect();
    let refs: Vec<&tvm_ir::LoweredFunc> = funcs.iter().collect();
    let mut tracker = Tracker::new((0..n_devices).map(|_| task.target.clone()).collect());
    tracker.set_sim_options(task.sim_opts.clone());
    tracker.run_batch(task.target.name(), &refs);
    tracker.makespan_ms()
}

fn bench_workload(
    name: &str,
    task: &TuningTask,
    opts: &TuneOptions,
    threads: &[usize],
    min_speedup_4x: f64,
    exit_ok: &mut bool,
) -> Value {
    println!(
        "== {name}: {} trials, threads {threads:?} ==",
        opts.n_trials
    );
    let mut rows: Vec<RunRow> = Vec::new();
    for &t in threads {
        let (r, wall_s) = tune_at(t, task, opts);
        println!(
            "  threads {t}: {:.2}s wall, {:.1} trials/s, best {:.4} ms, \
             {} lowerings, {} plan hits / {} misses, {} lock waits ({} us)",
            wall_s,
            r.history.len() as f64 / wall_s,
            r.best_ms,
            r.stats.lowerings,
            r.stats.plan_hits,
            r.stats.plan_misses,
            r.stats.lock_waits,
            r.stats.lock_wait_ns / 1_000,
        );
        rows.push(RunRow {
            threads: t,
            wall_s,
            best_ms: r.best_ms,
            history: r
                .history
                .iter()
                .map(|h| (h.config_index, h.cost_ms))
                .collect(),
            stats: r.stats,
            work: r.work,
        });
    }
    let base = &rows[0];
    let mut parity = true;
    for row in &rows[1..] {
        if row.history != base.history || row.best_ms != base.best_ms {
            parity = false;
            *exit_ok = false;
            eprintln!(
                "PARITY FAILURE on {name}: {} threads diverges from {} threads \
                 (best {:.6} vs {:.6})",
                row.threads, base.threads, row.best_ms, base.best_ms
            );
        }
    }
    // No-degradation gate: adding rayon workers must never make the run
    // slower on the real host, whatever its core count. 0.9 tolerates
    // scheduler noise; the historical conv2d regression sat at 0.76.
    let base_tps = base.history.len() as f64 / base.wall_s;
    for row in &rows[1..] {
        let tps = row.history.len() as f64 / row.wall_s;
        if tps < 0.9 * base_tps {
            *exit_ok = false;
            eprintln!(
                "THREAD SCALING REGRESSION on {name}: {} threads ran at {tps:.1} \
                 trials/s vs {base_tps:.1} at 1 thread ({:.2}x)",
                row.threads,
                tps / base_tps
            );
        }
    }
    // Virtual-lane thread scaling from the 1-thread run's work log: the
    // per-item costs are measured uncontended, then replayed onto N lanes
    // (greedy LPT per batch). This isolates the tuner's parallel fraction
    // from however many cores the host actually has, mirroring the
    // device-pool replay below.
    let measured_s: f64 = base
        .work
        .phases
        .iter()
        .map(|p| p.durs_s.iter().sum::<f64>())
        .sum();
    let serial_s = (base.wall_s - measured_s).max(0.0);
    let replay_t1 = replay_wall_s(serial_s, &base.work, 1);
    let lane_rows: Vec<(usize, f64)> = threads
        .iter()
        .map(|&n| (n, replay_wall_s(serial_s, &base.work, n)))
        .collect();
    let thread_speedup_4 = lane_rows
        .iter()
        .find(|(n, _)| *n == 4)
        .map(|(_, t)| replay_t1 / t)
        .unwrap_or(1.0);
    for (n, t) in &lane_rows {
        println!(
            "  lanes {n}: est {:.2}s, {:.1} trials/s ({:.2}x)",
            t,
            base.history.len() as f64 / t,
            replay_t1 / t
        );
    }
    if thread_speedup_4 < min_speedup_4x {
        *exit_ok = false;
        eprintln!(
            "THREAD SCALING FAILURE on {name}: {thread_speedup_4:.2}x at 4 lanes \
             (< {min_speedup_4x:.1}x; serial residue {serial_s:.3}s of {:.3}s wall)",
            base.wall_s
        );
    }
    // Device-pool scaling on the measured configs (host-independent).
    let fleets = [1usize, 2, 4];
    let makespans: Vec<f64> = fleets
        .iter()
        .map(|&n| pool_makespan(task, &base.history, n))
        .collect();
    let pool_speedup_4 = makespans[0] / makespans[2];
    println!(
        "  device pool: makespan {:.3}/{:.3}/{:.3} ms on 1/2/4 devices ({:.2}x at 4)",
        makespans[0], makespans[1], makespans[2], pool_speedup_4
    );
    if pool_speedup_4 < 2.0 {
        *exit_ok = false;
        eprintln!("POOL SCALING FAILURE on {name}: {pool_speedup_4:.2}x at 4 devices (< 2x)");
    }
    Value::object([
        ("workload", Value::Str(name.into())),
        ("trials", Value::Int(opts.n_trials as i64)),
        ("parity_ok", Value::Bool(parity)),
        ("best_ms", Value::Float(base.best_ms)),
        (
            "runs",
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object([
                            ("threads", Value::Int(r.threads as i64)),
                            ("wall_s", Value::Float(r.wall_s)),
                            (
                                "trials_per_sec",
                                Value::Float(r.history.len() as f64 / r.wall_s),
                            ),
                            ("best_ms", Value::Float(r.best_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "thread_scaling",
            Value::object([
                ("mode", Value::Str("virtual_lane_replay".into())),
                ("serial_s", Value::Float(serial_s)),
                (
                    "lanes",
                    Value::Array(
                        lane_rows
                            .iter()
                            .map(|&(n, t)| {
                                Value::object([
                                    ("threads", Value::Int(n as i64)),
                                    ("est_wall_s", Value::Float(t)),
                                    (
                                        "trials_per_sec",
                                        Value::Float(base.history.len() as f64 / t),
                                    ),
                                    ("speedup", Value::Float(replay_t1 / t)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("thread_speedup_4x", Value::Float(thread_speedup_4)),
        (
            "counters",
            Value::object([
                ("lowerings", Value::Int(base.stats.lowerings as i64)),
                ("simulations", Value::Int(base.stats.simulations as i64)),
                ("lookups", Value::Int(base.stats.lookups as i64)),
                ("plan_hits", Value::Int(base.stats.plan_hits as i64)),
                ("plan_misses", Value::Int(base.stats.plan_misses as i64)),
                ("intern_hits", Value::Int(base.stats.intern_hits as i64)),
                ("intern_misses", Value::Int(base.stats.intern_misses as i64)),
                ("lock_waits", Value::Int(base.stats.lock_waits as i64)),
                ("lock_wait_ns", Value::Int(base.stats.lock_wait_ns as i64)),
            ]),
        ),
        (
            "device_pool",
            Value::Array(
                fleets
                    .iter()
                    .zip(&makespans)
                    .map(|(&n, &ms)| {
                        Value::object([
                            ("devices", Value::Int(n as i64)),
                            ("makespan_ms", Value::Float(ms)),
                            (
                                "trials_per_sec",
                                Value::Float(1000.0 * base.history.len() as f64 / ms),
                            ),
                            ("speedup", Value::Float(makespans[0] / ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("pool_speedup_4x", Value::Float(pool_speedup_4)),
    ])
}

/// Runs a workload's gates, retrying once on failure. The wall-clock gates
/// (no-degradation, replay speedup) measure a shared host; a single retry
/// filters scheduler noise while a real regression still fails both
/// attempts. Deterministic failures (parity) fail identically on retry.
fn bench_workload_retrying(
    name: &str,
    task: &TuningTask,
    opts: &TuneOptions,
    threads: &[usize],
    min_speedup_4x: f64,
    exit_ok: &mut bool,
) -> Value {
    let mut first_ok = true;
    let first = bench_workload(name, task, opts, threads, min_speedup_4x, &mut first_ok);
    if first_ok {
        return first;
    }
    println!("  retrying {name}: first attempt failed a gate (could be host noise)");
    let mut second_ok = true;
    let second = bench_workload(name, task, opts, threads, min_speedup_4x, &mut second_ok);
    if !second_ok {
        *exit_ok = false;
    }
    second
}

/// One chaos scenario for the robustness benchmark.
struct Scenario {
    name: &'static str,
    plan: FaultPlan,
}

fn robustness_scenarios() -> Vec<Scenario> {
    let mut three_dead = FaultPlan::none();
    three_dead.kill_from(1, 0).kill_from(2, 0).kill_from(3, 0);
    vec![
        Scenario {
            name: "fault_free",
            plan: FaultPlan::none(),
        },
        Scenario {
            name: "flaky_fleet",
            plan: FaultPlan::seeded(
                1234,
                FaultRates {
                    crash: 0.0,
                    hang: 0.05,
                    transient: 0.10,
                    noise: 0.05,
                    noise_factor: 8.0,
                },
            ),
        },
        Scenario {
            name: "three_devices_dead",
            plan: three_dead,
        },
    ]
}

/// Fault-tolerance overhead benchmark: identical tuning run on a 4-device
/// pool under escalating chaos; convergence must be bit-for-bit invariant
/// and the makespan overhead is the price of the retries.
fn bench_robustness(quick: bool) -> bool {
    let opts = TuneOptions {
        n_trials: if quick { 32 } else { 64 },
        batch: 8,
        sa_steps: if quick { 10 } else { 40 },
        sa_chains: if quick { 8 } else { 16 },
        seed: 42,
        warm_start: Vec::new(),
    };
    let target = titanx();
    let task = topi::dense_task(
        DenseWorkload {
            m: 64,
            n: 512,
            k: 512,
            dtype: DType::float32(),
        },
        target,
    );
    println!(
        "== robustness: dense_64x512x512, {} trials, 4 devices ==",
        opts.n_trials
    );
    let mut ok = true;
    // Fault-free reference: (trial history, best cost, fleet makespan).
    type Baseline = (Vec<(u64, f64)>, f64, f64);
    let mut baseline: Option<Baseline> = None;
    let mut rows: Vec<Value> = Vec::new();
    for sc in robustness_scenarios() {
        let mut tracker = Tracker::new(vec![task.target.clone(); 4]);
        tracker.set_sim_options(task.sim_opts.clone());
        tracker.set_fault_plan(sc.plan);
        // Timeout budget sized to the workload (sub-ms kernels): hangs
        // charge ~50ms of device time instead of the 10s default, so the
        // overhead column reflects scheduling cost rather than one
        // enormous timeout constant.
        tracker.set_retry_policy(RetryPolicy {
            timeout_ms: 50.0,
            ..RetryPolicy::fault_tolerant()
        });
        let start = Instant::now();
        let r =
            tune_with(&task, &opts, TunerKind::GbtRank, Some(&mut tracker), None).expect("tunes");
        let wall_s = start.elapsed().as_secs_f64();
        let makespan = tracker.makespan_ms();
        let history: Vec<(u64, f64)> = r
            .history
            .iter()
            .map(|h| (h.config_index, h.cost_ms))
            .collect();
        let mut parity = true;
        let overhead = match &baseline {
            None => {
                baseline = Some((history.clone(), r.best_ms, makespan));
                1.0
            }
            Some((base_hist, base_best, base_makespan)) => {
                if history != *base_hist || r.best_ms != *base_best {
                    parity = false;
                    ok = false;
                    eprintln!(
                        "ROBUSTNESS PARITY FAILURE on {}: best {:.6} vs fault-free {:.6}",
                        sc.name, r.best_ms, base_best
                    );
                }
                makespan / base_makespan
            }
        };
        if r.stats.pool.failed_jobs > 0 {
            ok = false;
            eprintln!(
                "ROBUSTNESS JOB LOSS on {}: {} jobs failed permanently",
                sc.name, r.stats.pool.failed_jobs
            );
        }
        let p = &r.stats.pool;
        let dead = r.stats.device_health.iter().filter(|h| h.dead).count();
        println!(
            "  {:<20} best {:.4} ms, makespan {:.1} ms ({overhead:.2}x), \
             {} retries / {} timeouts / {} quarantines, {dead} dead",
            sc.name, r.best_ms, makespan, p.retries, p.timeouts, p.quarantines
        );
        rows.push(Value::object([
            ("scenario", Value::Str(sc.name.into())),
            ("parity_ok", Value::Bool(parity)),
            ("best_ms", Value::Float(r.best_ms)),
            ("wall_s", Value::Float(wall_s)),
            ("makespan_ms", Value::Float(makespan)),
            ("overhead_x", Value::Float(overhead)),
            ("attempts", Value::Int(p.attempts as i64)),
            ("retries", Value::Int(p.retries as i64)),
            ("timeouts", Value::Int(p.timeouts as i64)),
            ("transient_errors", Value::Int(p.transient_errors as i64)),
            ("crash_faults", Value::Int(p.crash_faults as i64)),
            ("quarantines", Value::Int(p.quarantines as i64)),
            ("readmissions", Value::Int(p.readmissions as i64)),
            ("remeasured_jobs", Value::Int(p.remeasured_jobs as i64)),
            ("failed_jobs", Value::Int(p.failed_jobs as i64)),
            ("backoff_ms", Value::Float(p.backoff_ms)),
            ("dead_devices", Value::Int(dead as i64)),
        ]));
    }
    let doc = Value::object([
        ("bench", Value::Str("fault_tolerance".into())),
        ("quick", Value::Bool(quick)),
        ("devices", Value::Int(4)),
        ("trials", Value::Int(opts.n_trials as i64)),
        ("seed", Value::Int(opts.seed as i64)),
        ("parity_ok", Value::Bool(ok)),
        ("scenarios", Value::Array(rows)),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(
        "results/BENCH_robustness.json",
        tvm_json::to_string(&doc) + "\n",
    )
    .expect("write results/BENCH_robustness.json");
    println!("wrote results/BENCH_robustness.json (parity_ok = {ok})");
    ok
}

/// Trials a run needs to match `target_ms` (1-based), per its best-curve.
fn trials_to_reach(r: &TuneResult, target_ms: f64) -> Option<usize> {
    r.best_curve.iter().position(|&c| c <= target_ms).map(|i| i + 1)
}

fn curve_json(r: &TuneResult) -> Value {
    Value::Array(r.best_curve.iter().map(|&c| Value::Float(c)).collect())
}

/// Sketch-vs-template benchmark: on each Fig. 12 workload, the generated
/// sketch space searched by the evolutionary tuner must match or beat the
/// hand-written template searched by SA+GBT under the same trial budget,
/// and a transfer-warmed run (seeded from a smaller donor workload's
/// journal) must reach the cold run's best in no more trials. Curves are
/// merged into `results/BENCH_tuning.json` under `"sketch"`.
fn bench_sketch(quick: bool) -> bool {
    let opts = TuneOptions {
        n_trials: if quick { 32 } else { 64 },
        batch: 8,
        sa_steps: if quick { 10 } else { 40 },
        sa_chains: if quick { 8 } else { 16 },
        seed: 42,
        warm_start: Vec::new(),
    };
    let target = titanx();
    let dense_w = DenseWorkload {
        m: 64,
        n: 512,
        k: 512,
        dtype: DType::float32(),
    };
    let dense_donor_w = DenseWorkload {
        m: 32,
        n: 256,
        k: 256,
        dtype: DType::float32(),
    };
    let conv_w = topi::resnet18_convs()[6];
    let conv_donor_w = topi::Conv2dWorkload {
        batch: 1,
        size: 14,
        in_c: 128,
        out_c: 128,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    struct Case {
        name: &'static str,
        template: TuningTask,
        sketch: TuningTask,
        donor: TuningTask,
    }
    let cases = [
        Case {
            name: "dense_64x512x512",
            template: topi::dense_task(dense_w.clone(), target.clone()),
            sketch: topi::dense_sketch_task(dense_w, target.clone()).expect("dense sketches"),
            donor: topi::dense_sketch_task(dense_donor_w, target.clone())
                .expect("donor dense sketches"),
        },
        Case {
            name: "resnet18_C7_conv2d",
            template: topi::conv2d_task(conv_w, DType::float32(), target.clone()),
            sketch: topi::conv2d_sketch_task(conv_w, DType::float32(), target.clone())
                .expect("conv sketches"),
            donor: topi::conv2d_sketch_task(conv_donor_w, DType::float32(), target.clone())
                .expect("donor conv sketches"),
        },
    ];
    let mut ok = true;
    let mut rows: Vec<Value> = Vec::new();
    for case in cases {
        println!(
            "== sketch {}: {} trials, template space {} vs sketch space {} ==",
            case.name,
            opts.n_trials,
            case.template.space.size(),
            case.sketch.space.size()
        );
        let template = tune(&case.template, &opts, TunerKind::GbtRank);
        let cold = tune(&case.sketch, &opts, TunerKind::Evolutionary);
        // Warm run: the donor's journal (trials + signature) seeds the
        // target's initial population.
        let path = std::env::temp_dir().join(format!("tvm_rs_bench_sketch_{}.jsonl", case.name));
        let _ = std::fs::remove_file(&path);
        let mut j = tvm_autotune::Journal::create(&path).expect("journal");
        tune_with(&case.donor, &opts, TunerKind::Evolutionary, None, Some(&mut j))
            .expect("donor tunes");
        let warm = tune_with(&case.sketch, &opts, TunerKind::Evolutionary, None, Some(&mut j))
            .expect("warmed tunes");
        drop(j);
        let _ = std::fs::remove_file(&path);
        let cold_reach = trials_to_reach(&cold, cold.best_ms).unwrap_or(opts.n_trials);
        let warm_reach = trials_to_reach(&warm, cold.best_ms);
        println!(
            "  template best {:.4} ms | sketch best {:.4} ms (warm {:.4} ms); \
             cold reached its best at trial {cold_reach}, warm matched it at {}",
            template.best_ms,
            cold.best_ms,
            warm.best_ms,
            warm_reach.map_or("never".into(), |t| t.to_string()),
        );
        if cold.best_ms > template.best_ms {
            ok = false;
            eprintln!(
                "SKETCH PARITY FAILURE on {}: sketch {:.4} ms worse than template {:.4} ms \
                 at {} trials",
                case.name, cold.best_ms, template.best_ms, opts.n_trials
            );
        }
        match warm_reach {
            Some(t) if t <= cold_reach => {}
            _ => {
                ok = false;
                eprintln!(
                    "TRANSFER FAILURE on {}: warm start matched the cold best at {:?} trials \
                     vs cold {cold_reach}",
                    case.name, warm_reach
                );
            }
        }
        rows.push(Value::object([
            ("workload", Value::Str(case.name.into())),
            ("trials", Value::Int(opts.n_trials as i64)),
            ("template_space", Value::Int(case.template.space.size() as i64)),
            ("sketch_space", Value::Int(case.sketch.space.size() as i64)),
            ("template_best_ms", Value::Float(template.best_ms)),
            ("sketch_best_ms", Value::Float(cold.best_ms)),
            ("sketch_warm_best_ms", Value::Float(warm.best_ms)),
            ("cold_trials_to_best", Value::Int(cold_reach as i64)),
            (
                "warm_trials_to_cold_best",
                warm_reach.map_or(Value::Null, |t| Value::Int(t as i64)),
            ),
            ("template_curve_ms", curve_json(&template)),
            ("sketch_curve_ms", curve_json(&cold)),
            ("sketch_warm_curve_ms", curve_json(&warm)),
        ]));
    }
    let sketch_doc = Value::object([
        ("quick", Value::Bool(quick)),
        ("seed", Value::Int(opts.seed as i64)),
        ("parity_ok", Value::Bool(ok)),
        ("workloads", Value::Array(rows)),
    ]);
    // Merge under "sketch" so a prior throughput run's numbers survive.
    std::fs::create_dir_all("results").expect("results dir");
    let doc = match std::fs::read_to_string("results/BENCH_tuning.json")
        .ok()
        .and_then(|t| tvm_json::from_str(&t).ok())
    {
        Some(Value::Object(mut m)) => {
            m.insert("sketch".into(), sketch_doc);
            Value::Object(m)
        }
        _ => Value::object([
            ("bench", Value::Str("tuning_throughput".into())),
            ("sketch", sketch_doc),
        ]),
    };
    std::fs::write(
        "results/BENCH_tuning.json",
        tvm_json::to_string(&doc) + "\n",
    )
    .expect("write results/BENCH_tuning.json");
    println!("wrote results/BENCH_tuning.json sketch section (parity_ok = {ok})");
    ok
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--robustness") {
        if !bench_robustness(quick) {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--sketch") {
        if !bench_sketch(quick) {
            std::process::exit(1);
        }
        return;
    }
    let threads: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8]
    };
    let min_speedup_4x = if quick { 2.0 } else { 3.0 };
    let opts = TuneOptions {
        n_trials: if quick { 32 } else { 64 },
        batch: 8,
        sa_steps: if quick { 10 } else { 40 },
        sa_chains: if quick { 8 } else { 16 },
        seed: 42,
        warm_start: Vec::new(),
    };
    let mut ok = true;
    let target = titanx();
    let dense = topi::dense_task(
        DenseWorkload {
            m: 64,
            n: 512,
            k: 512,
            dtype: DType::float32(),
        },
        target.clone(),
    );
    let conv = topi::conv2d_task(topi::resnet18_convs()[6], DType::float32(), target);
    let workloads = vec![
        bench_workload_retrying(
            "dense_64x512x512",
            &dense,
            &opts,
            &threads,
            min_speedup_4x,
            &mut ok,
        ),
        bench_workload_retrying(
            "resnet18_C7_conv2d",
            &conv,
            &opts,
            &threads,
            min_speedup_4x,
            &mut ok,
        ),
    ];
    let doc = Value::object([
        ("bench", Value::Str("tuning_throughput".into())),
        ("quick", Value::Bool(quick)),
        (
            "threads",
            Value::Array(threads.iter().map(|&t| Value::Int(t as i64)).collect()),
        ),
        ("seed", Value::Int(opts.seed as i64)),
        ("parity_ok", Value::Bool(ok)),
        ("workloads", Value::Array(workloads)),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write(
        "results/BENCH_tuning.json",
        tvm_json::to_string(&doc) + "\n",
    )
    .expect("write results/BENCH_tuning.json");
    println!("wrote results/BENCH_tuning.json (parity_ok = {ok})");
    if !ok {
        std::process::exit(1);
    }
}
