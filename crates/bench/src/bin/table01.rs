//! Regenerates Table 1: automation-method comparison, with a measured
//! data-efficiency column.
use tvm_bench::figures::table01_data_efficiency;

fn main() {
    println!("== Table 1: comparison of automation methods ==");
    println!("method\tdata cost\tmodel bias\tneed hw info\tlearn from history\ttrials to 1.1x-of-best (measured)");
    let measured = table01_data_efficiency(96, 1.1);
    let qual = [
        ("Blackbox auto-tuning (random)", "high", "none", "no", "no"),
        ("Blackbox auto-tuning (GA)", "high", "none", "no", "no"),
        ("Predefined cost model", "none", "high", "yes", "no"),
        ("ML based cost model", "low", "low", "no", "yes"),
    ];
    // (the Predefined row measures only model-ranked candidates: fast to
    // "converge" but capped by model bias)
    for (name, cost, bias, hw, hist) in qual {
        let m = measured
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.to_string())
            .unwrap_or_else(|| "-".into());
        println!("{name}\t{cost}\t{bias}\t{hw}\t{hist}\t{m}");
    }
}
