//! Regenerates Table 2: all conv2d / depthwise-conv2d operator configs.
use tvm_topi::{mobilenet_dwconvs, resnet18_convs};

fn main() {
    println!("== Table 2 (top): ResNet-18 conv2d operators ==");
    println!("name\tH,W\tIC,OC\tK,S");
    for (i, w) in resnet18_convs().iter().enumerate() {
        println!(
            "C{}\t{},{}\t{},{}\t{},{}",
            i + 1,
            w.size,
            w.size,
            w.in_c,
            w.out_c,
            w.kernel,
            w.stride
        );
    }
    println!("\n== Table 2 (bottom): MobileNet depthwise conv2d operators ==");
    println!("name\tH,W\tIC\tK,S");
    for (i, w) in mobilenet_dwconvs().iter().enumerate() {
        println!(
            "D{}\t{},{}\t{}\t{},{}",
            i + 1,
            w.size,
            w.size,
            w.channels,
            w.kernel,
            w.stride
        );
    }
}
