//! Regenerates Fig. 4: fused vs non-fused operator performance (GPU model).
use tvm_bench::figures::fig04_fusion;
use tvm_bench::print_table;

fn main() {
    let rows = fig04_fusion();
    print_table(
        "Figure 4: operator fusion speedup (titanx-sim)",
        &["workload", "w/o fusion (ms)", "w/ fusion (ms)", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.4}", r.no_fusion_ms),
                    format!("{:.4}", r.fusion_ms),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
