//! Regenerates Fig. 7: cooperative shared-memory fetching on matmul.
use tvm_bench::figures::fig07_gemm;
use tvm_bench::print_table;

fn main() {
    let rows = fig07_gemm(48);
    print_table(
        "Figure 7: matmul with/without cooperative fetching (titanx-sim)",
        &["size", "cuBLAS (ms)", "TVM w/o coop (ms)", "TVM (ms)"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.size.to_string(),
                    format!("{:.3}", r.cublas_ms),
                    format!("{:.3}", r.tvm_no_coop_ms),
                    format!("{:.3}", r.tvm_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
