//! Regenerates Fig. 18: ultra-low-precision conv vs hand-optimized kernels.
use tvm_bench::figures::fig18_lowprec;
use tvm_bench::print_table;

fn main() {
    let rows = fig18_lowprec(24);
    print_table(
        "Figure 18: 2-bit/1-bit conv on a53-sim (baseline = Caffe2-style hand-optimized, single-threaded)",
        &["op", "hand-opt(ms)", "TVM 1T(ms)", "TVM 4T(ms)", "1T speedup", "4T speedup"],
        &rows
            .iter()
            .map(|r| {
                let base = r.systems[0].1;
                let st = r.systems[1].1;
                let mt = r.systems[2].1;
                vec![
                    r.name.clone(),
                    format!("{base:.3}"),
                    format!("{st:.3}"),
                    format!("{mt:.3}"),
                    format!("{:.2}x", base / st),
                    format!("{:.2}x", base / mt),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
