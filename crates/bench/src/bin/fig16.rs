//! Regenerates Fig. 16: ARM A53 end-to-end vs TFLite.
use tvm_bench::figures::fig16_arm_e2e;
use tvm_bench::print_table;

fn main() {
    let rows = fig16_arm_e2e(224, 32);
    let labels: Vec<String> = rows[0].systems.iter().map(|(l, _)| l.clone()).collect();
    let mut header = vec!["model".to_string()];
    header.extend(labels);
    print_table(
        "Figure 16: ARM A53 end-to-end (ms, a53-sim)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows
            .iter()
            .map(|r| {
                let mut v = vec![r.model.clone()];
                v.extend(r.systems.iter().map(|(_, t)| format!("{t:.2}")));
                v
            })
            .collect::<Vec<_>>(),
    );
}
