//! Regenerates Fig. 14: GPU end-to-end comparison.
use tvm_bench::figures::fig14_gpu_e2e;
use tvm_bench::print_table;

fn main() {
    let rows = fig14_gpu_e2e(224, 32);
    let labels: Vec<String> = rows[0].systems.iter().map(|(l, _)| l.clone()).collect();
    let mut header = vec!["model".to_string()];
    header.extend(labels.iter().cloned());
    print_table(
        "Figure 14: GPU end-to-end (ms, titanx-sim)",
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &rows
            .iter()
            .map(|r| {
                let mut v = vec![r.model.clone()];
                v.extend(r.systems.iter().map(|(_, t)| format!("{t:.3}")));
                v
            })
            .collect::<Vec<_>>(),
    );
}
