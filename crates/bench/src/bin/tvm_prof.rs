//! `tvm-prof` — the end-to-end observability harness: compiles a small
//! CNN with compile-pass tracing enabled, runs it under the graph
//! executor's per-op profiler, and writes a Chrome `trace_event` file to
//! `results/trace.json` plus a per-op breakdown table to stdout.
//!
//! The run doubles as a self-check (the process exits non-zero on
//! violation):
//!
//! * results with profiling enabled are bit-for-bit identical to a
//!   profiling-off executor;
//! * the profiling-off hot path is not measurably slower than the
//!   profiled one (i.e. disabling profiling really removes the work);
//! * the profiler's per-op simulated-cycle sum agrees with the
//!   independently recomputed end-to-end figure within 1%;
//! * the emitted trace is well-formed JSON with a nonzero number of
//!   spans covering both compilation and execution.
//!
//! `--quick` shrinks the workload and repeat count for CI.

use std::time::Instant;

use tvm_bench::profiling::{build_demo, run_once, sim_cycles};
use tvm_json::Value;
use tvm_runtime::GraphExecutor;
use tvm_sim::titanx;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let repeats = if quick { 5 } else { 15 };
    let target = titanx();
    let mut ok = true;

    // Compile with pass tracing on: `te::lower` stage spans land in the
    // global registry alongside the later execution spans.
    tvm_obs::Registry::global().reset();
    tvm_obs::set_enabled(true);
    let module = build_demo(&target, quick);
    let n_kernels = module.kernels.len();
    let e2e_cycles = sim_cycles(&module, &target);
    println!(
        "compiled demo graph: {n_kernels} kernels for {}\n",
        target.name()
    );

    // 0. The module the profiler is about to time must pass the
    // graph-layer static verifiers (memory-plan safety, fusion legality,
    // cross-layer slot contracts).
    let verdict = module.verify();
    if verdict.has_errors() {
        println!(
            "FAIL: graph verification rejected the module:\n{}",
            verdict.render()
        );
        ok = false;
    } else {
        println!(
            "ok: graph verification clean ({} groups, {} slot-contract checks proven)",
            verdict.groups_checked, verdict.contracts_proven
        );
    }

    // Profiled executor.
    let mut prof_ex = GraphExecutor::new(module);
    prof_ex.enable_profiling();
    let mut prof_out = Vec::new();
    let enabled_times: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            prof_out = run_once(&mut prof_ex, quick);
            t.elapsed().as_secs_f64()
        })
        .collect();
    let prof = prof_ex.profiler().expect("profiling enabled");
    println!("{}", prof.table());
    let prof_cycles = prof.total_cycles();
    tvm_obs::set_enabled(false);

    // Profiling-off executor (observability fully disabled).
    let mut plain_ex = GraphExecutor::new(build_demo(&target, quick));
    let mut plain_out = Vec::new();
    let disabled_times: Vec<f64> = (0..repeats)
        .map(|_| {
            let t = Instant::now();
            plain_out = run_once(&mut plain_ex, quick);
            t.elapsed().as_secs_f64()
        })
        .collect();

    // 1. Bit-for-bit identical results.
    if prof_out != plain_out {
        println!("FAIL: profiled outputs differ from unprofiled outputs");
        ok = false;
    } else {
        println!("ok: profiled run reproduces unprofiled outputs bit-for-bit");
    }

    // 2. The disabled hot path does no profiling work: it must not be
    // measurably slower than the profiled path (1.5x headroom for noise).
    let (dis_med, en_med) = (median(disabled_times), median(enabled_times));
    if dis_med > en_med * 1.5 {
        println!(
            "FAIL: profiling-off run ({:.2} ms) slower than profiled run ({:.2} ms)",
            dis_med * 1e3,
            en_med * 1e3
        );
        ok = false;
    } else {
        println!(
            "ok: profiling-off median {:.2} ms vs profiled {:.2} ms",
            dis_med * 1e3,
            en_med * 1e3
        );
    }

    // 3. Per-op cycle sum vs the independent end-to-end figure.
    let drift = (prof_cycles - e2e_cycles).abs() / e2e_cycles.max(1.0);
    if drift > 0.01 {
        println!(
            "FAIL: per-op cycle sum {prof_cycles:.0} drifts {:.2}% from end-to-end {e2e_cycles:.0}",
            drift * 100.0
        );
        ok = false;
    } else {
        println!(
            "ok: per-op cycle sum within {:.4}% of end-to-end simulation",
            drift * 100.0
        );
    }

    // 4. Trace export: well-formed JSON with spans from both compilation
    // (`lower`) and execution (`run_op`).
    let trace = tvm_obs::Registry::global().chrome_trace();
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/trace.json", &trace).expect("write results/trace.json");
    match tvm_json::from_str(&trace) {
        Ok(root) => {
            let empty: Vec<Value> = Vec::new();
            let evs: &[Value] = match root.get("traceEvents") {
                Some(Value::Array(evs)) => evs,
                _ => &empty,
            };
            let spans = evs
                .iter()
                .filter(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "X"))
                .count();
            let has = |name: &str| {
                evs.iter()
                    .any(|e| matches!(e.get("name"), Some(Value::Str(n)) if n == name))
            };
            if spans == 0 || !has("lower") || !has("run_op") {
                println!(
                    "FAIL: trace has {spans} spans (lower: {}, run_op: {})",
                    has("lower"),
                    has("run_op")
                );
                ok = false;
            } else {
                println!("ok: results/trace.json has {spans} spans incl. compile + execute phases");
            }
        }
        Err(e) => {
            println!("FAIL: results/trace.json does not parse: {e:?}");
            ok = false;
        }
    }

    println!("\n{}", tvm_obs::Registry::global().summary_tree());
    if !ok {
        std::process::exit(1);
    }
}
