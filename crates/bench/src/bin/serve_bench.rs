//! `tvm-serve-bench` — seeded open-loop serving benchmark.
//!
//! Measures the service's capacity, then drives it at several offered
//! loads (under-load, saturation, overload) with chaos faults enabled,
//! mixed tenants/models, and a burst window. Writes
//! `results/BENCH_serving.json` with per-level p50/p99 latency, goodput,
//! and shed rate.
//!
//! Flags: `--quick` shrinks traces for the CI smoke step; `--seed N`
//! reseeds the whole experiment.

use tvm_json::Value;
use tvm_serve::{
    generate, AdmissionConfig, BatchPolicy, Model, ResponseRecord, Service, ServiceConfig,
    ServiceStats, TenantConfig, TenantTraffic, TrafficSpec,
};
use tvm_sim::{FaultPlan, FaultRates};

struct Args {
    quick: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        seed: 20240808,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N");
            }
            other => {
                eprintln!("unknown flag {other} (known: --quick, --seed N)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn chaos_rates() -> FaultRates {
    FaultRates {
        crash: 0.001,
        hang: 0.04,
        transient: 0.06,
        noise: 0.10,
        noise_factor: 2.5,
    }
}

fn service_config(seed: u64, chaos: bool) -> ServiceConfig {
    ServiceConfig {
        tenants: vec![
            TenantConfig::new("mobile").weight(2).queue_cap(128),
            TenantConfig::new("batchjob").weight(1).queue_cap(128),
        ],
        admission: AdmissionConfig {
            max_outstanding: 384,
        },
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_ms: 2.0,
        },
        devices: 3,
        faults: if chaos {
            FaultPlan::seeded(seed ^ 0xC4A0, chaos_rates())
        } else {
            FaultPlan::none()
        },
        ..ServiceConfig::default()
    }
}

/// Offered traffic at `rps` total, split across both tenants and models,
/// with a mid-trace burst on the mobile tenant.
fn spec(seed: u64, rps: f64, horizon_ms: f64) -> TrafficSpec {
    TrafficSpec {
        seed,
        horizon_ms,
        tenants: vec![
            TenantTraffic {
                tenant: "mobile".into(),
                rate_rps: rps * 0.6,
                models: vec![Model::Mlp, Model::TinyCnn],
                bursts: vec![tvm_serve::BurstSpec {
                    start_ms: horizon_ms * 0.4,
                    end_ms: horizon_ms * 0.5,
                    factor: 3.0,
                }],
            },
            TenantTraffic {
                tenant: "batchjob".into(),
                rate_rps: rps * 0.4,
                models: vec![Model::Mlp],
                bursts: vec![],
            },
        ],
    }
}

/// Saturation search: raise the offered rate geometrically (fault-free)
/// until admission control sheds, and call the goodput at that rate the
/// service's capacity.
fn measure_capacity(seed: u64, budget_requests: f64) -> f64 {
    let mut rate = 2000.0f64;
    loop {
        let horizon = (budget_requests / rate * 1000.0).clamp(5.0, 500.0);
        let trace = generate(&spec(seed, rate, horizon));
        let mut svc = Service::new(service_config(seed, false)).expect("service");
        let (_, stats) = svc.run(trace);
        if stats.shed > 0 && stats.completed > 0 {
            return stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9);
        }
        rate *= 4.0;
        assert!(rate < 1e12, "serving capacity search never saturated");
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn level_json(
    label: &str,
    factor: f64,
    offered_rps: f64,
    total: usize,
    responses: &[ResponseRecord],
    stats: &ServiceStats,
) -> Value {
    let mut lat: Vec<f64> = responses
        .iter()
        .filter(|r| r.outcome.is_ok())
        .map(|r| r.latency_ms())
        .collect();
    lat.sort_by(f64::total_cmp);
    let goodput_rps = stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9);
    let shed_rate = stats.shed as f64 / (total as f64).max(1.0);
    let mean_batch = stats.batch_size_sum as f64 / (stats.batches as f64).max(1.0);
    Value::object([
        ("level", Value::from(label)),
        ("offered_factor", Value::from(factor)),
        ("offered_rps", Value::from(offered_rps)),
        ("requests", Value::from(total as u64)),
        ("completed", Value::from(stats.completed)),
        ("shed", Value::from(stats.shed)),
        ("failed", Value::from(stats.failed)),
        ("goodput_rps", Value::from(goodput_rps)),
        ("shed_rate", Value::from(shed_rate)),
        ("p50_ms", Value::from(percentile(&lat, 0.50))),
        ("p99_ms", Value::from(percentile(&lat, 0.99))),
        ("mean_batch", Value::from(mean_batch)),
        ("batches", Value::from(stats.batches)),
        (
            "pool",
            Value::object([
                ("attempts", Value::from(stats.pool.attempts as u64)),
                ("retries", Value::from(stats.pool.retries as u64)),
                ("timeouts", Value::from(stats.pool.timeouts as u64)),
                (
                    "transient_errors",
                    Value::from(stats.pool.transient_errors as u64),
                ),
                ("crash_faults", Value::from(stats.pool.crash_faults as u64)),
                ("quarantines", Value::from(stats.pool.quarantines as u64)),
                ("readmissions", Value::from(stats.pool.readmissions as u64)),
            ]),
        ),
        (
            "cache",
            Value::object([
                ("hits", Value::from(stats.cache.hits)),
                ("cold_builds", Value::from(stats.cache.cold_builds)),
                ("warm_builds", Value::from(stats.cache.warm_builds)),
            ]),
        ),
    ])
}

fn main() {
    let args = parse_args();
    let _sp = tvm_obs::span("serve_bench");
    let budget = if args.quick { 800.0 } else { 4000.0 };

    println!("measuring serving capacity (seed {})...", args.seed);
    let capacity = measure_capacity(args.seed, budget);
    println!("  capacity ≈ {capacity:.0} req/s (virtual)");

    // Three offered-load levels; 2.0x is overload by construction.
    let levels = [
        ("underload", 0.5f64),
        ("saturation", 1.0),
        ("overload", 2.0),
    ];
    let mut rows = Vec::new();
    for (label, factor) in levels {
        let offered = capacity * factor;
        let horizon = (budget / offered * 1000.0).clamp(5.0, 2000.0);
        let trace = generate(&spec(args.seed + 1, offered, horizon));
        let total = trace.len();
        let mut svc = Service::new(service_config(args.seed, true)).expect("service");
        let (responses, stats) = svc.run(trace);
        let mut lat: Vec<f64> = responses
            .iter()
            .filter(|r| r.outcome.is_ok())
            .map(|r| r.latency_ms())
            .collect();
        lat.sort_by(f64::total_cmp);
        println!(
            "  {label:<10} offered {offered:>9.0} rps | goodput {:>9.0} rps | shed {:>5.1}% | p50 {:.3} ms | p99 {:.3} ms",
            stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9),
            100.0 * stats.shed as f64 / (total as f64).max(1.0),
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
        );
        rows.push(level_json(
            label, factor, offered, total, &responses, &stats,
        ));
    }

    let chaos = chaos_rates();
    let doc = Value::object([
        ("bench", Value::from("serving")),
        ("seed", Value::from(args.seed)),
        ("quick", Value::from(args.quick)),
        ("capacity_rps", Value::from(capacity)),
        (
            "chaos",
            Value::object([
                ("crash", Value::from(chaos.crash)),
                ("hang", Value::from(chaos.hang)),
                ("transient", Value::from(chaos.transient)),
                ("noise", Value::from(chaos.noise)),
                ("noise_factor", Value::from(chaos.noise_factor)),
            ]),
        ),
        ("levels", Value::from(rows)),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_serving.json", doc.to_string() + "\n")
        .expect("write results/BENCH_serving.json");
    println!("wrote results/BENCH_serving.json");
}
