//! `tvm-serve-bench` — seeded open-loop serving benchmark.
//!
//! Measures the service's capacity, then drives it at several offered
//! loads (under-load, saturation, overload) with chaos faults enabled,
//! mixed tenants/models, and a burst window. Writes
//! `results/BENCH_serving.json` with per-level p50/p99 latency, goodput,
//! and shed rate.
//!
//! Flags: `--quick` shrinks traces for the CI smoke step; `--seed N`
//! reseeds the whole experiment.

use std::collections::BTreeMap;

use tvm_json::Value;
use tvm_serve::{
    generate, AdmissionConfig, BatchPolicy, HedgePolicy, Model, ModelVersion, ResponseRecord,
    RolloutConfig, ServeOutcome, Service, ServiceConfig, ServiceStats, TenantConfig, TenantTraffic,
    TrafficSpec,
};
use tvm_sim::{FaultPlan, FaultRates};

struct Args {
    quick: bool,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        seed: 20240808,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--seed" => {
                args.seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N");
            }
            other => {
                eprintln!("unknown flag {other} (known: --quick, --seed N)");
                std::process::exit(2);
            }
        }
    }
    args
}

fn chaos_rates() -> FaultRates {
    FaultRates {
        crash: 0.001,
        hang: 0.04,
        transient: 0.06,
        noise: 0.10,
        noise_factor: 2.5,
    }
}

fn service_config(seed: u64, chaos: bool) -> ServiceConfig {
    ServiceConfig {
        tenants: vec![
            TenantConfig::new("mobile").weight(2).queue_cap(128),
            TenantConfig::new("batchjob").weight(1).queue_cap(128),
        ],
        admission: AdmissionConfig {
            max_outstanding: 384,
            ..AdmissionConfig::default()
        },
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_ms: 2.0,
            ..BatchPolicy::default()
        },
        devices: 3,
        faults: if chaos {
            FaultPlan::seeded(seed ^ 0xC4A0, chaos_rates())
        } else {
            FaultPlan::none()
        },
        ..ServiceConfig::default()
    }
}

/// Offered traffic at `rps` total, split across both tenants and models,
/// with a mid-trace burst on the mobile tenant.
fn spec(seed: u64, rps: f64, horizon_ms: f64) -> TrafficSpec {
    TrafficSpec {
        seed,
        horizon_ms,
        tenants: vec![
            TenantTraffic {
                tenant: "mobile".into(),
                rate_rps: rps * 0.6,
                models: vec![Model::Mlp, Model::TinyCnn],
                bursts: vec![tvm_serve::BurstSpec {
                    start_ms: horizon_ms * 0.4,
                    end_ms: horizon_ms * 0.5,
                    factor: 3.0,
                }],
                deadline_budget_ms: None,
            },
            TenantTraffic {
                tenant: "batchjob".into(),
                rate_rps: rps * 0.4,
                models: vec![Model::Mlp],
                bursts: vec![],
                deadline_budget_ms: None,
            },
        ],
    }
}

/// Saturation search: raise the offered rate geometrically (fault-free)
/// until admission control sheds, and call the goodput at that rate the
/// service's capacity.
fn measure_capacity(seed: u64, budget_requests: f64) -> f64 {
    let mut rate = 2000.0f64;
    loop {
        let horizon = (budget_requests / rate * 1000.0).clamp(5.0, 500.0);
        let trace = generate(&spec(seed, rate, horizon));
        let mut svc = Service::new(service_config(seed, false)).expect("service");
        let (_, stats) = svc.run(trace);
        if stats.shed > 0 && stats.completed > 0 {
            return stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9);
        }
        rate *= 4.0;
        assert!(rate < 1e12, "serving capacity search never saturated");
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn level_json(
    label: &str,
    factor: f64,
    offered_rps: f64,
    total: usize,
    responses: &[ResponseRecord],
    stats: &ServiceStats,
) -> Value {
    let mut lat: Vec<f64> = responses
        .iter()
        .filter(|r| r.outcome.is_ok())
        .map(|r| r.latency_ms())
        .collect();
    lat.sort_by(f64::total_cmp);
    let goodput_rps = stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9);
    let shed_rate = stats.shed as f64 / (total as f64).max(1.0);
    let mean_batch = stats.batch_size_sum as f64 / (stats.batches as f64).max(1.0);
    Value::object([
        ("level", Value::from(label)),
        ("offered_factor", Value::from(factor)),
        ("offered_rps", Value::from(offered_rps)),
        ("requests", Value::from(total as u64)),
        ("completed", Value::from(stats.completed)),
        ("shed", Value::from(stats.shed)),
        ("failed", Value::from(stats.failed)),
        ("goodput_rps", Value::from(goodput_rps)),
        ("shed_rate", Value::from(shed_rate)),
        ("p50_ms", Value::from(percentile(&lat, 0.50))),
        ("p99_ms", Value::from(percentile(&lat, 0.99))),
        ("mean_batch", Value::from(mean_batch)),
        ("batches", Value::from(stats.batches)),
        (
            "pool",
            Value::object([
                ("attempts", Value::from(stats.pool.attempts as u64)),
                ("retries", Value::from(stats.pool.retries as u64)),
                ("timeouts", Value::from(stats.pool.timeouts as u64)),
                (
                    "transient_errors",
                    Value::from(stats.pool.transient_errors as u64),
                ),
                ("crash_faults", Value::from(stats.pool.crash_faults as u64)),
                ("quarantines", Value::from(stats.pool.quarantines as u64)),
                ("readmissions", Value::from(stats.pool.readmissions as u64)),
            ]),
        ),
        (
            "cache",
            Value::object([
                ("hits", Value::from(stats.cache.hits)),
                ("cold_builds", Value::from(stats.cache.cold_builds)),
                ("warm_builds", Value::from(stats.cache.warm_builds)),
                (
                    "fingerprint_mismatches",
                    Value::from(stats.cache.fingerprint_mismatches),
                ),
                ("verify_rejects", Value::from(stats.cache.verify_rejects)),
            ]),
        ),
    ])
}

/// Single-tenant, single-model steady trace for the lifecycle and
/// hedging scenarios.
fn steady_spec(seed: u64, rate_rps: f64, horizon_ms: f64) -> TrafficSpec {
    TrafficSpec {
        seed,
        horizon_ms,
        tenants: vec![TenantTraffic {
            tenant: "t".into(),
            rate_rps,
            models: vec![Model::Mlp],
            bursts: vec![],
            deadline_budget_ms: None,
        }],
    }
}

fn steady_config(faults: FaultPlan, devices: usize, hedge: HedgePolicy) -> ServiceConfig {
    ServiceConfig {
        tenants: vec![TenantConfig::new("t").queue_cap(4096)],
        admission: AdmissionConfig {
            max_outstanding: 1 << 14,
            ..AdmissionConfig::default()
        },
        batch: BatchPolicy {
            max_batch: 4,
            max_delay_ms: 1.0,
            ..BatchPolicy::default()
        },
        devices,
        faults,
        hedge,
        rollout: RolloutConfig {
            canary_fraction: 1.0,
            window_ms: 20.0,
            min_canary_batches: 3,
            max_candidate_failures: 2,
        },
        ..ServiceConfig::default()
    }
}

fn ok_digests(responses: &[ResponseRecord]) -> BTreeMap<u64, u32> {
    responses
        .iter()
        .filter_map(|r| match &r.outcome {
            ServeOutcome::Ok { digest, .. } => Some((r.id, *digest)),
            _ => None,
        })
        .collect()
}

/// Blue/green rollout campaigns: a healthy candidate must promote; a
/// seeded-corrupt candidate must roll back with zero wrong answers
/// served (every tenant-visible digest matches the fault-free oracle).
fn rollout_scenario(seed: u64, budget_requests: f64) -> Value {
    let rate = 400.0;
    let horizon = (budget_requests / rate * 1000.0).clamp(50.0, 400.0);

    let mut oracle_svc = Service::new(steady_config(FaultPlan::none(), 2, HedgePolicy::default()))
        .expect("oracle service");
    let (oracle_responses, _) = oracle_svc.run(generate(&steady_spec(seed, rate, horizon)));
    let oracle = ok_digests(&oracle_responses);

    let mut healthy_svc = Service::new(steady_config(FaultPlan::none(), 2, HedgePolicy::default()))
        .expect("healthy service");
    healthy_svc
        .begin_rollout(Model::Mlp, 0, "v1-retuned")
        .expect("begin rollout");
    let (_, healthy) = healthy_svc.run(generate(&steady_spec(seed, rate, horizon)));

    let bad = ModelVersion {
        model: Model::Mlp,
        weights: 0,
        label: "v1-bad".into(),
    };
    let mut faults = FaultPlan::none();
    faults.corrupt_version(bad.fingerprint(), seed ^ 0x0BAD);
    let mut corrupt_svc =
        Service::new(steady_config(faults, 2, HedgePolicy::default())).expect("corrupt service");
    corrupt_svc
        .begin_rollout(Model::Mlp, 0, "v1-bad")
        .expect("begin rollout");
    let (corrupt_responses, corrupt) = corrupt_svc.run(generate(&steady_spec(seed, rate, horizon)));
    let wrong_answers = ok_digests(&corrupt_responses)
        .iter()
        .filter(|(id, d)| oracle.get(id) != Some(d))
        .count();

    println!(
        "  rollout    healthy: {} promoted | corrupt: {} rolled back, {} canary mismatches, {} wrong answers served",
        healthy.rollout.promotions,
        corrupt.rollout.rollbacks,
        corrupt.rollout.digest_mismatches,
        wrong_answers,
    );
    Value::object([
        (
            "healthy",
            Value::object([
                ("promotions", Value::from(healthy.rollout.promotions)),
                ("rollbacks", Value::from(healthy.rollout.rollbacks)),
                (
                    "canary_batches",
                    Value::from(healthy.rollout.canary_batches),
                ),
                (
                    "digest_mismatches",
                    Value::from(healthy.rollout.digest_mismatches),
                ),
            ]),
        ),
        (
            "corrupt",
            Value::object([
                ("promotions", Value::from(corrupt.rollout.promotions)),
                ("rollbacks", Value::from(corrupt.rollout.rollbacks)),
                (
                    "canary_batches",
                    Value::from(corrupt.rollout.canary_batches),
                ),
                (
                    "digest_mismatches",
                    Value::from(corrupt.rollout.digest_mismatches),
                ),
                ("wrong_answers", Value::from(wrong_answers as u64)),
            ]),
        ),
    ])
}

/// Hedged-execution A/B under straggler noise: the same trace with
/// hedging off then on; hedging must cut the simulated p99.
fn hedging_scenario(seed: u64, budget_requests: f64) -> Value {
    let rate = 250.0;
    let horizon = (budget_requests / rate * 1000.0).clamp(50.0, 600.0);
    let stragglers = || {
        FaultPlan::seeded(
            seed ^ 0x5712A6,
            FaultRates {
                crash: 0.0,
                hang: 0.0,
                transient: 0.0,
                noise: 0.2,
                noise_factor: 25.0,
            },
        )
    };
    let hedge_on = HedgePolicy {
        enabled: true,
        min_samples: 8,
        quantile: 0.5,
        factor: 2.0,
        min_threshold_ms: 0.0,
    };
    let run = |hedge: HedgePolicy| -> (Vec<f64>, ServiceStats) {
        let mut svc = Service::new(steady_config(stragglers(), 3, hedge)).expect("service");
        let (responses, stats) = svc.run(generate(&steady_spec(seed, rate, horizon)));
        let mut lat: Vec<f64> = responses
            .iter()
            .filter(|r| r.outcome.is_ok())
            .map(|r| r.latency_ms())
            .collect();
        lat.sort_by(f64::total_cmp);
        (lat, stats)
    };
    let (lat_off, _off) = run(HedgePolicy::default());
    let (lat_on, on) = run(hedge_on);
    let p99_off = percentile(&lat_off, 0.99);
    let p99_on = percentile(&lat_on, 0.99);
    println!(
        "  hedging    p99 off {:.4} ms | p99 on {:.4} ms | {} issued, {} wins, {} divergences",
        p99_off, p99_on, on.hedge.issued, on.hedge.wins, on.hedge.divergences,
    );
    Value::object([
        ("p99_off_ms", Value::from(p99_off)),
        ("p99_on_ms", Value::from(p99_on)),
        ("p50_off_ms", Value::from(percentile(&lat_off, 0.5))),
        ("p50_on_ms", Value::from(percentile(&lat_on, 0.5))),
        ("issued", Value::from(on.hedge.issued)),
        ("wins", Value::from(on.hedge.wins)),
        ("divergences", Value::from(on.hedge.divergences)),
    ])
}

/// Capacity of the default (Mlp-only) service shape, measured the same
/// way the fairness suite does: raise the rate until admission sheds.
fn default_shape_capacity(seed: u64) -> f64 {
    let mut rate = 2000.0f64;
    loop {
        let horizon = (1200.0 / rate * 1000.0).clamp(5.0, 500.0);
        let trace = generate(&steady_spec(seed, rate, horizon));
        let mut svc = Service::new(ServiceConfig {
            tenants: vec![TenantConfig::new("t").queue_cap(64)],
            ..ServiceConfig::default()
        })
        .expect("service");
        let (_, stats) = svc.run(trace);
        if stats.shed > 0 && stats.completed > 0 {
            return stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9);
        }
        rate *= 4.0;
        assert!(rate < 1e12, "overload calibration never saturated");
    }
}

/// Deadline + brownout under sustained overload: a low-weight aggressor
/// with tight budgets against a high-weight polite tenant.
fn overload_scenario(seed: u64, budget_requests: f64) -> Value {
    let capacity = default_shape_capacity(seed);
    let polite_rate = capacity * 0.10;
    let aggressive_rate = capacity * 4.0;
    let horizon = (budget_requests / (polite_rate + aggressive_rate) * 1000.0).clamp(5.0, 500.0);
    let trace = generate(&TrafficSpec {
        seed,
        horizon_ms: horizon,
        tenants: vec![
            TenantTraffic {
                tenant: "polite".into(),
                rate_rps: polite_rate,
                models: vec![Model::Mlp],
                bursts: vec![],
                deadline_budget_ms: None,
            },
            TenantTraffic {
                tenant: "aggressive".into(),
                rate_rps: aggressive_rate,
                models: vec![Model::Mlp],
                bursts: vec![],
                deadline_budget_ms: Some(0.75),
            },
        ],
    });
    let mut svc = Service::new(ServiceConfig {
        tenants: vec![
            TenantConfig::new("polite").weight(3).queue_cap(512),
            TenantConfig::new("aggressive").weight(1).queue_cap(4096),
        ],
        admission: AdmissionConfig {
            max_outstanding: 2048,
            brownout_watermark: 64,
        },
        batch: BatchPolicy {
            max_batch: 8,
            max_delay_ms: 2.0,
            ..BatchPolicy::default()
        },
        ..ServiceConfig::default()
    })
    .expect("service");
    let (_, stats) = svc.run(trace);
    let polite = &stats.per_tenant[0];
    let polite_total = polite.ok + polite.shed + polite.err + polite.deadline;
    let polite_goodput = polite.ok as f64 / (polite_total as f64).max(1.0);
    println!(
        "  overload   deadline sheds {} | brownout sheds {} | brownout {:.2} ms | polite goodput {:.3}",
        stats.deadline_exceeded, stats.brownout_sheds, stats.brownout_ms, polite_goodput,
    );
    Value::object([
        ("deadline_exceeded", Value::from(stats.deadline_exceeded)),
        ("brownout_sheds", Value::from(stats.brownout_sheds)),
        ("brownout_ms", Value::from(stats.brownout_ms)),
        ("polite_goodput", Value::from(polite_goodput)),
        ("completed", Value::from(stats.completed)),
        ("shed", Value::from(stats.shed)),
    ])
}

fn main() {
    let args = parse_args();
    let _sp = tvm_obs::span("serve_bench");
    let budget = if args.quick { 800.0 } else { 4000.0 };

    println!("measuring serving capacity (seed {})...", args.seed);
    let capacity = measure_capacity(args.seed, budget);
    println!("  capacity ≈ {capacity:.0} req/s (virtual)");

    // Three offered-load levels; 2.0x is overload by construction.
    let levels = [
        ("underload", 0.5f64),
        ("saturation", 1.0),
        ("overload", 2.0),
    ];
    let mut rows = Vec::new();
    for (label, factor) in levels {
        let offered = capacity * factor;
        let horizon = (budget / offered * 1000.0).clamp(5.0, 2000.0);
        let trace = generate(&spec(args.seed + 1, offered, horizon));
        let total = trace.len();
        let mut svc = Service::new(service_config(args.seed, true)).expect("service");
        let (responses, stats) = svc.run(trace);
        let mut lat: Vec<f64> = responses
            .iter()
            .filter(|r| r.outcome.is_ok())
            .map(|r| r.latency_ms())
            .collect();
        lat.sort_by(f64::total_cmp);
        println!(
            "  {label:<10} offered {offered:>9.0} rps | goodput {:>9.0} rps | shed {:>5.1}% | p50 {:.3} ms | p99 {:.3} ms",
            stats.completed as f64 * 1000.0 / stats.horizon_ms.max(1e-9),
            100.0 * stats.shed as f64 / (total as f64).max(1.0),
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
        );
        rows.push(level_json(
            label, factor, offered, total, &responses, &stats,
        ));
    }

    println!("lifecycle & tail scenarios...");
    let rollout = rollout_scenario(args.seed + 2, if args.quick { 120.0 } else { 400.0 });
    let hedging = hedging_scenario(args.seed + 3, if args.quick { 150.0 } else { 600.0 });
    let overload = overload_scenario(args.seed + 4, budget);

    let chaos = chaos_rates();
    let doc = Value::object([
        ("bench", Value::from("serving")),
        ("seed", Value::from(args.seed)),
        ("quick", Value::from(args.quick)),
        ("capacity_rps", Value::from(capacity)),
        ("rollout", rollout),
        ("hedging", hedging),
        ("overload", overload),
        (
            "chaos",
            Value::object([
                ("crash", Value::from(chaos.crash)),
                ("hang", Value::from(chaos.hang)),
                ("transient", Value::from(chaos.transient)),
                ("noise", Value::from(chaos.noise)),
                ("noise_factor", Value::from(chaos.noise_factor)),
            ]),
        ),
        ("levels", Value::from(rows)),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_serving.json", doc.to_string() + "\n")
        .expect("write results/BENCH_serving.json");
    println!("wrote results/BENCH_serving.json");
}
