//! Regenerates Fig. 15: per-operator GPU speedups over cuDNN / MX kernels.
use tvm_bench::figures::per_op_rows;
use tvm_bench::print_table;

fn main() {
    let rows = per_op_rows(true, 32);
    print_table(
        "Figure 15: per-operator speedup on titanx-sim (baseline = cuDNN for C*, MX kernel for D*)",
        &["op", "baseline(ms)", "TC(ms)", "TVM(ms)", "TVM speedup"],
        &rows
            .iter()
            .map(|r| {
                let base = r.systems[0].1;
                let tc = r.systems.iter().find(|(l, _)| l == "TC").map(|(_, v)| *v);
                let tvm = r
                    .systems
                    .iter()
                    .find(|(l, _)| l == "TVM")
                    .map(|(_, v)| *v)
                    .unwrap();
                vec![
                    r.name.clone(),
                    format!("{base:.3}"),
                    tc.map(|v| format!("{v:.3}")).unwrap_or_else(|| "-".into()),
                    format!("{tvm:.3}"),
                    format!("{:.2}x", base / tvm),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
