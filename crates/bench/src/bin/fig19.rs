//! Regenerates Fig. 19: Mali GPU float32/float16 vs ARM Compute Library.
use tvm_bench::figures::fig19_mali;
use tvm_bench::print_table;

fn main() {
    let rows = fig19_mali(32);
    print_table(
        "Figure 19: Mali-T860 conv portions (ms, mali-sim)",
        &["model+dtype", "ARMComputeLib", "TVM", "speedup"],
        &rows
            .iter()
            .map(|r| {
                let acl = r.get("ARMComputeLib");
                let tvm = r.get("TVM");
                vec![
                    r.model.clone(),
                    format!("{acl:.2}"),
                    format!("{tvm:.2}"),
                    format!("{:.2}x", acl / tvm),
                ]
            })
            .collect::<Vec<_>>(),
    );
}
