//! Regenerates Fig. 12: automation-method comparison on a ResNet conv2d.
use tvm_bench::figures::fig12_tuning;

fn main() {
    let trials = 128;
    let (curves, cudnn) = fig12_tuning(trials);
    println!("== Figure 12: conv2d C7 tuning on titanx-sim (cuDNN model = {cudnn:.3} ms) ==");
    println!(
        "trial\t{}",
        curves
            .iter()
            .map(|c| c.method.clone())
            .collect::<Vec<_>>()
            .join("\t")
    );
    for t in (7..trials).step_by(8) {
        let cols: Vec<String> = curves
            .iter()
            .map(|c| format!("{:.2}", cudnn / c.best_curve[t.min(c.best_curve.len() - 1)]))
            .collect();
        println!("{}\t{}", t + 1, cols.join("\t"));
    }
    println!("(values = speedup over the cuDNN model, higher is better)");
}
