//! Regenerates Fig. 10: VDLA roofline with/without latency hiding.
use tvm_bench::figures::fig10_roofline;
use tvm_bench::print_table;

fn main() {
    let rows = fig10_roofline();
    print_table(
        "Figure 10: VDLA roofline (peak 102.4 GOPS)",
        &[
            "layer",
            "ops/byte",
            "GOPS base",
            "GOPS lat-hiding",
            "util base",
            "util lat-hiding",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    format!("{:.1}", r.intensity),
                    format!("{:.1}", r.gops_base),
                    format!("{:.1}", r.gops_hidden),
                    format!("{:.0}%", r.util_base * 100.0),
                    format!("{:.0}%", r.util_hidden * 100.0),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let avg_b: f64 = rows.iter().map(|r| r.util_base).sum::<f64>() / rows.len() as f64;
    let avg_h: f64 = rows.iter().map(|r| r.util_hidden).sum::<f64>() / rows.len() as f64;
    println!(
        "mean compute utilization: {:.0}% -> {:.0}%",
        avg_b * 100.0,
        avg_h * 100.0
    );
}
