//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. Cost-model objective: rank vs regression vs predefined heuristic.
//! 2. Explorer: simulated annealing vs pure random proposals under the
//!    same ML model budget.
//! 3. Feature set: the Fig. 13 loop features vs a knob-values-only model
//!    (does the model need to see the *lowered program*?).

use tvm_autotune::{tune, TuneOptions, TunerKind, TuningTask};
use tvm_bench::figures::quick_tune_opts;
use tvm_ir::DType;
use tvm_sim::titanx;
use tvm_topi as topi;

fn task() -> TuningTask {
    let w = topi::resnet18_convs()[6];
    topi::conv2d_task(w, DType::float32(), titanx())
}

fn main() {
    let trials = 64;
    println!("== Ablation: automated optimizer design choices (conv2d C7, titanx-sim) ==");

    // 1. Objectives.
    println!("\n-- cost-model objective (best ms after {trials} trials) --");
    for (name, kind) in [
        ("GBT + rank objective (paper default)", TunerKind::GbtRank),
        ("GBT + regression objective", TunerKind::GbtReg),
        ("predefined heuristic model", TunerKind::Predefined),
        ("no model (random)", TunerKind::Random),
    ] {
        let r = tune(&task(), &quick_tune_opts(trials), kind);
        println!(
            "{name:<42} {:.4} ms (after 16: {:.4})",
            r.best_ms,
            r.best_after(16)
        );
    }

    // 2. Explorer budget: annealing steps swept under the rank model.
    println!("\n-- simulated-annealing depth (GBT rank) --");
    for sa_steps in [0usize, 4, 16] {
        let opts = TuneOptions {
            n_trials: trials,
            sa_steps,
            ..quick_tune_opts(trials)
        };
        let r = tune(&task(), &opts, TunerKind::GbtRank);
        println!("sa_steps = {sa_steps:<3} best {:.4} ms", r.best_ms);
    }

    // 3. Model speed vs measurement speed (the paper reports 0.67 ms
    //    per prediction, thousands of times faster than a hardware run;
    //    here: model prediction vs a full simulator measurement).
    println!("\n-- cost-model prediction vs measurement speed --");
    let t = task();
    let cfgs: Vec<_> = (0..64u64).map(|i| t.space.get(i * 997)).collect();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for cfg in &cfgs {
        if let Some((f, ms)) = t.measure(cfg) {
            xs.push(tvm_autotune::extract(&f));
            ys.push(-ms.ln());
        }
    }
    let model = tvm_autotune::fit(&xs, &ys, &Default::default());
    let start = std::time::Instant::now();
    let mut acc = 0.0;
    for x in &xs {
        acc += model.predict(x);
    }
    let pred_us = start.elapsed().as_secs_f64() * 1e6 / xs.len() as f64;
    let start = std::time::Instant::now();
    for cfg in cfgs.iter().take(8) {
        let _ = t.measure(cfg);
    }
    let meas_us = start.elapsed().as_secs_f64() * 1e6 / 8.0;
    println!(
        "prediction {pred_us:.1} us vs measurement {meas_us:.1} us per config ({:.0}x faster; sum {acc:.1})",
        meas_us / pred_us
    );
}
