//! Regenerates Fig. 21: ResNet conv offloading to the VDLA accelerator.
use tvm_bench::figures::fig21_offload;
use tvm_bench::print_table;

fn main() {
    let rows = fig21_offload(224, 24);
    print_table(
        "Figure 21: ResNet-18 inference time breakdown (ms)",
        &["mode", "conv", "layer_0", "other", "total"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    format!("{:.2}", r.conv_ms),
                    format!("{:.2}", r.layer0_ms),
                    format!("{:.2}", r.other_ms),
                    format!("{:.2}", r.total_ms()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let speedup = rows[0].conv_ms / rows[1].conv_ms;
    println!("offloaded conv speedup: {speedup:.1}x");
}
