//! Shared workload and helpers for the `tvm-prof` profiling harness and
//! its golden test: a small deterministic CNN compiled end-to-end, run
//! under the graph executor's per-op profiler with compile-pass tracing
//! enabled.

use tvm::BuildOptions;
use tvm_graph::Graph;
use tvm_runtime::{GraphExecutor, Module, NDArray};
use tvm_sim::{estimate, Target};
use tvm_topi::Conv2dWorkload;

/// The profiled workload: conv → bn → relu → conv → residual add → relu.
/// `quick` shrinks the spatial size so CI finishes in seconds.
pub fn demo_graph(quick: bool) -> Graph {
    let size = if quick { 16 } else { 32 };
    let ch = if quick { 8 } else { 16 };
    let mut g = Graph::new();
    let x = g.input(&[1, 3, size, size], "data");
    let w1 = Conv2dWorkload {
        batch: 1,
        size,
        in_c: 3,
        out_c: ch,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let c1 = g.conv2d(x, w1, "c1");
    let b1 = g.batch_norm(c1, "b1");
    let r1 = g.relu(b1, "r1");
    let w2 = Conv2dWorkload {
        batch: 1,
        size,
        in_c: ch,
        out_c: ch,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let c2 = g.conv2d(r1, w2, "c2");
    let res = g.add_op(c2, r1, "res");
    let out = g.relu(res, "out");
    g.outputs.push(out);
    g
}

/// Compiles the demo graph for `target`.
pub fn build_demo(target: &Target, quick: bool) -> Module {
    let g = demo_graph(quick);
    tvm::build(&g, target, &BuildOptions::default()).expect("demo graph builds")
}

/// The deterministic input tensor for the demo graph.
pub fn demo_input(quick: bool) -> NDArray {
    let size = if quick { 16 } else { 32 };
    NDArray::seeded(&[1, 3, size, size], 42)
}

/// Binds the input and runs once; returns the flat output values.
pub fn run_once(ex: &mut GraphExecutor, quick: bool) -> Vec<f32> {
    ex.set_input("data", demo_input(quick)).expect("binds");
    ex.run().expect("runs");
    ex.get_output(0).expect("output").data.clone()
}

/// Sum of simulated cycles over a module's kernels, recomputed from the
/// lowered functions — the independent end-to-end figure the profiler's
/// per-op records must agree with.
pub fn sim_cycles(module: &Module, target: &Target) -> f64 {
    module
        .kernels
        .iter()
        .map(|k| estimate(&k.func, target).cycles)
        .sum()
}

/// Builds, profiles one run, and returns the per-op breakdown table — the
/// deterministic artifact the golden test pins.
pub fn demo_table(target: &Target, quick: bool) -> String {
    let module = build_demo(target, quick);
    let mut ex = GraphExecutor::new(module);
    ex.enable_profiling();
    run_once(&mut ex, quick);
    ex.profiler().expect("profiling enabled").table()
}
