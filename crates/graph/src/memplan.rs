//! Static memory planning (§3): pre-allocates storage for intermediate
//! tensors, sharing buffers between tensors whose live ranges do not
//! overlap (liveness-based greedy reuse).

use crate::fusion::FusedGraph;
use crate::ir::{Graph, NodeId, OpType};

/// The storage plan: a storage slot per group output.
#[derive(Clone, Debug)]
pub struct MemoryPlan {
    /// Storage slot id for each node (usize::MAX for params/inputs and
    /// nodes internal to a group, which never materialize).
    pub storage_of: Vec<usize>,
    /// Size in bytes of each storage slot. Byte-sized slots are safe to
    /// reuse across groups with different dtypes: a slot fits a tensor
    /// iff it holds at least `numel * dtype.bytes()` bytes.
    pub slot_sizes: Vec<usize>,
    /// Required base alignment of each slot in bytes: the maximum lane
    /// width over every tensor the slot ever holds. A slot born for an
    /// i8 tensor that is later reassigned to an f32 tensor must be
    /// 4-byte aligned, not 1-byte aligned — an allocator that lays slots
    /// out contiguously by size alone would hand the f32 occupant an
    /// unaligned base address.
    pub slot_aligns: Vec<usize>,
}

impl MemoryPlan {
    /// Total planned bytes.
    pub fn total_bytes(&self) -> usize {
        self.slot_sizes.iter().sum::<usize>()
    }

    /// Byte offset of each slot when the slots are packed into one arena
    /// in slot order, honoring each slot's required base alignment (the
    /// arena base itself is assumed maximally aligned).
    pub fn slot_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.slot_sizes.len());
        let mut cursor = 0usize;
        for (size, align) in self.slot_sizes.iter().zip(&self.slot_aligns) {
            let align = (*align).max(1);
            cursor = cursor.div_ceil(align) * align;
            offsets.push(cursor);
            cursor += size;
        }
        offsets
    }

    /// Total arena bytes when slots are packed with [`slot_offsets`]
    /// (>= [`total_bytes`] by at most the alignment padding).
    ///
    /// [`slot_offsets`]: MemoryPlan::slot_offsets
    /// [`total_bytes`]: MemoryPlan::total_bytes
    pub fn arena_bytes(&self) -> usize {
        match self.slot_offsets().last() {
            Some(&last) => last + self.slot_sizes.last().copied().unwrap_or(0),
            None => 0,
        }
    }

    /// Bytes without any reuse (one buffer per materialized tensor).
    pub fn naive_bytes(&self, g: &Graph, fused: &FusedGraph) -> usize {
        fused
            .groups
            .iter()
            .map(|grp| {
                let node = g.node(grp.output);
                node.shape.iter().product::<i64>() as usize * node.dtype.bytes()
            })
            .sum()
    }
}

/// Plans storage for all group outputs.
pub fn plan_memory(g: &Graph, fused: &FusedGraph) -> MemoryPlan {
    let consumers = g.consumers();
    // Live range of each group output: from its group index to the last
    // group that consumes it (graph outputs live forever).
    let n_groups = fused.groups.len();
    let mut last_use: Vec<usize> = (0..n_groups).collect();
    for (gi, grp) in fused.groups.iter().enumerate() {
        let out = grp.output;
        let mut last = gi;
        for &c in &consumers[out.0] {
            let cg = fused.group_of[c.0];
            if cg != usize::MAX {
                last = last.max(cg);
            }
        }
        if g.outputs.contains(&out) {
            last = n_groups;
        }
        last_use[gi] = last;
    }

    let mut storage_of = vec![usize::MAX; g.nodes.len()];
    let mut slot_sizes: Vec<usize> = Vec::new();
    let mut slot_aligns: Vec<usize> = Vec::new();
    let mut slot_free_at: Vec<usize> = Vec::new(); // group index when slot frees
    for (gi, grp) in fused.groups.iter().enumerate() {
        let out = g.node(grp.output);
        let size = out.shape.iter().product::<i64>() as usize * out.dtype.bytes();
        let align = out.dtype.lane_bytes().max(1);
        // Greedy: reuse the smallest free slot that fits.
        let mut best: Option<usize> = None;
        for (si, &free_at) in slot_free_at.iter().enumerate() {
            if free_at <= gi
                && slot_sizes[si] >= size
                && best.map(|b| slot_sizes[si] < slot_sizes[b]).unwrap_or(true)
            {
                best = Some(si);
            }
        }
        let slot = match best {
            Some(si) => {
                // Mixed-dtype reuse: a slot adopted by a wider dtype must
                // carry the widest occupant's alignment so its base stays
                // legal for every tensor it ever holds.
                slot_aligns[si] = slot_aligns[si].max(align);
                si
            }
            None => {
                slot_sizes.push(size);
                slot_aligns.push(align);
                slot_free_at.push(0);
                slot_sizes.len() - 1
            }
        };
        slot_free_at[slot] = last_use[gi] + 1;
        storage_of[grp.output.0] = slot;
    }
    MemoryPlan {
        storage_of,
        slot_sizes,
        slot_aligns,
    }
}

/// Constant folding (§3): nodes whose transitive inputs are all `Param`
/// can be pre-computed at deployment time. Returns the foldable node set
/// in topological order.
pub fn constant_foldable(g: &Graph) -> Vec<NodeId> {
    let mut is_const = vec![false; g.nodes.len()];
    let mut out = Vec::new();
    for node in &g.nodes {
        match node.op {
            OpType::Param => is_const[node.id.0] = true,
            OpType::Input => {}
            _ => {
                if !node.inputs.is_empty() && node.inputs.iter().all(|i| is_const[i.0]) {
                    is_const[node.id.0] = true;
                    out.push(node.id);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use tvm_topi::Conv2dWorkload;

    fn chain_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut x = g.input(&[1, 8, 8, 8], "data");
        for i in 0..n {
            let w = Conv2dWorkload {
                batch: 1,
                size: 8,
                in_c: 8,
                out_c: 8,
                kernel: 3,
                stride: 1,
                pad: 1,
            };
            x = g.conv2d(x, w, &format!("conv{i}"));
        }
        g.outputs.push(x);
        g
    }

    #[test]
    fn chain_reuses_two_slots() {
        // A linear chain needs only 2 ping-pong buffers regardless of depth.
        let g = chain_graph(6);
        let fused = fuse(&g, true);
        let plan = plan_memory(&g, &fused);
        assert_eq!(plan.slot_sizes.len(), 2, "{:?}", plan.slot_sizes);
        assert!(plan.total_bytes() < plan.naive_bytes(&g, &fused));
    }

    #[test]
    fn residual_extends_liveness() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 8, 8], "data");
        let w = Conv2dWorkload {
            batch: 1,
            size: 8,
            in_c: 8,
            out_c: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c1 = g.conv2d(x, w, "c1");
        let c2 = g.conv2d(c1, w, "c2");
        let c3 = g.conv2d(c2, w, "c3");
        let res = g.add_op(c3, c1, "res"); // c1 stays live across c2, c3
        g.outputs.push(res);
        let fused = fuse(&g, true);
        let plan = plan_memory(&g, &fused);
        // c1 cannot share with c2 or c3: at least 3 slots.
        assert!(plan.slot_sizes.len() >= 3, "{:?}", plan.slot_sizes);
        // Every materialized output has a valid slot.
        for grp in &fused.groups {
            assert_ne!(plan.storage_of[grp.output.0], usize::MAX);
        }
    }

    #[test]
    fn slot_sizes_are_dtype_aware() {
        use crate::ir::OpType;
        use tvm_ir::DType;
        // Same element count, three dtypes: planned bytes must reflect
        // each dtype's width, not a hard-coded 4 bytes/element.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "data"); // f32
        let q = g.add_typed(
            OpType::Relu,
            vec![x],
            vec![1, 4, 4, 4],
            DType::int8(),
            "quant",
        );
        let h = g.add_typed(
            OpType::Relu,
            vec![q],
            vec![1, 4, 4, 4],
            DType::float16(),
            "half",
        );
        let f = g.add_typed(
            OpType::Relu,
            vec![h],
            vec![1, 4, 4, 4],
            DType::float32(),
            "full",
        );
        g.outputs.push(f);
        let fused = fuse(&g, false);
        let plan = plan_memory(&g, &fused);
        let numel = 64usize;
        // Naive accounting: one buffer per output at its own width.
        assert_eq!(plan.naive_bytes(&g, &fused), numel * (1 + 2 + 4));
        // Every slot's byte size matches some output's numel * dtype width;
        // in particular the f32 output cannot squeeze into the i8 slot.
        assert!(plan.slot_sizes.iter().all(|&s| s % numel == 0));
        assert!(plan.total_bytes() >= numel * 4, "{:?}", plan.slot_sizes);
    }

    #[test]
    fn planned_bytes_match_liveness_replay_peak() {
        // Replay the schedule with a reference allocator: allocate each
        // group output at its group index, free it after its last use.
        // The plan's total must cover the observed peak (it is exact for
        // the greedy planner when no slot is oversized).
        let g = chain_graph(6);
        let fused = fuse(&g, true);
        let plan = plan_memory(&g, &fused);

        let consumers = g.consumers();
        let n_groups = fused.groups.len();
        let mut peak = 0usize;
        let mut live: Vec<(usize, usize)> = Vec::new(); // (last_use, bytes)
        for (gi, grp) in fused.groups.iter().enumerate() {
            live.retain(|&(last, _)| last >= gi);
            let node = g.node(grp.output);
            let bytes = node.shape.iter().product::<i64>() as usize * node.dtype.bytes();
            let mut last = gi;
            for &c in &consumers[grp.output.0] {
                let cg = fused.group_of[c.0];
                if cg != usize::MAX {
                    last = last.max(cg);
                }
            }
            if g.outputs.contains(&grp.output) {
                last = n_groups;
            }
            live.push((last, bytes));
            peak = peak.max(live.iter().map(|&(_, b)| b).sum());
        }
        assert!(plan.total_bytes() >= peak);
        // For the uniform f32 chain the greedy plan is exactly the peak.
        assert_eq!(plan.total_bytes(), peak, "{:?}", plan.slot_sizes);
    }

    #[test]
    fn mixed_dtype_reuse_carries_max_alignment() {
        use crate::ir::OpType;
        use tvm_ir::DType;
        // An i8 tensor claims a slot first; an f32 tensor of the same byte
        // size reuses it later. The slot must end up 4-byte aligned.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "data");
        // 64 i8 elements = 64 bytes, live only into the next op.
        let q = g.add_typed(
            OpType::Relu,
            vec![x],
            vec![1, 4, 4, 4],
            DType::int8(),
            "quant",
        );
        // 64 i8 -> 16 f32 elements = 64 bytes: exact-size reuse candidate.
        let f = g.add_typed(
            OpType::Reshape,
            vec![q],
            vec![1, 16],
            DType::float32(),
            "dequant",
        );
        let r = g.add_typed(OpType::Relu, vec![f], vec![1, 16], DType::float32(), "act");
        g.outputs.push(r);
        let fused = fuse(&g, false);
        let plan = plan_memory(&g, &fused);
        // q (i8) is dead once f is computed, so r (f32, same byte size)
        // reuses q's slot.
        let i8_slot = plan.storage_of[q.0];
        let f32_slot = plan.storage_of[r.0];
        assert_eq!(i8_slot, f32_slot, "{:?}", plan.storage_of);
        // The shared slot's alignment reflects the widest occupant.
        assert_eq!(plan.slot_aligns[i8_slot], 4, "{:?}", plan.slot_aligns);
        // Packed offsets honor each slot's alignment.
        for (si, off) in plan.slot_offsets().iter().enumerate() {
            assert_eq!(off % plan.slot_aligns[si].max(1), 0);
        }
        assert!(plan.arena_bytes() >= plan.total_bytes() - plan.slot_sizes.len() * 4);
    }

    #[test]
    fn slot_offsets_insert_alignment_padding() {
        // Hand-built plan: a 3-byte 1-aligned slot followed by a 4-aligned
        // slot forces 1 byte of padding in the packed arena.
        let plan = MemoryPlan {
            storage_of: vec![],
            slot_sizes: vec![3, 8],
            slot_aligns: vec![1, 4],
        };
        assert_eq!(plan.slot_offsets(), vec![0, 4]);
        assert_eq!(plan.arena_bytes(), 12);
        assert_eq!(plan.total_bytes(), 11);
    }

    #[test]
    fn folding_detects_param_only_subgraphs() {
        let mut g = Graph::new();
        let p1 = g.param(&[1, 8, 4, 4], "w1");
        let p2 = g.param(&[1, 8, 4, 4], "w2");
        let folded = g.add_op(p1, p2, "wsum"); // param + param: foldable
        let x = g.input(&[1, 8, 4, 4], "data");
        let live = g.add_op(x, folded, "apply"); // depends on input: not
        g.outputs.push(live);
        let f = constant_foldable(&g);
        assert_eq!(f, vec![folded]);
    }
}
