//! Graph-level static verification: the §3 graph optimizations checked
//! post-hoc, mirroring the loop-IR suite in `tvm-analysis` (interval
//! proofs where possible, concrete refutation witnesses where not).
//!
//! Three passes run over a `(Graph, FusedGraph, MemoryPlan)` triple (plus
//! the lowered kernels for the cross-layer pass):
//!
//! 1. [`check_memplan`] — **memory-plan safety**: recomputes tensor
//!    liveness from the executor's topological order (group `i` writes at
//!    op `i`, readers extend the range, graph outputs live forever),
//!    builds the interference relation, and proves every pair of tensors
//!    sharing a storage slot has disjoint live ranges — refuting with the
//!    exact op index at which two live tensors would alias. Each slot's
//!    byte size and base alignment must cover every dtype-aware occupant.
//! 2. [`check_fusion`] — **fusion legality**: every fused group is
//!    validated against the §3 rule table after the fact — a single
//!    non-injective "master" per group, straight-line injective chains,
//!    no external consumer of a fused intermediate (it never
//!    materializes), and shape/dtype agreement along fused edges.
//! 3. [`check_slot_contracts`] — **cross-layer slot contracts**: reuses
//!    the loop-IR buffer-bounds machinery (`tvm_analysis::bounds`) to
//!    prove each lowered kernel's touch set on every bound tensor fits
//!    inside the bytes the planner actually reserved for it — the
//!    contract that connects the graph layer's plan to the schedule
//!    layer's generated code. An undersized slot comes back as a bounds
//!    refutation with a concrete loop-index witness.
//!
//! Diagnostics reuse [`tvm_analysis::Diagnostic`], name nodes/slots by
//! display name and index (never internal ids), and are deterministic —
//! the same golden-file discipline as the loop-IR passes.

use tvm_analysis::{bounds, Diagnostic};
use tvm_ir::LoweredFunc;

use crate::fusion::FusedGraph;
use crate::ir::{Graph, NodeId, OpType, Pattern};
use crate::memplan::MemoryPlan;

/// One lowered kernel as the executor binds it: the function plus the
/// graph nodes whose values bind to its buffer params, in order (the last
/// entry is the kernel output). Index-aligned with the fused groups.
#[derive(Clone, Copy)]
pub struct KernelView<'a> {
    /// Kernel display name.
    pub name: &'a str,
    /// The lowered function.
    pub func: &'a LoweredFunc,
    /// Graph nodes bound to the function's buffer params, in order.
    pub args: &'a [NodeId],
}

/// Aggregate result of a graph-verification run, mirroring
/// `tvm_analysis::AnalysisReport`.
#[derive(Clone, Debug, Default)]
pub struct GraphReport {
    /// All findings, in pass order (`memplan`, `fusion`, `slot-contract`).
    pub diagnostics: Vec<Diagnostic>,
    /// Fused groups validated against the rule table.
    pub groups_checked: usize,
    /// Storage slots whose occupant sets were examined.
    pub slots_checked: usize,
    /// Same-slot tensor pairs whose live ranges were compared.
    pub pairs_checked: usize,
    /// Kernel buffer accesses checked against planned capacities.
    pub contracts_checked: usize,
    /// Accesses proven inside their planned capacity.
    pub contracts_proven: usize,
    /// Accesses refuted with a concrete witness.
    pub contracts_refuted: usize,
    /// Accesses neither proven nor refuted.
    pub contracts_unknown: usize,
}

impl GraphReport {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == tvm_analysis::Severity::Error)
    }

    /// True when any pass produced an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// One line per diagnostic plus a counters summary, for logs and
    /// golden files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "graph: {} groups, {} slots, {} live pairs; contracts: {} checked, \
             {} proven, {} refuted, {} unknown\n",
            self.groups_checked,
            self.slots_checked,
            self.pairs_checked,
            self.contracts_checked,
            self.contracts_proven,
            self.contracts_refuted,
            self.contracts_unknown,
        ));
        out
    }
}

/// Live range of one materialized tensor in executor op order: written at
/// op `birth`, last read at op `death` (`n_groups` = read after the whole
/// graph ran, i.e. a graph output).
#[derive(Clone, Copy, Debug)]
struct LiveRange {
    node: NodeId,
    birth: usize,
    death: usize,
}

/// Recomputes liveness from the executor's topological order,
/// independently of the planner's own bookkeeping: group `i`'s output is
/// born when kernel `i` runs and dies after the last kernel that binds it
/// as an input (graph outputs never die).
fn liveness(g: &Graph, fused: &FusedGraph) -> Vec<LiveRange> {
    let n_groups = fused.groups.len();
    let mut ranges: Vec<LiveRange> = fused
        .groups
        .iter()
        .enumerate()
        .map(|(gi, grp)| LiveRange {
            node: grp.output,
            birth: gi,
            death: gi,
        })
        .collect();
    // A group's kernel reads every out-of-group tensor its members
    // consume — exactly what the executor binds as kernel inputs.
    for (gi, grp) in fused.groups.iter().enumerate() {
        for &m in &grp.nodes {
            for &inp in &g.node(m).inputs {
                let pg = fused.group_of.get(inp.0).copied().unwrap_or(usize::MAX);
                if pg != usize::MAX && pg != gi && fused.groups[pg].output == inp {
                    ranges[pg].death = ranges[pg].death.max(gi);
                }
            }
        }
    }
    for r in &mut ranges {
        if g.outputs.contains(&r.node) {
            r.death = n_groups;
        }
    }
    ranges
}

/// Pass 1: memory-plan safety. Every pair of tensors sharing a slot must
/// have disjoint live ranges, and each slot's byte size and alignment
/// must cover every occupant at its own dtype width.
pub fn check_memplan(g: &Graph, fused: &FusedGraph, plan: &MemoryPlan) -> GraphReport {
    let mut report = GraphReport::default();
    let diags = &mut report.diagnostics;
    let n_slots = plan.slot_sizes.len();

    if plan.storage_of.len() != g.nodes.len() {
        diags.push(Diagnostic::error(
            "memplan",
            format!(
                "plan covers {} nodes but the graph has {}",
                plan.storage_of.len(),
                g.nodes.len()
            ),
            None,
        ));
        return report;
    }
    if plan.slot_aligns.len() != n_slots {
        diags.push(Diagnostic::error(
            "memplan",
            format!(
                "plan has {} slot sizes but {} slot alignments",
                n_slots,
                plan.slot_aligns.len()
            ),
            None,
        ));
        return report;
    }

    // Exactly the group outputs materialize.
    let mut is_group_output = vec![false; g.nodes.len()];
    for grp in &fused.groups {
        if let Some(slot) = is_group_output.get_mut(grp.output.0) {
            *slot = true;
        }
    }
    for node in &g.nodes {
        let slot = plan.storage_of[node.id.0];
        if is_group_output[node.id.0] {
            if slot == usize::MAX {
                diags.push(Diagnostic::error(
                    "memplan",
                    format!("group output `{}` has no storage slot", node.name),
                    None,
                ));
            } else if slot >= n_slots {
                diags.push(Diagnostic::error(
                    "memplan",
                    format!(
                        "`{}` assigned slot {} but the plan has only {} slots",
                        node.name, slot, n_slots
                    ),
                    None,
                ));
            }
        } else if slot != usize::MAX {
            diags.push(Diagnostic::error(
                "memplan",
                format!(
                    "`{}` never materializes (not a group output) but holds slot {}",
                    node.name, slot
                ),
                None,
            ));
        }
    }

    // Slot capacity and alignment per occupant, at the occupant's dtype.
    let ranges = liveness(g, fused);
    for r in &ranges {
        let node = g.node(r.node);
        let slot = plan.storage_of[r.node.0];
        if slot >= n_slots {
            continue; // already reported above
        }
        let need = node.shape.iter().product::<i64>().max(0) as usize * node.dtype.bytes();
        if plan.slot_sizes[slot] < need {
            diags.push(Diagnostic::error(
                "memplan",
                format!(
                    "slot {} holds {} bytes but occupant `{}` needs {} ({} x {}B {})",
                    slot,
                    plan.slot_sizes[slot],
                    node.name,
                    need,
                    node.shape.iter().product::<i64>(),
                    node.dtype.bytes(),
                    node.dtype,
                ),
                None,
            ));
        }
        let align = node.dtype.lane_bytes().max(1);
        if !plan.slot_aligns[slot].max(1).is_multiple_of(align) {
            diags.push(Diagnostic::error(
                "memplan",
                format!(
                    "slot {} is {}-byte aligned but occupant `{}` ({}) requires {}-byte \
                     alignment",
                    slot,
                    plan.slot_aligns[slot].max(1),
                    node.name,
                    node.dtype,
                    align,
                ),
                None,
            ));
        }
    }

    // Interference: occupants of one slot, in birth order; overlapping
    // live ranges alias. The witness is the exact op index at which the
    // later tensor is written over the still-live earlier one.
    let mut by_slot: Vec<Vec<&LiveRange>> = vec![Vec::new(); n_slots];
    for r in &ranges {
        let slot = plan.storage_of[r.node.0];
        if slot < n_slots {
            by_slot[slot].push(r);
        }
    }
    report.slots_checked = n_slots;
    for (si, occupants) in by_slot.iter().enumerate() {
        let mut occ = occupants.clone();
        occ.sort_by_key(|r| r.birth);
        for (i, a) in occ.iter().enumerate() {
            for b in occ.iter().skip(i + 1) {
                report.pairs_checked += 1;
                if b.birth <= a.death {
                    diags.push(Diagnostic::error(
                        "memplan",
                        format!(
                            "slot {} aliases two live tensors: `{}` (live ops {}..={}) is \
                             overwritten by `{}`",
                            si,
                            g.node(a.node).name,
                            a.birth,
                            a.death,
                            g.node(b.node).name,
                        ),
                        Some(format!("at op {}", b.birth)),
                    ));
                }
            }
        }
    }
    report
}

/// Data inputs of an injective op that must agree with its output shape
/// elementwise; `None` means only total element count must agree
/// (reshape-like reinterpretations).
fn elementwise_inputs(op: &OpType) -> Option<&'static [usize]> {
    match op {
        OpType::Relu | OpType::BatchNorm | OpType::BiasAdd | OpType::Tanh | OpType::Sigmoid => {
            Some(&[0])
        }
        OpType::Add | OpType::Multiply => Some(&[0, 1]),
        OpType::Flatten | OpType::Reshape | OpType::LayoutTransform { .. } => None,
        _ => None,
    }
}

/// Pass 2: fusion legality. Validates every fused group against the §3
/// rule table post-hoc.
pub fn check_fusion(g: &Graph, fused: &FusedGraph) -> GraphReport {
    let mut report = GraphReport::default();
    let diags = &mut report.diagnostics;

    if fused.group_of.len() != g.nodes.len() {
        diags.push(Diagnostic::error(
            "fusion",
            format!(
                "fusion covers {} nodes but the graph has {}",
                fused.group_of.len(),
                g.nodes.len()
            ),
            None,
        ));
        return report;
    }

    // Membership consistency: every compute node sits in exactly one
    // group, and that group lists it exactly once.
    let mut member_count = vec![0usize; g.nodes.len()];
    for (gi, grp) in fused.groups.iter().enumerate() {
        for &m in &grp.nodes {
            match g.get(m) {
                None => diags.push(Diagnostic::error(
                    "fusion",
                    format!("group {gi} lists node #{} outside the graph", m.0),
                    None,
                )),
                Some(_) => {
                    member_count[m.0] += 1;
                    if fused.group_of[m.0] != gi {
                        diags.push(Diagnostic::error(
                            "fusion",
                            format!(
                                "`{}` is listed in group {gi} but group_of says {}",
                                g.node(m).name,
                                display_group(fused.group_of[m.0]),
                            ),
                            None,
                        ));
                    }
                }
            }
        }
    }
    for node in &g.nodes {
        let is_compute = !matches!(node.op, OpType::Input | OpType::Param);
        match (is_compute, member_count[node.id.0]) {
            (true, 0) => diags.push(Diagnostic::error(
                "fusion",
                format!("compute node `{}` belongs to no group", node.name),
                None,
            )),
            (true, n) if n > 1 => diags.push(Diagnostic::error(
                "fusion",
                format!("`{}` is a member of {n} groups", node.name),
                None,
            )),
            (false, n) if n > 0 => diags.push(Diagnostic::error(
                "fusion",
                format!(
                    "{} `{}` cannot be a group member",
                    node.op.name(),
                    node.name
                ),
                None,
            )),
            _ => {}
        }
    }

    let consumers = g.consumers();
    for (gi, grp) in fused.groups.iter().enumerate() {
        report.groups_checked += 1;
        if grp.nodes.is_empty() {
            diags.push(Diagnostic::error(
                "fusion",
                format!("group {gi} is empty"),
                None,
            ));
            continue;
        }
        let in_group = |id: NodeId| grp.nodes.contains(&id);
        if !in_group(grp.master) || !in_group(grp.output) {
            diags.push(Diagnostic::error(
                "fusion",
                format!(
                    "group {gi}: master `{}` or output `{}` is not a member",
                    g.node(grp.master).name,
                    g.node(grp.output).name
                ),
                None,
            ));
            continue;
        }

        // Single master: every non-master member is injective.
        for &m in &grp.nodes {
            if m != grp.master && g.node(m).op.pattern() != Pattern::Injective {
                diags.push(Diagnostic::error(
                    "fusion",
                    format!(
                        "group {gi}: non-injective `{}` ({}) fused under master `{}`",
                        g.node(m).name,
                        g.node(m).op.name(),
                        g.node(grp.master).name
                    ),
                    None,
                ));
            }
        }
        // Opaque ops never fuse.
        if g.node(grp.master).op.pattern() == Pattern::Opaque && grp.nodes.len() > 1 {
            diags.push(Diagnostic::error(
                "fusion",
                format!(
                    "group {gi}: opaque `{}` fused with {} other ops",
                    g.node(grp.master).name,
                    grp.nodes.len() - 1
                ),
                None,
            ));
        }

        // Straight-line producer chains: each member after the first
        // consumes another member.
        for (mi, &m) in grp.nodes.iter().enumerate() {
            if mi > 0 && !g.node(m).inputs.iter().any(|&i| in_group(i)) {
                diags.push(Diagnostic::error(
                    "fusion",
                    format!(
                        "group {gi}: `{}` consumes nothing inside its own group",
                        g.node(m).name
                    ),
                    None,
                ));
            }
        }

        // Fused intermediates never materialize: no consumer outside the
        // group, and never a graph output.
        for &m in &grp.nodes {
            if m == grp.output {
                continue;
            }
            for &c in &consumers[m.0] {
                if !in_group(c) {
                    diags.push(Diagnostic::error(
                        "fusion",
                        format!(
                            "group {gi}: intermediate `{}` is consumed by `{}` outside the \
                             group",
                            g.node(m).name,
                            g.node(c).name
                        ),
                        Some(format!("at op {}", display_group(fused.group_of[c.0]))),
                    ));
                }
            }
            if g.outputs.contains(&m) {
                diags.push(Diagnostic::error(
                    "fusion",
                    format!(
                        "group {gi}: intermediate `{}` is a graph output but never \
                         materializes",
                        g.node(m).name
                    ),
                    None,
                ));
            }
        }

        // Shape/dtype agreement along fused edges of elementwise members.
        for &m in &grp.nodes {
            let node = g.node(m);
            if node.op.pattern() != Pattern::Injective {
                continue;
            }
            let strict = elementwise_inputs(&node.op);
            for (pos, &inp) in node.inputs.iter().enumerate() {
                if !in_group(inp) {
                    continue;
                }
                let prod = g.node(inp);
                let numel = |s: &[i64]| s.iter().product::<i64>();
                if let Some(strict) = strict {
                    if strict.contains(&pos) && prod.shape != node.shape {
                        diags.push(Diagnostic::error(
                            "fusion",
                            format!(
                                "group {gi}: elementwise `{}` expects shape {:?} but fused \
                                 producer `{}` has {:?}",
                                node.name, node.shape, prod.name, prod.shape
                            ),
                            None,
                        ));
                        continue;
                    }
                }
                if numel(&prod.shape) != numel(&node.shape) && strict.is_none() {
                    diags.push(Diagnostic::error(
                        "fusion",
                        format!(
                            "group {gi}: `{}` reinterprets {} elements of fused producer \
                             `{}` as {}",
                            node.name,
                            numel(&prod.shape),
                            prod.name,
                            numel(&node.shape)
                        ),
                        None,
                    ));
                }
                if prod.dtype != node.dtype {
                    diags.push(Diagnostic::error(
                        "fusion",
                        format!(
                            "group {gi}: dtype changes along fused edge `{}` ({}) -> `{}` \
                             ({}) without a materialization",
                            prod.name, prod.dtype, node.name, node.dtype
                        ),
                        None,
                    ));
                }
            }
        }
    }
    report
}

fn display_group(gi: usize) -> String {
    if gi == usize::MAX {
        "none".to_string()
    } else {
        gi.to_string()
    }
}

/// Pass 3: cross-layer slot contracts. For every kernel buffer argument,
/// the planner reserved some number of bytes (a shared slot for
/// materialized tensors, a dedicated exact-size buffer for graph inputs
/// and params); the loop-IR bounds machinery must prove the kernel's
/// touch set on that argument fits inside it. An undersized slot
/// surfaces as a refutation with a concrete loop-index witness.
pub fn check_slot_contracts(
    g: &Graph,
    plan: &MemoryPlan,
    kernels: &[KernelView<'_>],
) -> GraphReport {
    let mut report = GraphReport::default();
    for k in kernels {
        if k.args.len() != k.func.params.len() {
            report.diagnostics.push(Diagnostic::error(
                "slot-contract",
                format!(
                    "kernel `{}` binds {} tensors to {} buffer params",
                    k.name,
                    k.args.len(),
                    k.func.params.len()
                ),
                None,
            ));
            continue;
        }
        // Element capacity the plan actually reserved for each argument.
        let mut caps: Vec<usize> = Vec::with_capacity(k.args.len());
        let mut bad_ref = false;
        for &arg in k.args {
            let Some(node) = g.get(arg) else {
                report.diagnostics.push(Diagnostic::error(
                    "slot-contract",
                    format!(
                        "kernel `{}` references node #{} outside the graph",
                        k.name, arg.0
                    ),
                    None,
                ));
                bad_ref = true;
                break;
            };
            let numel = node.shape.iter().product::<i64>().max(0) as usize;
            let slot = plan.storage_of.get(arg.0).copied().unwrap_or(usize::MAX);
            let cap = if slot != usize::MAX && slot < plan.slot_sizes.len() {
                plan.slot_sizes[slot] / node.dtype.bytes().max(1)
            } else {
                // Graph inputs and params own dedicated exact-size
                // buffers; the executor allocates them at full extent.
                numel
            };
            caps.push(cap);
        }
        if bad_ref {
            continue;
        }
        let (diags, stats) = bounds::check(&k.func.body, &k.func.params, &caps);
        report.contracts_checked += stats.checked;
        report.contracts_proven += stats.proven;
        report.contracts_refuted += stats.refuted;
        report.contracts_unknown += stats.unknown;
        for d in diags {
            if d.severity == tvm_analysis::Severity::Error {
                report.diagnostics.push(Diagnostic::error(
                    "slot-contract",
                    format!(
                        "kernel `{}`: planned capacity exceeded: {}",
                        k.name, d.message
                    ),
                    d.witness,
                ));
            }
        }
    }
    report
}

fn merge(into: &mut GraphReport, from: GraphReport) {
    into.diagnostics.extend(from.diagnostics);
    into.groups_checked += from.groups_checked;
    into.slots_checked += from.slots_checked;
    into.pairs_checked += from.pairs_checked;
    into.contracts_checked += from.contracts_checked;
    into.contracts_proven += from.contracts_proven;
    into.contracts_refuted += from.contracts_refuted;
    into.contracts_unknown += from.contracts_unknown;
}

/// Runs the graph-layer passes (memory plan + fusion legality) — what the
/// fuzzing oracle and the graph lint run on every `(fuse, plan_memory)`
/// result.
pub fn verify_graph(g: &Graph, fused: &FusedGraph, plan: &MemoryPlan) -> GraphReport {
    let mut report = check_memplan(g, fused, plan);
    merge(&mut report, check_fusion(g, fused));
    report
}

/// Runs all three passes over a complete build (graph passes plus the
/// cross-layer slot contracts over the lowered kernels).
pub fn verify_build(
    g: &Graph,
    fused: &FusedGraph,
    plan: &MemoryPlan,
    kernels: &[KernelView<'_>],
) -> GraphReport {
    let mut report = verify_graph(g, fused, plan);
    merge(&mut report, check_slot_contracts(g, plan, kernels));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse;
    use crate::memplan::plan_memory;
    use tvm_topi::Conv2dWorkload;

    fn conv_chain(n: usize) -> Graph {
        let mut g = Graph::new();
        let mut x = g.input(&[1, 8, 8, 8], "data");
        for i in 0..n {
            let w = Conv2dWorkload {
                batch: 1,
                size: 8,
                in_c: 8,
                out_c: 8,
                kernel: 3,
                stride: 1,
                pad: 1,
            };
            x = g.conv2d(x, w, &format!("conv{i}"));
            x = g.relu(x, &format!("relu{i}"));
        }
        g.outputs.push(x);
        g
    }

    #[test]
    fn planner_output_verifies_clean() {
        let g = conv_chain(4);
        for enabled in [true, false] {
            let fused = fuse(&g, enabled);
            let plan = plan_memory(&g, &fused);
            let report = verify_graph(&g, &fused, &plan);
            assert!(!report.has_errors(), "{}", report.render());
            assert!(report.groups_checked > 0);
            assert!(report.pairs_checked > 0 || plan.slot_sizes.len() == report.slots_checked);
        }
    }

    #[test]
    fn aliased_slots_are_refuted_with_op_index() {
        let g = conv_chain(3);
        let fused = fuse(&g, true);
        let mut plan = plan_memory(&g, &fused);
        // Force every materialized tensor into slot 0.
        for s in plan.storage_of.iter_mut().filter(|s| **s != usize::MAX) {
            *s = 0;
        }
        let report = check_memplan(&g, &fused, &plan);
        assert!(report.has_errors(), "{}", report.render());
        let alias = report
            .errors()
            .find(|d| d.message.contains("aliases two live tensors"))
            .expect("alias diagnostic");
        assert!(alias.witness.as_deref().unwrap_or("").starts_with("at op "));
    }

    #[test]
    fn undersized_slot_is_refuted() {
        let g = conv_chain(2);
        let fused = fuse(&g, true);
        let mut plan = plan_memory(&g, &fused);
        plan.slot_sizes[0] = 4; // one f32 where a whole tensor should fit
        let report = check_memplan(&g, &fused, &plan);
        assert!(report
            .errors()
            .any(|d| d.message.contains("bytes but occupant")));
    }

    #[test]
    fn misaligned_slot_is_refuted() {
        let g = conv_chain(1);
        let fused = fuse(&g, true);
        let mut plan = plan_memory(&g, &fused);
        plan.slot_aligns[0] = 1; // f32 occupant needs 4
        let report = check_memplan(&g, &fused, &plan);
        assert!(report
            .errors()
            .any(|d| d.message.contains("requires 4-byte alignment")));
    }

    #[test]
    fn external_consumer_of_intermediate_is_illegal() {
        // conv -> relu fused, but a second graph consumer reads the conv
        // result: the fused intermediate would never materialize.
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "data");
        let w = Conv2dWorkload {
            batch: 1,
            size: 4,
            in_c: 4,
            out_c: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c = g.conv2d(x, w, "conv");
        let r = g.relu(c, "relu");
        let t = g.relu(c, "tap"); // external consumer of conv
        g.outputs.push(r);
        g.outputs.push(t);
        let mut fused = fuse(&g, true);
        // The rule-following pass keeps conv alone; force the illegal
        // merge the checker must reject.
        let cg = fused.group_of[c.0];
        let rg = fused.group_of[r.0];
        assert_ne!(cg, rg);
        let relu_group = fused.groups.remove(rg);
        fused.groups[cg].nodes.extend(relu_group.nodes.clone());
        fused.groups[cg].output = relu_group.output;
        for &m in &relu_group.nodes {
            fused.group_of[m.0] = cg;
        }
        for gi in fused.group_of.iter_mut() {
            if *gi != usize::MAX && *gi > rg {
                *gi -= 1;
            }
        }
        let report = check_fusion(&g, &fused);
        assert!(report.has_errors(), "{}", report.render());
        assert!(report
            .errors()
            .any(|d| d.message.contains("outside the group")));
    }

    #[test]
    fn two_masters_in_one_group_is_illegal() {
        let g = conv_chain(2);
        let mut fused = fuse(&g, true);
        // Merge the two conv groups into one: two complex masters.
        assert!(fused.groups.len() >= 2);
        let second = fused.groups.remove(1);
        for &m in &second.nodes {
            fused.group_of[m.0] = 0;
        }
        for gi in fused.group_of.iter_mut() {
            if *gi != usize::MAX && *gi >= 1 {
                *gi -= 1;
            }
        }
        fused.groups[0].nodes.extend(second.nodes);
        fused.groups[0].output = second.output;
        let report = check_fusion(&g, &fused);
        assert!(report.errors().any(|d| d.message.contains("non-injective")));
    }

    #[test]
    fn shape_mismatch_along_fused_edge_is_illegal() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8], "data");
        let a = g.relu(x, "a");
        // Lie about the shape: an elementwise op whose declared shape
        // disagrees with its fused producer.
        let b = g.add(OpType::Relu, vec![a], vec![1, 16], "b");
        g.outputs.push(b);
        let fused = fuse(&g, true);
        if fused.group_of[a.0] == fused.group_of[b.0] {
            let report = check_fusion(&g, &fused);
            assert!(report.errors().any(|d| d.message.contains("expects shape")));
        }
    }

    #[test]
    fn slot_contract_catches_undersized_plan() {
        use tvm_ir::{DType, Expr, Stmt, Var};
        // A hand-lowered kernel writing 16 elements, with a plan that
        // reserved only 8 elements' worth of bytes for its output.
        let mut g = Graph::new();
        let x = g.input(&[16], "data");
        let r = g.relu(x, "relu");
        g.outputs.push(r);
        let fused = fuse(&g, true);
        let mut plan = plan_memory(&g, &fused);
        let a = Var::new("data", DType::float32());
        let out = Var::new("out", DType::float32());
        let i = Var::int("i");
        let body = Stmt::for_(
            &i,
            0,
            16,
            Stmt::store(&out, i.to_expr(), Expr::load(&a, i.to_expr())),
        );
        let func = LoweredFunc {
            name: "relu_kernel".into(),
            params: vec![a, out],
            param_dtypes: vec![DType::float32(), DType::float32()],
            param_extents: vec![16, 16],
            body,
        };
        let args = [x, r];
        let kernels = [KernelView {
            name: "relu_kernel",
            func: &func,
            args: &args,
        }];
        // Correct plan: contract proven.
        let clean = check_slot_contracts(&g, &plan, &kernels);
        assert!(!clean.has_errors(), "{}", clean.render());
        assert!(clean.contracts_proven >= 2);
        // Undersize the output slot: refuted with a loop-index witness.
        let slot = plan.storage_of[r.0];
        plan.slot_sizes[slot] = 32; // room for 8 of the 16 f32 elements
        let bad = check_slot_contracts(&g, &plan, &kernels);
        assert!(bad.contracts_refuted > 0, "{}", bad.render());
        let d = bad
            .errors()
            .find(|d| d.message.contains("planned capacity exceeded"))
            .expect("contract diagnostic");
        assert!(d.witness.is_some());
    }
}
