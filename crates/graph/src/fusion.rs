//! Operator fusion (§3): groups graph nodes into fused kernels using the
//! paper's generic rules — injective ops fuse with each other; a
//! complex-out-fusable op absorbs element-wise ops applied to its output;
//! reductions fuse their input injective ops; opaque ops stand alone.

use crate::ir::{Graph, NodeId, OpType, Pattern};

/// A fused group: one kernel after fusion.
#[derive(Clone, Debug)]
pub struct Group {
    /// Member nodes in topological order.
    pub nodes: Vec<NodeId>,
    /// The "master" (most complex) node that drives scheduling.
    pub master: NodeId,
    /// The node whose output leaves the group.
    pub output: NodeId,
}

impl Group {
    /// True if the group is a single node.
    pub fn is_single(&self) -> bool {
        self.nodes.len() == 1
    }
}

/// The result of fusion: every non-param node belongs to exactly one group.
#[derive(Clone, Debug)]
pub struct FusedGraph {
    /// Groups in topological order.
    pub groups: Vec<Group>,
    /// group index per node (usize::MAX for params/inputs).
    pub group_of: Vec<usize>,
}

fn master_rank(p: Pattern) -> u8 {
    match p {
        Pattern::ComplexOutFusable => 3,
        Pattern::Reduction => 2,
        Pattern::Opaque => 1,
        Pattern::Injective => 0,
    }
}

/// Runs the fusion pass. `enabled = false` puts every compute node in its
/// own group (the "TVM w/o fusion" baselines of Fig. 4 / Fig. 14).
pub fn fuse(g: &Graph, enabled: bool) -> FusedGraph {
    let consumers = g.consumers();
    let n = g.nodes.len();
    let mut group_of: Vec<usize> = vec![usize::MAX; n];
    let mut groups: Vec<Group> = Vec::new();

    for node in &g.nodes {
        if matches!(node.op, OpType::Input | OpType::Param) {
            continue;
        }
        let pat = node.op.pattern();
        let mut joined = false;
        if enabled && pat == Pattern::Injective {
            // Join the group of a data-input producer when this node is the
            // current output of that group (a straight-line element-wise
            // suffix) and the group's master allows output fusion.
            for &inp in &node.inputs {
                let inode = g.node(inp);
                if matches!(inode.op, OpType::Input | OpType::Param) {
                    continue;
                }
                let gi = group_of[inp.0];
                if gi == usize::MAX {
                    continue;
                }
                let grp = &groups[gi];
                let master_pat = g.node(grp.master).op.pattern();
                let fusable_master = matches!(
                    master_pat,
                    Pattern::ComplexOutFusable | Pattern::Injective | Pattern::Reduction
                );
                // The producer must currently be the group's output and have
                // this node as its only compute consumer, so the group stays
                // single-output.
                let single_consumer = consumers[inp.0].len() == 1;
                if fusable_master && grp.output == inp && single_consumer {
                    let gi_mut = gi;
                    groups[gi_mut].nodes.push(node.id);
                    groups[gi_mut].output = node.id;
                    // Injective never replaces the master.
                    group_of[node.id.0] = gi_mut;
                    joined = true;
                    break;
                }
            }
        }
        if enabled && !joined && pat == Pattern::Reduction {
            // A reduction fuses its injective input chain (e.g. scale then
            // sum): absorb a single-consumer injective producer group whose
            // master is injective.
            for &inp in &node.inputs {
                let gi = group_of[inp.0];
                if gi == usize::MAX {
                    continue;
                }
                let grp = &groups[gi];
                if g.node(grp.master).op.pattern() == Pattern::Injective
                    && grp.output == inp
                    && consumers[inp.0].len() == 1
                {
                    groups[gi].nodes.push(node.id);
                    groups[gi].output = node.id;
                    groups[gi].master = node.id;
                    group_of[node.id.0] = gi;
                    joined = true;
                    break;
                }
            }
        }
        if !joined {
            group_of[node.id.0] = groups.len();
            groups.push(Group {
                nodes: vec![node.id],
                master: node.id,
                output: node.id,
            });
        }
    }
    // Masters: highest-rank member. Groups are non-empty by construction;
    // an empty one (defensive: a malformed graph fed in by a caller) keeps
    // its existing master instead of panicking the compile.
    for grp in &mut groups {
        let best = grp
            .nodes
            .iter()
            .copied()
            .max_by_key(|&id| master_rank(g.node(id).op.pattern()));
        if let Some(best) = best {
            if master_rank(g.node(best).op.pattern()) > master_rank(g.node(grp.master).op.pattern())
            {
                grp.master = best;
            }
        }
    }
    FusedGraph { groups, group_of }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_topi::{Conv2dWorkload, DenseWorkload};

    fn conv_bn_relu_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 16, 8, 8], "data");
        let w = Conv2dWorkload {
            batch: 1,
            size: 8,
            in_c: 16,
            out_c: 16,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c = g.conv2d(x, w, "conv");
        let b = g.batch_norm(c, "bn");
        let r = g.relu(b, "relu");
        g.outputs.push(r);
        g
    }

    #[test]
    fn conv_bn_relu_fuses_into_one_group() {
        let g = conv_bn_relu_graph();
        let fused = fuse(&g, true);
        assert_eq!(fused.groups.len(), 1);
        let grp = &fused.groups[0];
        assert_eq!(grp.nodes.len(), 3);
        assert_eq!(g.node(grp.master).op.name(), "conv2d");
        assert_eq!(g.node(grp.output).op.name(), "relu");
    }

    #[test]
    fn fusion_disabled_keeps_ops_separate() {
        let g = conv_bn_relu_graph();
        let fused = fuse(&g, false);
        assert_eq!(fused.groups.len(), 3);
        assert!(fused.groups.iter().all(|grp| grp.is_single()));
    }

    #[test]
    fn multi_consumer_intermediate_blocks_fusion() {
        // conv output used by relu AND by a residual add later: conv can't
        // absorb relu (conv result must materialize).
        let mut g = Graph::new();
        let x = g.input(&[1, 4, 4, 4], "data");
        let w = Conv2dWorkload {
            batch: 1,
            size: 4,
            in_c: 4,
            out_c: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c = g.conv2d(x, w, "conv");
        let r = g.relu(c, "relu");
        let a = g.add_op(r, c, "residual");
        g.outputs.push(a);
        let fused = fuse(&g, true);
        // conv alone; relu+add may merge.
        let conv_group = fused.group_of[c.0];
        assert_eq!(fused.groups[conv_group].nodes.len(), 1);
    }

    #[test]
    fn opaque_stays_alone() {
        let mut g = Graph::new();
        let x = g.input(&[4, 32], "data");
        let d = g.dense(
            x,
            DenseWorkload {
                m: 4,
                n: 10,
                k: 32,
                dtype: tvm_ir::DType::float32(),
            },
            "fc",
        );
        let sm = {
            let shape = g.node(d).shape.clone();
            g.add(OpType::Softmax, vec![d], shape, "softmax")
        };
        g.outputs.push(sm);
        let fused = fuse(&g, true);
        assert_eq!(fused.groups.len(), 2);
    }

    #[test]
    fn injective_chain_fuses_together() {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 4, 4], "data");
        let b = g.batch_norm(x, "bn");
        let r = g.relu(b, "relu");
        let t = {
            let shape = g.node(r).shape.clone();
            g.add(OpType::Tanh, vec![r], shape, "tanh")
        };
        g.outputs.push(t);
        let fused = fuse(&g, true);
        assert_eq!(fused.groups.len(), 1);
        assert_eq!(fused.groups[0].nodes.len(), 3);
    }

    #[test]
    fn reduction_absorbs_injective_inputs() {
        // scale (injective) then global sum (reduction) — the paper's
        // "fuse scale and sum" example.
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 4, 4], "data");
        let bn = g.batch_norm(x, "scale");
        let shape = vec![1, 8];
        let pool = g.add(OpType::GlobalAvgPool, vec![bn], shape, "pool");
        g.outputs.push(pool);
        let fused = fuse(&g, true);
        assert_eq!(fused.groups.len(), 1);
        assert_eq!(g.node(fused.groups[0].master).op.name(), "global_avg_pool");
    }
}
