//! `tvm-graph` — the computational graph IR and high-level optimizations
//! (§3): operator fusion by pattern category, static memory planning with
//! buffer reuse, constant folding, and data-layout transformation.

pub mod fusion;
pub mod ir;
pub mod layout;
pub mod memplan;
pub mod verify;

pub use fusion::{fuse, FusedGraph, Group};
pub use ir::{Graph, Node, NodeId, OpType, Pattern};
pub use layout::{cpu_preference, transform_layouts};
pub use memplan::{constant_foldable, plan_memory, MemoryPlan};
pub use verify::{verify_build, verify_graph, GraphReport, KernelView};
