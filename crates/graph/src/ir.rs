//! The computational graph IR (Fig. 3): nodes are operations on tensors,
//! edges are data dependencies; attributes parameterize behavior.

use tvm_ir::DType;
use tvm_topi::{Conv2dWorkload, DenseWorkload, DepthwiseConv2dWorkload};

/// Node identifier (index into [`Graph::nodes`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Operator fusion categories (§3): the four classes whose generic fusion
/// rules replace combinatorial handcrafted fused kernels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pattern {
    /// One-to-one map (add, relu, bn, ...).
    Injective,
    /// Reduction (sum, pooling).
    Reduction,
    /// Complex but fusable with element-wise ops at its output (conv2d,
    /// dense).
    ComplexOutFusable,
    /// Cannot be fused (e.g. sort, softmax's multi-pass structure here).
    Opaque,
}

/// Graph operation types.
#[derive(Clone, Debug)]
pub enum OpType {
    /// External input.
    Input,
    /// Model parameter (weights/bias), known at deployment time.
    Param,
    /// 2-D convolution.
    Conv2d(Conv2dWorkload),
    /// Depthwise 2-D convolution.
    DepthwiseConv2d(DepthwiseConv2dWorkload),
    /// Fully connected layer.
    Dense(DenseWorkload),
    /// Transposed convolution (attrs: in_c, in_size, out_c, kernel, stride,
    /// out_pad).
    Conv2dTranspose {
        /// Input channels.
        in_c: i64,
        /// Input spatial size.
        in_size: i64,
        /// Output channels.
        out_c: i64,
        /// Kernel size.
        kernel: i64,
        /// Fractional stride.
        stride: i64,
        /// Output padding parameter.
        out_pad: i64,
    },
    /// Element-wise max(x, 0).
    Relu,
    /// Per-channel bias add.
    BiasAdd,
    /// Folded inference batch norm (scale, shift params).
    BatchNorm,
    /// Element-wise addition (residual connections).
    Add,
    /// Element-wise multiply.
    Multiply,
    /// Element-wise tanh.
    Tanh,
    /// Element-wise sigmoid.
    Sigmoid,
    /// Row softmax.
    Softmax,
    /// Max pooling (window, stride, pad).
    MaxPool2d {
        /// Window size.
        window: i64,
        /// Stride.
        stride: i64,
        /// Padding.
        pad: i64,
    },
    /// Global average pooling to `[n, c]`.
    GlobalAvgPool,
    /// `[n, c, h, w] -> [n, c*h*w]`.
    Flatten,
    /// Arbitrary same-size reshape (row-major reinterpretation).
    Reshape,
    /// Data-layout conversion inserted by the layout pass; attribute is the
    /// destination layout tag (e.g. `NCHW4c`).
    LayoutTransform {
        /// Destination layout tag.
        dst: String,
    },
}

impl OpType {
    /// The §3 fusion category of this operation.
    pub fn pattern(&self) -> Pattern {
        match self {
            OpType::Input | OpType::Param => Pattern::Injective,
            OpType::Conv2d(_)
            | OpType::DepthwiseConv2d(_)
            | OpType::Dense(_)
            | OpType::Conv2dTranspose { .. } => Pattern::ComplexOutFusable,
            OpType::MaxPool2d { .. } | OpType::GlobalAvgPool => Pattern::Reduction,
            OpType::Softmax => Pattern::Opaque,
            OpType::Relu
            | OpType::BiasAdd
            | OpType::BatchNorm
            | OpType::Add
            | OpType::Multiply
            | OpType::Tanh
            | OpType::Sigmoid
            | OpType::Flatten
            | OpType::Reshape
            | OpType::LayoutTransform { .. } => Pattern::Injective,
        }
    }

    /// Short mnemonic.
    pub fn name(&self) -> &'static str {
        match self {
            OpType::Input => "input",
            OpType::Param => "param",
            OpType::Conv2d(_) => "conv2d",
            OpType::DepthwiseConv2d(_) => "depthwise_conv2d",
            OpType::Dense(_) => "dense",
            OpType::Conv2dTranspose { .. } => "conv2d_transpose",
            OpType::Relu => "relu",
            OpType::BiasAdd => "bias_add",
            OpType::BatchNorm => "batch_norm",
            OpType::Add => "add",
            OpType::Multiply => "multiply",
            OpType::Tanh => "tanh",
            OpType::Sigmoid => "sigmoid",
            OpType::Softmax => "softmax",
            OpType::MaxPool2d { .. } => "max_pool2d",
            OpType::GlobalAvgPool => "global_avg_pool",
            OpType::Flatten => "flatten",
            OpType::Reshape => "reshape",
            OpType::LayoutTransform { .. } => "layout_transform",
        }
    }
}

/// One graph node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Identity.
    pub id: NodeId,
    /// Operation.
    pub op: OpType,
    /// Input edges.
    pub inputs: Vec<NodeId>,
    /// Display name.
    pub name: String,
    /// Inferred output shape.
    pub shape: Vec<i64>,
    /// Output element type.
    pub dtype: DType,
}

/// A computational graph.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// Nodes in topological order (construction order).
    pub nodes: Vec<Node>,
    /// Output node ids.
    pub outputs: Vec<NodeId>,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Node accessor. Panics on an out-of-range id; request-facing code
    /// (the runtime, the serving layer) should prefer [`Graph::get`].
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Checked node accessor: `None` for ids outside the graph (a stale or
    /// corrupt module reference), so callers can surface a typed error
    /// instead of panicking mid-request.
    pub fn get(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.0)
    }

    /// Adds a node with explicit shape.
    pub fn add(
        &mut self,
        op: OpType,
        inputs: Vec<NodeId>,
        shape: Vec<i64>,
        name: impl Into<String>,
    ) -> NodeId {
        self.add_typed(op, inputs, shape, DType::float32(), name)
    }

    /// Adds a node with explicit shape and dtype.
    pub fn add_typed(
        &mut self,
        op: OpType,
        inputs: Vec<NodeId>,
        shape: Vec<i64>,
        dtype: DType,
        name: impl Into<String>,
    ) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            op,
            inputs,
            name: name.into(),
            shape,
            dtype,
        });
        id
    }

    /// Declares an external input.
    pub fn input(&mut self, shape: &[i64], name: impl Into<String>) -> NodeId {
        self.add(OpType::Input, vec![], shape.to_vec(), name)
    }

    /// Declares a parameter tensor.
    pub fn param(&mut self, shape: &[i64], name: impl Into<String>) -> NodeId {
        self.add(OpType::Param, vec![], shape.to_vec(), name)
    }

    /// Convolution followed by nothing; weight param created implicitly.
    pub fn conv2d(&mut self, x: NodeId, w: Conv2dWorkload, name: &str) -> NodeId {
        let wt = self.param(&[w.out_c, w.in_c, w.kernel, w.kernel], format!("{name}_w"));
        let o = w.out_size();
        self.add(
            OpType::Conv2d(w),
            vec![x, wt],
            vec![w.batch, w.out_c, o, o],
            name,
        )
    }

    /// Depthwise convolution.
    pub fn depthwise_conv2d(
        &mut self,
        x: NodeId,
        w: DepthwiseConv2dWorkload,
        name: &str,
    ) -> NodeId {
        let wt = self.param(&[w.channels, w.kernel, w.kernel], format!("{name}_w"));
        let o = w.out_size();
        self.add(
            OpType::DepthwiseConv2d(w),
            vec![x, wt],
            vec![w.batch, w.channels, o, o],
            name,
        )
    }

    /// Dense layer.
    pub fn dense(&mut self, x: NodeId, w: DenseWorkload, name: &str) -> NodeId {
        let wt = self.param(&[w.n, w.k], format!("{name}_w"));
        self.add(OpType::Dense(w), vec![x, wt], vec![w.m, w.n], name)
    }

    /// Batch norm with implicit scale/shift params.
    pub fn batch_norm(&mut self, x: NodeId, name: &str) -> NodeId {
        let c = self.node(x).shape[1];
        let sc = self.param(&[c], format!("{name}_scale"));
        let sh = self.param(&[c], format!("{name}_shift"));
        let shape = self.node(x).shape.clone();
        self.add(OpType::BatchNorm, vec![x, sc, sh], shape, name)
    }

    /// ReLU.
    pub fn relu(&mut self, x: NodeId, name: &str) -> NodeId {
        let shape = self.node(x).shape.clone();
        self.add(OpType::Relu, vec![x], shape, name)
    }

    /// Element-wise add.
    pub fn add_op(&mut self, a: NodeId, b: NodeId, name: &str) -> NodeId {
        let shape = self.node(a).shape.clone();
        self.add(OpType::Add, vec![a, b], shape, name)
    }

    /// Consumers of each node.
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for n in &self.nodes {
            for &i in &n.inputs {
                out[i.0].push(n.id);
            }
        }
        out
    }

    /// Total floating-point work of the graph.
    pub fn total_flops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                OpType::Conv2d(w) => w.flops(),
                OpType::DepthwiseConv2d(w) => w.flops(),
                OpType::Dense(w) => w.flops(),
                _ => n.shape.iter().product::<i64>() as f64,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_paper_categories() {
        assert_eq!(OpType::Relu.pattern(), Pattern::Injective);
        assert_eq!(OpType::GlobalAvgPool.pattern(), Pattern::Reduction);
        let w = tvm_topi::resnet18_convs()[1];
        assert_eq!(OpType::Conv2d(w).pattern(), Pattern::ComplexOutFusable);
        assert_eq!(OpType::Softmax.pattern(), Pattern::Opaque);
    }

    #[test]
    fn builder_wires_edges_and_shapes() {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 8, 8], "data");
        let w = Conv2dWorkload {
            batch: 1,
            size: 8,
            in_c: 3,
            out_c: 16,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c = g.conv2d(x, w, "conv1");
        let r = g.relu(c, "relu1");
        g.outputs.push(r);
        assert_eq!(g.node(c).shape, vec![1, 16, 8, 8]);
        assert_eq!(g.node(r).inputs, vec![c]);
        let cons = g.consumers();
        assert_eq!(cons[c.0], vec![r]);
    }
}
