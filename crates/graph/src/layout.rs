//! Data-layout transformation pass (§3).
//!
//! Each operator states its preferred layout under the target's memory
//! hierarchy constraints (e.g. an accelerator wanting 4x4-tiled operands);
//! the pass inserts `LayoutTransform` nodes between producers and
//! consumers whose preferences differ — and only there, so matching
//! neighbors pay nothing.

use crate::ir::{Graph, NodeId, OpType};

/// A layout preference function: node -> layout tag.
pub type PreferenceFn<'a> = dyn Fn(&Graph, NodeId) -> String + 'a;

/// Preference model for a CPU-style target: convolutions want
/// channel-blocked `NCHWc` when channels divide the vector width; everyone
/// else is happy with plain `NCHW`.
pub fn cpu_preference(block: i64) -> impl Fn(&Graph, NodeId) -> String {
    move |g: &Graph, id: NodeId| {
        let node = g.node(id);
        match &node.op {
            OpType::Conv2d(w) if w.in_c % block == 0 && w.out_c % block == 0 => {
                format!("NCHW{block}c")
            }
            _ => "NCHW".to_string(),
        }
    }
}

/// Runs the pass: inserts transforms where producer and consumer layouts
/// disagree. Returns the rewritten graph and the number of transforms
/// inserted.
pub fn transform_layouts(g: &Graph, prefer: &PreferenceFn) -> (Graph, usize) {
    let mut out = Graph::new();
    // Map old ids -> (new id, layout tag of its output).
    let mut mapped: Vec<Option<(NodeId, String)>> = vec![None; g.nodes.len()];
    let mut inserted = 0usize;
    for node in &g.nodes {
        let want = prefer(g, node.id);
        let mut new_inputs = Vec::with_capacity(node.inputs.len());
        for &inp in &node.inputs {
            let (nid, have) = mapped[inp.0].clone().expect("topological order");
            // Params adapt for free at deployment time (pre-packed).
            let is_param = matches!(g.node(inp).op, OpType::Param);
            if have != want && !is_param && !matches!(node.op, OpType::Flatten) {
                let shape = g.node(inp).shape.clone();
                let t = out.add(
                    OpType::LayoutTransform { dst: want.clone() },
                    vec![nid],
                    shape,
                    format!("{}_to_{}", g.node(inp).name, want),
                );
                inserted += 1;
                new_inputs.push(t);
            } else {
                new_inputs.push(nid);
            }
        }
        let nid = out.add_typed(
            node.op.clone(),
            new_inputs,
            node.shape.clone(),
            node.dtype,
            node.name.clone(),
        );
        mapped[node.id.0] = Some((nid, want));
    }
    for o in &g.outputs {
        let (nid, _) = mapped[o.0].clone().expect("output mapped");
        out.outputs.push(nid);
    }
    (out, inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_topi::Conv2dWorkload;

    fn mixed_graph() -> Graph {
        let mut g = Graph::new();
        let x = g.input(&[1, 3, 16, 16], "data");
        // First conv: 3 input channels (not blockable) -> NCHW.
        let w1 = Conv2dWorkload {
            batch: 1,
            size: 16,
            in_c: 3,
            out_c: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c1 = g.conv2d(x, w1, "c1");
        // Second conv: 8 -> 8 channels, blockable -> NCHW4c.
        let w2 = Conv2dWorkload {
            batch: 1,
            size: 16,
            in_c: 8,
            out_c: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let c2 = g.conv2d(c1, w2, "c2");
        // Third conv, same pref as c2: no transform between them.
        let c3 = g.conv2d(c2, w2, "c3");
        let r = g.relu(c3, "r");
        g.outputs.push(r);
        g
    }

    #[test]
    fn transforms_only_at_mismatches() {
        let g = mixed_graph();
        let pref = cpu_preference(4);
        let (out, inserted) = transform_layouts(&g, &pref);
        // One transform entering c2 (NCHW -> NCHW4c) and one entering relu
        // (back to NCHW); none between c2 and c3.
        assert_eq!(
            inserted,
            2,
            "{:#?}",
            out.nodes.iter().map(|n| n.name.clone()).collect::<Vec<_>>()
        );
        assert!(out
            .nodes
            .iter()
            .any(|n| matches!(&n.op, OpType::LayoutTransform { dst } if dst == "NCHW4c")));
    }

    #[test]
    fn uniform_preferences_insert_nothing() {
        let g = mixed_graph();
        let pref = |_: &Graph, _: NodeId| "NCHW".to_string();
        let (_, inserted) = transform_layouts(&g, &pref);
        assert_eq!(inserted, 0);
    }

    #[test]
    fn rewrite_preserves_structure() {
        let g = mixed_graph();
        let pref = cpu_preference(4);
        let (out, ins) = transform_layouts(&g, &pref);
        assert_eq!(out.nodes.len(), g.nodes.len() + ins);
        assert_eq!(out.outputs.len(), 1);
        // Output shape preserved.
        let o = out.node(out.outputs[0]);
        assert_eq!(o.shape, vec![1, 8, 16, 16]);
    }
}
