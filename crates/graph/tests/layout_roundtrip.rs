//! Layout-pass integration coverage: a `transform_layouts` rewrite must
//! be invisible to everything downstream — every inserted transform
//! preserves element count and dtype, and the rewritten graph flows
//! through fusion + memory planning to a verifier-clean build.

use tvm_graph::{
    cpu_preference, fuse, plan_memory, transform_layouts, verify_graph, Graph, OpType,
};
use tvm_topi::Conv2dWorkload;

fn conv_stack() -> Graph {
    let mut g = Graph::new();
    let x = g.input(&[1, 3, 16, 16], "data");
    let w1 = Conv2dWorkload {
        batch: 1,
        size: 16,
        in_c: 3,
        out_c: 8,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let c1 = g.conv2d(x, w1, "c1");
    let w2 = Conv2dWorkload {
        batch: 1,
        size: 16,
        in_c: 8,
        out_c: 8,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let c2 = g.conv2d(c1, w2, "c2");
    let c3 = g.conv2d(c2, w2, "c3");
    let r = g.relu(c3, "r");
    g.outputs.push(r);
    g
}

/// Each inserted `LayoutTransform` reinterprets its producer's tensor:
/// same total element count, same dtype, no silent widening or slicing.
#[test]
fn transforms_preserve_element_count_and_dtype() {
    let g = conv_stack();
    let (out, inserted) = transform_layouts(&g, &cpu_preference(4));
    assert!(inserted > 0, "preference model must force transforms");
    let mut seen = 0;
    for node in &out.nodes {
        if !matches!(node.op, OpType::LayoutTransform { .. }) {
            continue;
        }
        seen += 1;
        assert_eq!(node.inputs.len(), 1, "`{}` must be unary", node.name);
        let src = out.node(node.inputs[0]);
        assert_eq!(
            src.shape.iter().product::<i64>(),
            node.shape.iter().product::<i64>(),
            "`{}` changes element count",
            node.name
        );
        assert_eq!(src.dtype, node.dtype, "`{}` changes dtype", node.name);
    }
    assert_eq!(seen, inserted, "insertion count disagrees with the graph");
}

/// The rewritten graph round-trips through fusion and memory planning to
/// a verifier-clean result, fusion on and off: the layout pass introduces
/// no liveness, slot, or legality violations.
#[test]
fn rewritten_graph_verifies_clean() {
    let g = conv_stack();
    let (out, inserted) = transform_layouts(&g, &cpu_preference(4));
    assert!(inserted > 0);
    for enabled in [true, false] {
        let fused = fuse(&out, enabled);
        let plan = plan_memory(&out, &fused);
        let report = verify_graph(&out, &fused, &plan);
        assert!(
            !report.has_errors(),
            "fusion={enabled}:\n{}",
            report.render()
        );
        assert!(report.groups_checked > 0);
    }
}

/// An identity rewrite (uniform preferences) is a structural no-op that
/// still verifies clean — the pass itself never perturbs the graph.
#[test]
fn identity_rewrite_verifies_clean() {
    let g = conv_stack();
    let (out, inserted) = transform_layouts(&g, &|_: &Graph, _| "NCHW".to_string());
    assert_eq!(inserted, 0);
    assert_eq!(out.nodes.len(), g.nodes.len());
    let fused = fuse(&out, true);
    let plan = plan_memory(&out, &fused);
    let report = verify_graph(&out, &fused, &plan);
    assert!(!report.has_errors(), "{}", report.render());
}
