//! Golden-file tests for the graph-layer verifiers, mirroring the
//! loop-IR suite in `tvm-analysis/tests/known_bad.rs`: known-bad
//! `(graph, fusion, plan)` triples whose diagnostics are pinned, plus the
//! invariant that renders are stable across runs (diagnostics name nodes
//! and slots by display name and index, never by internal id).
//!
//! Regenerate after an intentional diagnostic change with
//!
//! ```text
//! TVM_REGEN_GOLDEN=1 cargo test -p tvm-graph --test known_bad
//! ```
//!
//! and review the `.expected` diff like any other code change.

use std::path::Path;

use tvm_graph::verify::{check_fusion, check_memplan, check_slot_contracts, KernelView};
use tvm_graph::{fuse, plan_memory, Graph};
use tvm_ir::{DType, Expr, LoweredFunc, Stmt, Var};
use tvm_topi::Conv2dWorkload;

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("TVM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun with TVM_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "\ndiagnostics for `{name}` changed; if intentional, regenerate with \
         TVM_REGEN_GOLDEN=1 and review the diff"
    );
}

fn conv_chain(n: usize) -> Graph {
    let mut g = Graph::new();
    let mut x = g.input(&[1, 8, 8, 8], "data");
    for i in 0..n {
        let w = Conv2dWorkload {
            batch: 1,
            size: 8,
            in_c: 8,
            out_c: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        x = g.conv2d(x, w, &format!("conv{i}"));
        x = g.relu(x, &format!("relu{i}"));
    }
    g.outputs.push(x);
    g
}

/// Every materialized tensor forced into slot 0: live ranges overlap and
/// each collision is refuted with the exact op index.
#[test]
fn overlapping_liveness_is_refuted() {
    let g = conv_chain(3);
    let fused = fuse(&g, true);
    let mut plan = plan_memory(&g, &fused);
    for s in plan.storage_of.iter_mut().filter(|s| **s != usize::MAX) {
        *s = 0;
    }
    let report = check_memplan(&g, &fused, &plan);
    assert!(report.has_errors());
    assert!(report
        .errors()
        .all(|d| d.message.contains("aliases two live tensors")));
    assert!(report
        .errors()
        .all(|d| d.witness.as_deref().unwrap_or("").starts_with("at op ")));
    check_golden("overlapping_liveness.expected", &report.render());
}

/// A fused group whose intermediate is read by an op outside the group:
/// the intermediate would never materialize, so the fusion is illegal.
#[test]
fn external_consumer_of_intermediate_is_flagged() {
    let mut g = Graph::new();
    let x = g.input(&[1, 4, 4, 4], "data");
    let w = Conv2dWorkload {
        batch: 1,
        size: 4,
        in_c: 4,
        out_c: 4,
        kernel: 3,
        stride: 1,
        pad: 1,
    };
    let c = g.conv2d(x, w, "conv");
    let r = g.relu(c, "relu");
    let t = g.relu(c, "tap");
    g.outputs.push(r);
    g.outputs.push(t);
    let mut fused = fuse(&g, true);
    // The rule-following optimizer keeps `conv` alone because of the
    // second consumer; splice `relu` into its group to build the
    // known-bad grouping the checker must reject.
    let cg = fused.group_of[c.0];
    let rg = fused.group_of[r.0];
    assert_ne!(cg, rg);
    let relu_group = fused.groups.remove(rg);
    fused.groups[cg].nodes.extend(relu_group.nodes.clone());
    fused.groups[cg].output = relu_group.output;
    for &m in &relu_group.nodes {
        fused.group_of[m.0] = cg;
    }
    for gi in fused.group_of.iter_mut() {
        if *gi != usize::MAX && *gi > rg {
            *gi -= 1;
        }
    }
    let report = check_fusion(&g, &fused);
    assert!(report.has_errors());
    assert!(report
        .errors()
        .any(|d| d.message.contains("outside the group")));
    check_golden("external_consumer.expected", &report.render());
}

/// A plan whose shared slot is smaller than its occupants need, caught
/// twice: by the plan-level byte check and — cross-layer — by the bounds
/// machinery refuting the kernel's touch set with a loop-index witness.
#[test]
fn undersized_slot_is_refuted() {
    let mut g = Graph::new();
    let x = g.input(&[16], "data");
    let r = g.relu(x, "relu");
    g.outputs.push(r);
    let fused = fuse(&g, true);
    let mut plan = plan_memory(&g, &fused);
    let slot = plan.storage_of[r.0];
    plan.slot_sizes[slot] = 32; // room for 8 of the 16 f32 elements

    let a = Var::new("data", DType::float32());
    let out = Var::new("out", DType::float32());
    let i = Var::int("i");
    let body = Stmt::for_(
        &i,
        0,
        16,
        Stmt::store(&out, i.to_expr(), Expr::load(&a, i.to_expr())),
    );
    let func = LoweredFunc {
        name: "relu_kernel".into(),
        params: vec![a, out],
        param_dtypes: vec![DType::float32(), DType::float32()],
        param_extents: vec![16, 16],
        body,
    };
    let args = [x, r];
    let kernels = [KernelView {
        name: "relu_kernel",
        func: &func,
        args: &args,
    }];

    let report = check_memplan(&g, &fused, &plan);
    assert!(report
        .errors()
        .any(|d| d.message.contains("bytes but occupant")));
    let contracts = check_slot_contracts(&g, &plan, &kernels);
    assert!(contracts.contracts_refuted > 0);
    assert!(contracts.errors().any(|d| d.witness.is_some()));
    check_golden(
        "undersized_slot.expected",
        &format!("{}{}", report.render(), contracts.render()),
    );
}

/// A slot whose base alignment is too small for its occupant's dtype.
#[test]
fn misaligned_slot_is_refuted() {
    let g = conv_chain(1);
    let fused = fuse(&g, true);
    let mut plan = plan_memory(&g, &fused);
    plan.slot_aligns[0] = 1; // f32 occupant needs 4
    let report = check_memplan(&g, &fused, &plan);
    assert!(report
        .errors()
        .any(|d| d.message.contains("requires 4-byte alignment")));
    check_golden("misaligned_slot.expected", &report.render());
}

/// Renders are deterministic: two runs over the same known-bad triple
/// produce byte-identical output (the golden files depend on it).
#[test]
fn renders_are_stable_across_runs() {
    let build = || {
        let g = conv_chain(3);
        let fused = fuse(&g, true);
        let mut plan = plan_memory(&g, &fused);
        for s in plan.storage_of.iter_mut().filter(|s| **s != usize::MAX) {
            *s = 0;
        }
        check_memplan(&g, &fused, &plan).render()
    };
    assert_eq!(build(), build());
}
