//! Property tests on the graph passes: fusion partitions the graph, and
//! the memory planner never aliases two live tensors.

use proptest::prelude::*;

use tvm_graph::{fuse, plan_memory, Graph, OpType};
use tvm_topi::Conv2dWorkload;

/// Builds a random chain/diamond graph from a small op alphabet.
fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u8..5, any::<bool>()), 1..14).prop_map(|ops| {
        let mut g = Graph::new();
        let x = g.input(&[1, 8, 8, 8], "data");
        let mut cur = x;
        let mut older: Vec<_> = vec![];
        for (i, (op, take_old)) in ops.into_iter().enumerate() {
            let prev = cur;
            cur = match op {
                0 => {
                    let w = Conv2dWorkload {
                        batch: 1,
                        size: 8,
                        in_c: 8,
                        out_c: 8,
                        kernel: 3,
                        stride: 1,
                        pad: 1,
                    };
                    g.conv2d(cur, w, &format!("conv{i}"))
                }
                1 => g.relu(cur, &format!("relu{i}")),
                2 => g.batch_norm(cur, &format!("bn{i}")),
                3 => {
                    // Residual add against an older tensor when available.
                    let other = if take_old && !older.is_empty() {
                        older[i % older.len()]
                    } else {
                        cur
                    };
                    if other == cur {
                        g.relu(cur, &format!("relu{i}"))
                    } else {
                        g.add_op(cur, other, &format!("add{i}"))
                    }
                }
                _ => {
                    let shape = g.node(cur).shape.clone();
                    g.add(OpType::Tanh, vec![cur], shape, format!("tanh{i}"))
                }
            };
            older.push(prev);
        }
        g.outputs.push(cur);
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fusion assigns every compute node to exactly one group, groups are
    /// topologically contiguous, and each group has one output.
    #[test]
    fn fusion_partitions_the_graph(g in arb_graph(), enabled in any::<bool>()) {
        let fused = fuse(&g, enabled);
        let mut seen = vec![false; g.nodes.len()];
        for (gi, grp) in fused.groups.iter().enumerate() {
            prop_assert!(!grp.nodes.is_empty());
            prop_assert!(grp.nodes.contains(&grp.master));
            prop_assert!(grp.nodes.contains(&grp.output));
            for &n in &grp.nodes {
                prop_assert!(!seen[n.0], "node in two groups");
                seen[n.0] = true;
                prop_assert_eq!(fused.group_of[n.0], gi);
            }
        }
        for node in &g.nodes {
            let is_compute = !matches!(node.op, OpType::Input | OpType::Param);
            prop_assert_eq!(seen[node.id.0], is_compute);
        }
    }

    /// The memory plan never lets two simultaneously-live group outputs
    /// share a storage slot, and every slot is large enough.
    #[test]
    fn memory_plan_is_alias_free(g in arb_graph()) {
        let fused = fuse(&g, true);
        let plan = plan_memory(&g, &fused);
        let consumers = g.consumers();
        let n_groups = fused.groups.len();
        // Live range per group output.
        let live_end: Vec<usize> = fused
            .groups
            .iter()
            .map(|grp| {
                let mut last = fused.group_of[grp.output.0];
                for &c in &consumers[grp.output.0] {
                    if fused.group_of[c.0] != usize::MAX {
                        last = last.max(fused.group_of[c.0]);
                    }
                }
                if g.outputs.contains(&grp.output) {
                    last = n_groups;
                }
                last
            })
            .collect();
        for (i, gi) in fused.groups.iter().enumerate() {
            let si = plan.storage_of[gi.output.0];
            prop_assert_ne!(si, usize::MAX);
            let node = g.node(gi.output);
            let size = node.shape.iter().product::<i64>() as usize * node.dtype.bytes();
            prop_assert!(plan.slot_sizes[si] >= size);
            for (j, gj) in fused.groups.iter().enumerate().skip(i + 1) {
                let sj = plan.storage_of[gj.output.0];
                if si == sj {
                    // Overlapping live ranges must not share a slot; group j
                    // starts at index j, so i's value must be dead by then.
                    prop_assert!(
                        live_end[i] < j,
                        "slot {si} shared while group {i} is live until {} (j = {j})",
                        live_end[i]
                    );
                }
            }
        }
    }
}
