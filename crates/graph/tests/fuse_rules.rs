//! Integration tests for the §3 fusion rule table. Each of the paper's
//! four operator classes has a positive rule (what it may fuse with) and a
//! set of negative rules (what must stay separate); this file walks the
//! whole table and checks the structural invariants of every result.

use tvm_graph::{fuse, FusedGraph, Graph, NodeId, OpType, Pattern};
use tvm_topi::{Conv2dWorkload, DenseWorkload};

fn conv_w(size: i64, ch: i64) -> Conv2dWorkload {
    Conv2dWorkload {
        batch: 1,
        size,
        in_c: ch,
        out_c: ch,
        kernel: 3,
        stride: 1,
        pad: 1,
    }
}

/// Every compute node is in exactly one group; params are in none; each
/// group is non-empty, its output and master are members, and `group_of`
/// agrees with the membership lists.
fn check_invariants(g: &Graph, fused: &FusedGraph) {
    let mut seen = vec![0usize; g.nodes.len()];
    for (gi, grp) in fused.groups.iter().enumerate() {
        assert!(!grp.nodes.is_empty(), "group {gi} is empty");
        assert!(
            grp.nodes.contains(&grp.output),
            "group {gi}: output not a member"
        );
        assert!(
            grp.nodes.contains(&grp.master),
            "group {gi}: master not a member"
        );
        for &n in &grp.nodes {
            seen[n.0] += 1;
            assert_eq!(
                fused.group_of[n.0], gi,
                "group_of disagrees for node {}",
                n.0
            );
        }
    }
    for node in &g.nodes {
        let expect = if matches!(node.op, OpType::Input | OpType::Param) {
            0
        } else {
            1
        };
        assert_eq!(
            seen[node.id.0], expect,
            "node {} appears in {} groups",
            node.id.0, seen[node.id.0]
        );
        if expect == 0 {
            assert_eq!(fused.group_of[node.id.0], usize::MAX);
        }
    }
}

fn group_of(fused: &FusedGraph, n: NodeId) -> &tvm_graph::Group {
    &fused.groups[fused.group_of[n.0]]
}

#[test]
fn injective_chain_collapses_to_one_group() {
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 6, 6], "data");
    let bn = g.batch_norm(x, "bn");
    let r = g.relu(bn, "relu");
    let shape = g.node(r).shape.clone();
    let t = g.add(OpType::Tanh, vec![r], shape, "tanh");
    g.outputs.push(t);
    let fused = fuse(&g, true);
    check_invariants(&g, &fused);
    assert_eq!(fused.groups.len(), 1);
    assert_eq!(fused.groups[0].nodes.len(), 3);
    // All-injective group: the master stays injective and the output is
    // the chain's tail.
    assert_eq!(g.node(fused.groups[0].output).op.name(), "tanh");
    assert_eq!(
        g.node(fused.groups[0].master).op.pattern(),
        Pattern::Injective
    );
}

#[test]
fn complex_out_fusable_absorbs_elementwise_suffix() {
    // conv2d -> bn -> relu: the paper's canonical conv+bn+relu kernel.
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 6, 6], "data");
    let c = g.conv2d(x, conv_w(6, 8), "conv");
    let bn = g.batch_norm(c, "bn");
    let r = g.relu(bn, "relu");
    g.outputs.push(r);
    let fused = fuse(&g, true);
    check_invariants(&g, &fused);
    assert_eq!(fused.groups.len(), 1);
    let grp = &fused.groups[0];
    assert_eq!(
        g.node(grp.master).op.name(),
        "conv2d",
        "conv drives the fused kernel"
    );
    assert_eq!(g.node(grp.output).op.name(), "relu");
}

#[test]
fn reduction_absorbs_injective_producer_and_becomes_master() {
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 6, 6], "data");
    let scale = g.batch_norm(x, "scale");
    let pool = g.add(OpType::GlobalAvgPool, vec![scale], vec![1, 8], "pool");
    g.outputs.push(pool);
    let fused = fuse(&g, true);
    check_invariants(&g, &fused);
    assert_eq!(fused.groups.len(), 1);
    assert_eq!(
        g.node(fused.groups[0].master).op.pattern(),
        Pattern::Reduction
    );
}

#[test]
fn reduction_does_not_absorb_a_conv_producer() {
    // The reduction rule only absorbs *injective-master* producer groups;
    // a conv group keeps its own kernel.
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 6, 6], "data");
    let c = g.conv2d(x, conv_w(6, 8), "conv");
    let pool = g.add(OpType::GlobalAvgPool, vec![c], vec![1, 8], "pool");
    g.outputs.push(pool);
    let fused = fuse(&g, true);
    check_invariants(&g, &fused);
    assert_eq!(fused.groups.len(), 2);
    assert_ne!(fused.group_of[c.0], fused.group_of[pool.0]);
}

#[test]
fn opaque_never_fuses_either_direction() {
    // dense -> softmax -> relu: softmax (opaque) must not join dense's
    // group, and relu must not join softmax's.
    let mut g = Graph::new();
    let x = g.input(&[4, 32], "data");
    let d = g.dense(
        x,
        DenseWorkload {
            m: 4,
            n: 10,
            k: 32,
            dtype: tvm_ir::DType::float32(),
        },
        "fc",
    );
    let shape = g.node(d).shape.clone();
    let sm = g.add(OpType::Softmax, vec![d], shape.clone(), "softmax");
    let r = g.relu(sm, "relu");
    g.outputs.push(r);
    let fused = fuse(&g, true);
    check_invariants(&g, &fused);
    assert!(
        group_of(&fused, sm).is_single(),
        "softmax fused: {:?}",
        group_of(&fused, sm)
    );
    assert_ne!(fused.group_of[d.0], fused.group_of[sm.0]);
    assert_ne!(fused.group_of[sm.0], fused.group_of[r.0]);
}

#[test]
fn multi_consumer_producer_must_materialize() {
    // Diamond: conv feeds both relu and the residual add. The conv result
    // is needed twice, so conv stays alone; the diamond's arms may still
    // fuse with each other downstream.
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 6, 6], "data");
    let c = g.conv2d(x, conv_w(6, 8), "conv");
    let r = g.relu(c, "relu");
    let a = g.add_op(r, c, "residual");
    g.outputs.push(a);
    let fused = fuse(&g, true);
    check_invariants(&g, &fused);
    assert!(
        group_of(&fused, c).is_single(),
        "multi-consumer conv absorbed a consumer"
    );
    // relu has a single consumer (the add), so those two may share a group.
    assert_eq!(fused.group_of[r.0], fused.group_of[a.0]);
}

#[test]
fn fusion_disabled_is_the_identity_grouping() {
    let mut g = Graph::new();
    let x = g.input(&[1, 8, 6, 6], "data");
    let c = g.conv2d(x, conv_w(6, 8), "conv");
    let bn = g.batch_norm(c, "bn");
    let r = g.relu(bn, "relu");
    let pool = g.add(OpType::GlobalAvgPool, vec![r], vec![1, 8], "pool");
    g.outputs.push(pool);
    let fused = fuse(&g, false);
    check_invariants(&g, &fused);
    // One singleton group per compute node, in topological order, each its
    // own master and output.
    let compute: Vec<NodeId> = g
        .nodes
        .iter()
        .filter(|n| !matches!(n.op, OpType::Input | OpType::Param))
        .map(|n| n.id)
        .collect();
    assert_eq!(fused.groups.len(), compute.len());
    for (grp, id) in fused.groups.iter().zip(&compute) {
        assert!(grp.is_single());
        assert_eq!(grp.nodes[0], *id);
        assert_eq!(grp.master, *id);
        assert_eq!(grp.output, *id);
    }
}
