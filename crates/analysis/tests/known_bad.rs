//! Golden-file tests: three known-bad programs whose diagnostics are
//! pinned, plus the invariant that their renders are stable across runs
//! (diagnostics name variables by display name, never by id).
//!
//! Regenerate after an intentional diagnostic change with
//!
//! ```text
//! TVM_REGEN_GOLDEN=1 cargo test -p tvm-analysis --test known_bad
//! ```
//!
//! and review the `.expected` diff like any other code change.

use std::path::Path;

use tvm_analysis::{analyze_stmt, AnalysisOptions};
use tvm_ir::{DType, Expr, ForKind, MemScope, Stmt, StmtNode, ThreadTag, Var};

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("TVM_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun with TVM_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual.trim_end(),
        expected.trim_end(),
        "\ndiagnostics for `{name}` changed; if intentional, regenerate with \
         TVM_REGEN_GOLDEN=1 and review the diff"
    );
}

/// `for i in 0..16: A[i+1] = 0` with `|A| = 16` — classic off-by-one.
#[test]
fn oob_store_is_refuted() {
    let a = Var::new("A", DType::float32());
    let i = Var::int("i");
    let body = Stmt::for_(&i, 0, 16, Stmt::store(&a, i.to_expr() + 1, Expr::f32(0.0)));
    let report = analyze_stmt(&body, &[a], &[16], &AnalysisOptions::all());
    assert!(report.has_errors());
    assert_eq!(report.bounds_refuted, 1);
    check_golden("oob_store.expected", &report.render());
}

/// A cooperative shared-memory fill read back without a barrier: every
/// thread writes `S[tx]` then reads its neighbor's slot. Both the race
/// pass (cross-iteration read/write overlap) and the sync pass (fill not
/// published) must flag it.
#[test]
fn unsynced_shared_race_is_flagged() {
    let s = Var::new("S", DType::float32());
    let a = Var::new("A", DType::float32());
    let o = Var::new("O", DType::float32());
    let tx = Var::int("tx");
    let body = Stmt::allocate(
        &s,
        DType::float32(),
        4,
        MemScope::Shared,
        Stmt::loop_(
            &tx,
            0,
            4,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            Stmt::seq(vec![
                Stmt::store(&s, tx.to_expr(), Expr::load(&a, tx.to_expr())),
                Stmt::store(&o, tx.to_expr(), Expr::load(&s, (tx.clone() + 1) % 4)),
            ]),
        ),
    );
    let report = analyze_stmt(&body, &[a, o], &[4, 4], &AnalysisOptions::all());
    assert!(report.has_errors());
    let passes: Vec<&str> = report.errors().map(|d| d.pass).collect();
    assert!(passes.contains(&"race"), "{passes:?}");
    assert!(passes.contains(&"sync"), "{passes:?}");
    check_golden("unsynced_shared_race.expected", &report.render());
}

/// A store indexed by a variable no enclosing construct binds.
#[test]
fn use_before_def_is_flagged() {
    let out = Var::new("out", DType::float32());
    let i = Var::int("i");
    let j = Var::int("j");
    let body = Stmt::for_(&i, 0, 4, Stmt::store(&out, j.to_expr(), Expr::f32(1.0)));
    let report = analyze_stmt(&body, &[out], &[4], &AnalysisOptions::all());
    assert!(report.has_errors());
    assert!(report.errors().any(|d| d.pass == "ssa"));
    check_golden("use_before_def.expected", &report.render());
}

/// A barrier that only half the threads reach.
#[test]
fn divergent_barrier_is_flagged() {
    let tx = Var::int("tx");
    let body = Stmt::loop_(
        &tx,
        0,
        4,
        ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
        Stmt::if_then(tx.to_expr().lt(Expr::int(2)), Stmt::new(StmtNode::Barrier)),
    );
    let report = analyze_stmt(&body, &[], &[], &AnalysisOptions::all());
    assert!(report.has_errors());
    assert!(report.errors().any(|d| d.pass == "sync"));
    check_golden("divergent_barrier.expected", &report.render());
}
