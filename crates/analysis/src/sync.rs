//! Pass 4: memory-scope / synchronization legality.
//!
//! Two rules over thread-bound regions:
//!
//! 1. **No barrier under divergent control flow.** A `Barrier` must be
//!    reached by every thread of the block or the program deadlocks on
//!    real hardware. Any `IfThenElse` whose condition mentions a
//!    non-block thread variable (with extent ≥ 2) is divergent, and a
//!    barrier nested under it is an error. Loops whose bounds mention a
//!    thread variable divergently are treated the same way.
//! 2. **Cooperative fills publish via a barrier.** A store to a `shared`
//!    buffer whose index depends on a thread variable distributes the
//!    fill across threads; until a barrier executes, another thread's
//!    slots are not visible, so a subsequent load from that buffer is an
//!    error. Loop bodies are walked twice so a fill at the bottom of an
//!    iteration is seen by a load at the top of the next one (the
//!    wrap-around case); a barrier at either edge clears the dirt.
//!
//! Stores with a thread-invariant index are redundant identical writes
//! under the lockstep model (every thread fills the whole buffer), which
//! need no barrier to publish.

use std::collections::{HashMap, HashSet};

use tvm_ir::{collect_vars, Expr, ExprNode, ForKind, MemScope, Stmt, StmtNode, Var, VarId};

use crate::{Diagnostic, Severity};

/// Checks barrier placement and shared-memory publication in `body`.
pub fn check(body: &Stmt, params: &[Var]) -> Vec<Diagnostic> {
    let mut scopes: HashMap<VarId, (MemScope, String)> = params
        .iter()
        .map(|p| (p.id(), (MemScope::Global, p.name().to_string())))
        .collect();
    collect_scopes(body, &mut scopes);
    let mut ck = Check {
        scopes,
        thread_vars: HashSet::new(),
        divergent: 0,
        dirty: HashSet::new(),
        reported_dirty: HashSet::new(),
        reported_divergent_barrier: false,
        diags: Vec::new(),
    };
    ck.stmt(body);
    ck.diags
}

fn collect_scopes(s: &Stmt, out: &mut HashMap<VarId, (MemScope, String)>) {
    match &*s.0 {
        StmtNode::Allocate {
            buffer,
            scope,
            body,
            ..
        } => {
            out.insert(buffer.id(), (*scope, buffer.name().to_string()));
            collect_scopes(body, out);
        }
        StmtNode::LetStmt { body, .. }
        | StmtNode::AttrStmt { body, .. }
        | StmtNode::For { body, .. } => collect_scopes(body, out),
        StmtNode::Seq(items) => {
            for item in items {
                collect_scopes(item, out);
            }
        }
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => {
            collect_scopes(then_case, out);
            if let Some(e) = else_case {
                collect_scopes(e, out);
            }
        }
        _ => {}
    }
}

struct Check {
    scopes: HashMap<VarId, (MemScope, String)>,
    /// Non-block thread-bound loop variables currently in scope.
    thread_vars: HashSet<VarId>,
    /// Depth of enclosing thread-divergent control flow.
    divergent: usize,
    /// Shared buffers with a cooperative (thread-distributed) fill not
    /// yet published by a barrier.
    dirty: HashSet<VarId>,
    reported_dirty: HashSet<VarId>,
    reported_divergent_barrier: bool,
    diags: Vec<Diagnostic>,
}

impl Check {
    fn mentions_thread(&self, e: &Expr) -> bool {
        collect_vars(e)
            .iter()
            .any(|v| self.thread_vars.contains(&v.id()))
    }

    fn stmt(&mut self, s: &Stmt) {
        match &*s.0 {
            StmtNode::Barrier => {
                if self.divergent > 0 && !self.reported_divergent_barrier {
                    self.reported_divergent_barrier = true;
                    self.diags.push(Diagnostic {
                        pass: "sync",
                        severity: Severity::Error,
                        message: "barrier under thread-divergent control flow".to_string(),
                        witness: None,
                    });
                }
                self.dirty.clear();
            }
            StmtNode::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let divergent_bounds = self.mentions_thread(min) || self.mentions_thread(extent);
                if divergent_bounds {
                    self.divergent += 1;
                }
                let bound_thread = matches!(kind, ForKind::ThreadBinding(t) if !t.is_block())
                    && extent.as_int() != Some(1)
                    && self.thread_vars.insert(var.id());
                // Walk twice when the body touches shared memory so a
                // fill at the end of iteration k is paired with reads at
                // the start of iteration k+1.
                self.stmt(body);
                if touches_shared(body, &self.scopes) {
                    self.stmt(body);
                }
                if bound_thread {
                    self.thread_vars.remove(&var.id());
                }
                if divergent_bounds {
                    self.divergent -= 1;
                }
            }
            StmtNode::IfThenElse {
                cond,
                then_case,
                else_case,
            } => {
                self.expr(cond);
                let divergent = self.mentions_thread(cond);
                if divergent {
                    self.divergent += 1;
                }
                // Either branch may or may not run per thread: dirt from
                // one branch survives into the join.
                self.stmt(then_case);
                if let Some(e) = else_case {
                    self.stmt(e);
                }
                if divergent {
                    self.divergent -= 1;
                }
            }
            StmtNode::Store {
                buffer,
                index,
                value,
                predicate,
            } => {
                self.expr(index);
                self.expr(value);
                if let Some(p) = predicate {
                    self.expr(p);
                }
                if matches!(self.scopes.get(&buffer.id()), Some((MemScope::Shared, _)))
                    && self.mentions_thread(index)
                {
                    self.dirty.insert(buffer.id());
                }
            }
            StmtNode::LetStmt { value, body, .. } => {
                self.expr(value);
                self.stmt(body);
            }
            StmtNode::AttrStmt { value, body, .. } => {
                self.expr(value);
                self.stmt(body);
            }
            StmtNode::Allocate { extent, body, .. } => {
                self.expr(extent);
                self.stmt(body);
            }
            StmtNode::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            StmtNode::Evaluate(e) => self.expr(e),
            StmtNode::PushDep { .. } | StmtNode::PopDep { .. } => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &*e.0 {
            ExprNode::IntImm { .. }
            | ExprNode::FloatImm { .. }
            | ExprNode::StringImm(_)
            | ExprNode::Var(_) => {}
            ExprNode::Cast { value, .. } => self.expr(value),
            ExprNode::Binary { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => {
                self.expr(a);
                self.expr(b);
            }
            ExprNode::Not { a } => self.expr(a),
            ExprNode::Select {
                cond,
                then_case,
                else_case,
            } => {
                self.expr(cond);
                self.expr(then_case);
                self.expr(else_case);
            }
            ExprNode::Load {
                buffer,
                index,
                predicate,
            } => {
                self.expr(index);
                if let Some(p) = predicate {
                    self.expr(p);
                }
                if self.dirty.contains(&buffer.id()) && self.reported_dirty.insert(buffer.id()) {
                    let name = self
                        .scopes
                        .get(&buffer.id())
                        .map(|(_, n)| n.clone())
                        .unwrap_or_else(|| buffer.name().to_string());
                    self.diags.push(Diagnostic {
                        pass: "sync",
                        severity: Severity::Error,
                        message: format!(
                            "read of shared `{name}` before a barrier publishes its cooperative fill"
                        ),
                        witness: Some(format!("index `{index}`")),
                    });
                }
            }
            ExprNode::Ramp { base, stride, .. } => {
                self.expr(base);
                self.expr(stride);
            }
            ExprNode::Broadcast { value, .. } => self.expr(value),
            ExprNode::Let { value, body, .. } => {
                self.expr(value);
                self.expr(body);
            }
            ExprNode::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
        }
    }
}

fn touches_shared(s: &Stmt, scopes: &HashMap<VarId, (MemScope, String)>) -> bool {
    let shared = |v: &Var| matches!(scopes.get(&v.id()), Some((MemScope::Shared, _)));
    match &*s.0 {
        StmtNode::Store { buffer, value, .. } => {
            shared(buffer) || expr_touches_shared(value, scopes)
        }
        StmtNode::Evaluate(e) => expr_touches_shared(e, scopes),
        StmtNode::LetStmt { value, body, .. } => {
            expr_touches_shared(value, scopes) || touches_shared(body, scopes)
        }
        StmtNode::AttrStmt { body, .. }
        | StmtNode::Allocate { body, .. }
        | StmtNode::For { body, .. } => touches_shared(body, scopes),
        StmtNode::Seq(items) => items.iter().any(|i| touches_shared(i, scopes)),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => {
            touches_shared(then_case, scopes)
                || else_case
                    .as_ref()
                    .is_some_and(|e| touches_shared(e, scopes))
        }
        _ => false,
    }
}

fn expr_touches_shared(e: &Expr, scopes: &HashMap<VarId, (MemScope, String)>) -> bool {
    match &*e.0 {
        ExprNode::Load { buffer, index, .. } => {
            matches!(scopes.get(&buffer.id()), Some((MemScope::Shared, _)))
                || expr_touches_shared(index, scopes)
        }
        ExprNode::Cast { value, .. } | ExprNode::Broadcast { value, .. } => {
            expr_touches_shared(value, scopes)
        }
        ExprNode::Binary { a, b, .. }
        | ExprNode::Cmp { a, b, .. }
        | ExprNode::And { a, b }
        | ExprNode::Or { a, b } => expr_touches_shared(a, scopes) || expr_touches_shared(b, scopes),
        ExprNode::Not { a } => expr_touches_shared(a, scopes),
        ExprNode::Select {
            cond,
            then_case,
            else_case,
        } => {
            expr_touches_shared(cond, scopes)
                || expr_touches_shared(then_case, scopes)
                || expr_touches_shared(else_case, scopes)
        }
        ExprNode::Ramp { base, stride, .. } => {
            expr_touches_shared(base, scopes) || expr_touches_shared(stride, scopes)
        }
        ExprNode::Let { value, body, .. } => {
            expr_touches_shared(value, scopes) || expr_touches_shared(body, scopes)
        }
        ExprNode::Call { args, .. } => args.iter().any(|a| expr_touches_shared(a, scopes)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_ir::{DType, ThreadTag};

    fn thread_loop(tx: &Var, extent: i64, body: Stmt) -> Stmt {
        Stmt::loop_(
            tx,
            0,
            extent,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            body,
        )
    }

    #[test]
    fn barrier_under_divergent_branch_is_flagged() {
        let tx = Var::int("tx");
        let body = thread_loop(
            &tx,
            4,
            Stmt::if_then(tx.to_expr().lt(Expr::int(2)), Stmt::new(StmtNode::Barrier)),
        );
        let diags = check(&body, &[]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("divergent"));
    }

    #[test]
    fn uniform_barrier_is_fine() {
        let tx = Var::int("tx");
        let body = thread_loop(&tx, 4, Stmt::new(StmtNode::Barrier));
        assert!(check(&body, &[]).is_empty());
    }

    #[test]
    fn cooperative_fill_needs_barrier() {
        let s = Var::new("S", DType::float32());
        let a = Var::new("A", DType::float32());
        let o = Var::new("O", DType::float32());
        let tx = Var::int("tx");
        let fill = Stmt::store(&s, tx.to_expr(), Expr::load(&a, tx.to_expr()));
        let read = Stmt::store(&o, tx.to_expr(), Expr::load(&s, (tx.clone() + 1) % 4));
        let mk = |with_barrier: bool| {
            let mut items = vec![fill.clone()];
            if with_barrier {
                items.push(Stmt::new(StmtNode::Barrier));
            }
            items.push(read.clone());
            Stmt::allocate(
                &s,
                DType::float32(),
                4,
                MemScope::Shared,
                thread_loop(&tx, 4, Stmt::seq(items)),
            )
        };
        assert!(check(&mk(true), &[a.clone(), o.clone()]).is_empty());
        let diags = check(&mk(false), &[a, o]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`S`"));
    }

    #[test]
    fn wraparound_fill_in_loop_is_caught() {
        let s = Var::new("S", DType::float32());
        let a = Var::new("A", DType::float32());
        let o = Var::new("O", DType::float32());
        let tx = Var::int("tx");
        let k = Var::int("k");
        // for k { barrier; O[..] = S[..]; S[tx] = A[..] } — the fill at
        // the end of iteration k meets the read at the top of k+1 with
        // only the leading barrier... which DOES separate them. Remove
        // the barrier to make it racy.
        let read = Stmt::store(
            &o,
            k.clone() * 4 + tx.clone(),
            Expr::load(&s, Expr::int(3) - tx.clone()),
        );
        let fill = Stmt::store(&s, tx.to_expr(), Expr::load(&a, k.clone() * 4 + tx.clone()));
        let mk = |with_barrier: bool| {
            let mut items = Vec::new();
            if with_barrier {
                items.push(Stmt::new(StmtNode::Barrier));
            }
            items.push(read.clone());
            items.push(fill.clone());
            Stmt::allocate(
                &s,
                DType::float32(),
                4,
                MemScope::Shared,
                thread_loop(&tx, 4, Stmt::for_(&k, 0, 4, Stmt::seq(items))),
            )
        };
        assert!(check(&mk(true), &[a.clone(), o.clone()]).is_empty());
        let diags = check(&mk(false), &[a, o]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn uniform_fill_needs_no_barrier() {
        let s = Var::new("S", DType::float32());
        let a = Var::new("A", DType::float32());
        let o = Var::new("O", DType::float32());
        let tx = Var::int("tx");
        let u = Var::int("u");
        // Every thread fills all of S identically: no barrier required.
        let fill = Stmt::for_(
            &u,
            0,
            4,
            Stmt::store(&s, u.to_expr(), Expr::load(&a, u.to_expr())),
        );
        let read = Stmt::store(&o, tx.to_expr(), Expr::load(&s, (tx.clone() + 1) % 4));
        let body = Stmt::allocate(
            &s,
            DType::float32(),
            4,
            MemScope::Shared,
            thread_loop(&tx, 4, Stmt::seq(vec![fill, read])),
        );
        assert!(check(&body, &[a, o]).is_empty());
    }
}
