//! Pass 2: buffer-bounds verification.
//!
//! For every `Load` / `Store` on a buffer with a known flat extent
//! (function parameters and constant-extent `Allocate`s), the index is
//! classified:
//!
//! * **Proven** — `ir::interval` analysis bounds the index inside
//!   `[0, extent)` from the enclosing loop/let ranges alone.
//! * **Refuted** — a concrete assignment of the free variables (drawn
//!   from the corners of their ranges) satisfies every enclosing guard
//!   and drives the index out of bounds. The assignment is reported as a
//!   witness.
//! * **Unknown** — neither; typical for guarded tail accesses whose raw
//!   interval overshoots but whose guards cut the overshoot away.
//!
//! Vector accesses check the first and last lane of a `Ramp` (the index
//! is monotone in the lane, so the endpoints bound all lanes).

use std::collections::HashMap;

use tvm_ir::{eval_interval, Expr, ExprNode, Interval, Stmt, StmtNode, Var, VarId};

use crate::affine::eval_const;
use crate::{Diagnostic, Severity};

/// Counters for the bounds pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct BoundsStats {
    /// Accesses with a known buffer extent.
    pub checked: usize,
    /// Proven in range.
    pub proven: usize,
    /// Refuted with a witness.
    pub refuted: usize,
    /// Undecided.
    pub unknown: usize,
}

/// Most variables a witness search will enumerate corners over (2^k
/// assignments).
const MAX_WITNESS_VARS: usize = 12;

/// Checks every access in `body`; `params[i]` has `param_extents[i]`
/// elements.
pub fn check(
    body: &Stmt,
    params: &[Var],
    param_extents: &[usize],
) -> (Vec<Diagnostic>, BoundsStats) {
    let mut ck = Check {
        ranges: HashMap::new(),
        extents: params
            .iter()
            .zip(param_extents)
            .map(|(p, e)| (p.id(), Some(*e as i64)))
            .collect(),
        guards: Vec::new(),
        diags: Vec::new(),
        stats: BoundsStats::default(),
    };
    // Params beyond the extents list (if any) have unknown extents.
    for p in params.iter().skip(param_extents.len()) {
        ck.extents.entry(p.id()).or_insert(None);
    }
    ck.stmt(body);
    (ck.diags, ck.stats)
}

struct Check {
    ranges: HashMap<VarId, Interval>,
    /// Buffer var -> flat extent (`None` = allocated but non-constant).
    extents: HashMap<VarId, Option<i64>>,
    guards: Vec<Expr>,
    diags: Vec<Diagnostic>,
    stats: BoundsStats,
}

impl Check {
    fn stmt(&mut self, s: &Stmt) {
        match &*s.0 {
            StmtNode::LetStmt { var, value, body } => {
                self.expr(value);
                let prev = eval_interval(value, &self.ranges)
                    .and_then(|iv| self.ranges.insert(var.id(), iv));
                self.stmt(body);
                self.restore(var.id(), prev);
            }
            StmtNode::AttrStmt { value, body, .. } => {
                self.expr(value);
                self.stmt(body);
            }
            StmtNode::Store {
                buffer,
                index,
                value,
                predicate,
            } => {
                self.expr(index);
                self.expr(value);
                if let Some(p) = predicate {
                    self.expr(p);
                }
                self.access(buffer, index, predicate.as_ref(), true);
            }
            StmtNode::Allocate {
                buffer,
                extent,
                body,
                ..
            } => {
                self.expr(extent);
                let ext = eval_interval(extent, &self.ranges)
                    .filter(|iv| iv.min == iv.max)
                    .map(|iv| iv.min);
                let prev = self.extents.insert(buffer.id(), ext);
                self.stmt(body);
                match prev {
                    Some(p) => {
                        self.extents.insert(buffer.id(), p);
                    }
                    None => {
                        self.extents.remove(&buffer.id());
                    }
                }
            }
            StmtNode::For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                self.expr(min);
                self.expr(extent);
                let range = match (
                    eval_interval(min, &self.ranges),
                    eval_interval(extent, &self.ranges),
                ) {
                    (Some(m), Some(e)) if e.max >= 1 => Some(Interval {
                        min: m.min,
                        max: m.max.saturating_add(e.max - 1),
                    }),
                    _ => None,
                };
                let prev = range.and_then(|iv| self.ranges.insert(var.id(), iv));
                self.stmt(body);
                self.restore(var.id(), prev);
            }
            StmtNode::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            StmtNode::IfThenElse {
                cond,
                then_case,
                else_case,
            } => {
                self.expr(cond);
                self.guards.push(cond.clone());
                self.stmt(then_case);
                self.guards.pop();
                if let Some(e) = else_case {
                    self.guards.push(cond.clone().not());
                    self.stmt(e);
                    self.guards.pop();
                }
            }
            StmtNode::Evaluate(e) => self.expr(e),
            StmtNode::Barrier | StmtNode::PushDep { .. } | StmtNode::PopDep { .. } => {}
        }
    }

    fn restore(&mut self, id: VarId, prev: Option<Interval>) {
        match prev {
            Some(iv) => {
                self.ranges.insert(id, iv);
            }
            None => {
                self.ranges.remove(&id);
            }
        }
    }

    /// Walks an expression for nested loads.
    fn expr(&mut self, e: &Expr) {
        match &*e.0 {
            ExprNode::IntImm { .. }
            | ExprNode::FloatImm { .. }
            | ExprNode::StringImm(_)
            | ExprNode::Var(_) => {}
            ExprNode::Cast { value, .. } => self.expr(value),
            ExprNode::Binary { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => {
                self.expr(a);
                self.expr(b);
            }
            ExprNode::Not { a } => self.expr(a),
            ExprNode::Select {
                cond,
                then_case,
                else_case,
            } => {
                // `select` guards its operands: the padding idiom
                // `select(0 <= i && i < n, A[i], 0)` relies on the
                // condition to keep the load in range.
                self.expr(cond);
                self.guards.push(cond.clone());
                self.expr(then_case);
                self.guards.pop();
                self.guards.push(cond.clone().not());
                self.expr(else_case);
                self.guards.pop();
            }
            ExprNode::Load {
                buffer,
                index,
                predicate,
            } => {
                self.expr(index);
                if let Some(p) = predicate {
                    self.expr(p);
                }
                self.access(buffer, index, predicate.as_ref(), false);
            }
            ExprNode::Ramp { base, stride, .. } => {
                self.expr(base);
                self.expr(stride);
            }
            ExprNode::Broadcast { value, .. } => self.expr(value),
            ExprNode::Let { var, value, body } => {
                self.expr(value);
                let prev = eval_interval(value, &self.ranges)
                    .and_then(|iv| self.ranges.insert(var.id(), iv));
                self.expr(body);
                self.restore(var.id(), prev);
            }
            ExprNode::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
        }
    }

    fn access(&mut self, buffer: &Var, index: &Expr, predicate: Option<&Expr>, is_store: bool) {
        // Unknown buffer handles (e.g. accelerator-managed) are skipped.
        let Some(ext) = self.extents.get(&buffer.id()).copied() else {
            return;
        };
        self.stats.checked += 1;
        let Some(ext) = ext else {
            self.stats.unknown += 1;
            return;
        };

        // A Ramp is bounded by its first and last lane; Broadcast by its
        // scalar value.
        let parts: Vec<Expr> = match &*index.0 {
            ExprNode::Ramp {
                base,
                stride,
                lanes,
            } => vec![
                base.clone(),
                base.clone() + stride.clone() * (*lanes as i64 - 1),
            ],
            ExprNode::Broadcast { value, .. } => vec![value.clone()],
            _ => vec![index.clone()],
        };

        if parts
            .iter()
            .all(|p| eval_interval(p, &self.ranges).is_some_and(|iv| iv.min >= 0 && iv.max < ext))
        {
            self.stats.proven += 1;
            return;
        }

        let mut guards = self.guards.clone();
        if let Some(p) = predicate {
            guards.push((*p).clone());
        }
        if let Some((witness, part, value)) = self.find_witness(&parts, &guards, ext) {
            self.stats.refuted += 1;
            let what = if is_store { "store to" } else { "load from" };
            self.diags.push(Diagnostic {
                pass: "bounds",
                severity: Severity::Error,
                message: format!(
                    "{what} `{}` refuted: index `{part}` = {value}, outside [0, {ext})",
                    buffer.name()
                ),
                witness: Some(witness),
            });
        } else {
            self.stats.unknown += 1;
        }
    }

    /// Searches the corners of the free variables' ranges for an
    /// assignment that satisfies every guard and drives some index part
    /// out of `[0, ext)`.
    fn find_witness(
        &self,
        parts: &[Expr],
        guards: &[Expr],
        ext: i64,
    ) -> Option<(String, Expr, i64)> {
        let mut vars: Vec<Var> = Vec::new();
        for e in parts.iter().chain(guards) {
            for v in tvm_ir::collect_vars(e) {
                if !vars.iter().any(|x| x.id() == v.id()) {
                    vars.push(v);
                }
            }
        }
        if vars.len() > MAX_WITNESS_VARS {
            return None;
        }
        let ranges: Vec<Interval> = vars
            .iter()
            .map(|v| self.ranges.get(&v.id()).copied())
            .collect::<Option<_>>()?;

        let k = vars.len();
        let combos: usize = 1 << k;
        let mut env: HashMap<VarId, i64> = HashMap::with_capacity(k);
        'corner: for mask in 0..combos {
            env.clear();
            for (i, (v, r)) in vars.iter().zip(&ranges).enumerate() {
                let val = if mask & (1 << i) == 0 { r.min } else { r.max };
                env.insert(v.id(), val);
            }
            for g in guards {
                if eval_const(g, &env) != Some(1) {
                    continue 'corner;
                }
            }
            for part in parts {
                if let Some(val) = eval_const(part, &env) {
                    if val < 0 || val >= ext {
                        let mut pairs: Vec<String> = vars
                            .iter()
                            .map(|v| format!("{}={}", v.name(), env[&v.id()]))
                            .collect();
                        pairs.sort();
                        return Some((format!("at {}", pairs.join(", ")), part.clone(), val));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_ir::DType;

    fn f32buf(name: &str) -> Var {
        Var::new(name, DType::float32())
    }

    #[test]
    fn in_range_store_is_proven() {
        let a = f32buf("A");
        let i = Var::int("i");
        let body = Stmt::for_(&i, 0, 16, Stmt::store(&a, i.to_expr(), Expr::f32(0.0)));
        let (diags, stats) = check(&body, &[a], &[16]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!((stats.checked, stats.proven), (1, 1));
    }

    #[test]
    fn off_by_one_store_is_refuted_with_witness() {
        let a = f32buf("A");
        let i = Var::int("i");
        let body = Stmt::for_(&i, 0, 16, Stmt::store(&a, i.to_expr() + 1, Expr::f32(0.0)));
        let (diags, stats) = check(&body, &[a], &[16]);
        assert_eq!(stats.refuted, 1);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].witness.as_deref() == Some("at i=15"), "{diags:?}");
    }

    #[test]
    fn guarded_tail_access_is_unknown_not_refuted() {
        let a = f32buf("A");
        let io = Var::int("io");
        let ii = Var::int("ii");
        // for io in 0..4: for ii in 0..4: if io*4+ii < 14: A[io*4+ii] = 0
        // with |A| = 14. Raw interval overshoots to 15 but the guard cuts
        // the overshoot, so this must not be refuted.
        let idx = io.clone() * 4 + ii.clone();
        let guarded = Stmt::if_then(
            idx.clone().lt(Expr::int(14)),
            Stmt::store(&a, idx, Expr::f32(0.0)),
        );
        let body = Stmt::for_(&io, 0, 4, Stmt::for_(&ii, 0, 4, guarded));
        let (diags, stats) = check(&body, &[a], &[14]);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.refuted, 0);
        assert_eq!(stats.unknown, 1);
    }

    #[test]
    fn allocate_extent_is_used() {
        let out = f32buf("out");
        let b = f32buf("B");
        let i = Var::int("i");
        let oob = Stmt::for_(&i, 0, 8, Stmt::store(&b, i.to_expr() * 2, Expr::f32(0.0)));
        let fine = Stmt::store(&out, Expr::int(0), Expr::load(&b, Expr::int(0)));
        let body = Stmt::allocate(
            &b,
            DType::float32(),
            8,
            tvm_ir::MemScope::Global,
            Stmt::seq(vec![oob, fine]),
        );
        let (diags, stats) = check(&body, &[out], &[1]);
        assert_eq!(stats.refuted, 1, "{diags:?}");
        assert!(diags[0].message.contains("`B`"));
    }

    #[test]
    fn ramp_endpoints_are_checked() {
        let a = f32buf("A");
        let i = Var::int("i");
        let idx = Expr::new(ExprNode::Ramp {
            base: i.clone() * 4,
            stride: Expr::int(1),
            lanes: 4,
        });
        let val = Expr::new(ExprNode::Broadcast {
            value: Expr::f32(0.0),
            lanes: 4,
        });
        let body = Stmt::for_(&i, 0, 4, Stmt::store(&a, idx, val));
        // 4*3 + 3 = 15 fits in 16 -> proven; in 15 -> refuted.
        let (_, stats) = check(&body, std::slice::from_ref(&a), &[16]);
        assert_eq!(stats.proven, 1);
        let (diags, stats) = check(&body, &[a], &[15]);
        assert_eq!(stats.refuted, 1, "{diags:?}");
    }
}
