//! Pass 3: data-race detection for concurrent loops.
//!
//! For every `Parallel` / `Vectorized` / `VThread` / thread-bound loop
//! `L` with constant extent ≥ 2, this pass collects the may-read /
//! may-write access sets of `L`'s body on buffers that are *shared
//! across iterations* — allocated outside `L` and not in a per-iteration
//! memory scope — and flags write-write or read-write pairs that may
//! touch the same element from two distinct iteration instances.
//!
//! **Happens-before.** For thread-bound loops (non-block tags),
//! `Barrier` statements order accesses: the body is split into barrier
//! phases and only same-phase pairs are compared. A serial loop that
//! itself contains barriers runs in lockstep across threads, so its
//! cross-iteration pairs are barrier-ordered and only same-iteration
//! pairs are checked (the loop variable is *pinned* equal on both
//! sides). Barriers do not synchronize `Parallel` / `VThread` /
//! vectorized iterations or distinct thread blocks, so they split no
//! phases there.
//!
//! **Scopes.** `local` and the accelerator scopes are per-iteration
//! (registers / token-ordered DAE SRAM); `shared` is per-block, so it is
//! exempt when `L` is a block axis; buffers `Allocate`d inside `L`'s
//! body are private by construction.
//!
//! **Uniform writes.** Our execution model runs every statement on every
//! thread: an unbound producer stage nested under a thread loop writes
//! the same value to the same location once per thread. Such writes —
//! index and value independent of the loop variable, reading only
//! buffers whose content is itself iteration-invariant — are idempotent
//! and reported as benign, matching the interpreter's lockstep
//! semantics.
//!
//! **Disjointness.** Two instances of the same index expression are
//! disjoint when the index is provably injective in the loop variable.
//! The prover normalizes the index to an affine form over atoms
//! (variables, floor-div/mod of nested forms — the `split`/`fuse`
//! shapes), tightens atom ranges with guard-derived upper bounds (tail
//! guards like `ow < 14`), groups guarded sub-sums into single digits,
//! and applies a mixed-radix digit-separation argument: if every digit's
//! coefficient strictly dominates the total width of all smaller digits,
//! equal indices force equal digits, and recursively equal div/mod pairs
//! reconstruct their operand until the loop variable itself is forced
//! equal. Different index expressions fall back to interval
//! disjointness.

use std::collections::{HashMap, HashSet};

use tvm_ir::{
    collect_vars, eval_interval, Expr, ExprNode, ForKind, Interval, MemScope, Stmt, StmtNode, Var,
    VarId,
};

use crate::affine::{
    atom_eq, atom_interval, form_eq, form_interval, guard_constraints, normalize, Atom, LinForm,
    RangeEnv,
};
use crate::{Diagnostic, Severity};

/// Checks `body` (with `params` as global buffers) for races.
pub fn check(body: &Stmt, params: &[Var]) -> Vec<Diagnostic> {
    let mut scopes: HashMap<VarId, MemScope> =
        params.iter().map(|p| (p.id(), MemScope::Global)).collect();
    collect_buffer_scopes(body, &mut scopes);
    let mut w = Walk {
        scopes,
        ranges: HashMap::new(),
        diags: Vec::new(),
    };
    w.stmt(body);
    w.diags
}

fn collect_buffer_scopes(s: &Stmt, out: &mut HashMap<VarId, MemScope>) {
    match &*s.0 {
        StmtNode::Allocate {
            buffer,
            scope,
            body,
            ..
        } => {
            out.insert(buffer.id(), *scope);
            collect_buffer_scopes(body, out);
        }
        StmtNode::LetStmt { body, .. }
        | StmtNode::AttrStmt { body, .. }
        | StmtNode::For { body, .. } => collect_buffer_scopes(body, out),
        StmtNode::Seq(items) => {
            for item in items {
                collect_buffer_scopes(item, out);
            }
        }
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => {
            collect_buffer_scopes(then_case, out);
            if let Some(e) = else_case {
                collect_buffer_scopes(e, out);
            }
        }
        _ => {}
    }
}

fn is_concurrent(kind: ForKind) -> bool {
    matches!(
        kind,
        ForKind::Parallel | ForKind::Vectorized | ForKind::VThread | ForKind::ThreadBinding(_)
    )
}

fn loop_desc(kind: ForKind) -> &'static str {
    match kind {
        ForKind::Parallel => "parallel",
        ForKind::Vectorized => "vectorized",
        ForKind::VThread => "vthread",
        ForKind::ThreadBinding(tag) => tag.name(),
        ForKind::Serial | ForKind::Unrolled => "serial",
    }
}

fn contains_barrier(s: &Stmt) -> bool {
    match &*s.0 {
        StmtNode::Barrier => true,
        StmtNode::LetStmt { body, .. }
        | StmtNode::AttrStmt { body, .. }
        | StmtNode::Allocate { body, .. }
        | StmtNode::For { body, .. } => contains_barrier(body),
        StmtNode::Seq(items) => items.iter().any(contains_barrier),
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => contains_barrier(then_case) || else_case.as_ref().is_some_and(contains_barrier),
        _ => false,
    }
}

/// Top-level walk: finds concurrent loops and tracks outer ranges.
struct Walk {
    scopes: HashMap<VarId, MemScope>,
    ranges: HashMap<VarId, Interval>,
    diags: Vec<Diagnostic>,
}

impl Walk {
    fn stmt(&mut self, s: &Stmt) {
        match &*s.0 {
            StmtNode::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let range = loop_range(min, extent, &self.ranges);
                if is_concurrent(*kind) {
                    if let (Some(n), Some(r)) = (extent.as_int(), range) {
                        if n >= 2 {
                            self.analyze_loop(var, r, *kind, body);
                        }
                    }
                }
                let prev = range.and_then(|iv| self.ranges.insert(var.id(), iv));
                self.stmt(body);
                restore(&mut self.ranges, var.id(), prev);
            }
            StmtNode::LetStmt { var, value, body } => {
                let prev = eval_interval(value, &self.ranges)
                    .and_then(|iv| self.ranges.insert(var.id(), iv));
                self.stmt(body);
                restore(&mut self.ranges, var.id(), prev);
            }
            StmtNode::AttrStmt { body, .. } | StmtNode::Allocate { body, .. } => self.stmt(body),
            StmtNode::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            StmtNode::IfThenElse {
                then_case,
                else_case,
                ..
            } => {
                self.stmt(then_case);
                if let Some(e) = else_case {
                    self.stmt(e);
                }
            }
            _ => {}
        }
    }

    fn analyze_loop(&mut self, v: &Var, v_range: Interval, kind: ForKind, body: &Stmt) {
        let barrier_sensitive = matches!(kind, ForKind::ThreadBinding(t) if !t.is_block());
        let shared_exempt = matches!(kind, ForKind::ThreadBinding(t) if t.is_block());
        let mut ranges = self.ranges.clone();
        let pinned: HashSet<VarId> = ranges.keys().copied().collect();
        ranges.insert(v.id(), v_range);

        let mut col = Collector {
            v: v.clone(),
            barrier_sensitive,
            shared_exempt,
            scopes: &self.scopes,
            ranges,
            pinned,
            private: HashSet::new(),
            tainted: HashSet::new(),
            guards: Vec::new(),
            regions: vec![Vec::new()],
        };
        col.collect(body);

        let uniform = col.uniform_buffers();
        let mut reported: HashSet<VarId> = HashSet::new();
        for region in &col.regions {
            for i in 0..region.len() {
                for j in i..region.len() {
                    let (a, b) = (&region[i], &region[j]);
                    if a.buffer.id() != b.buffer.id()
                        || a.exempt
                        || (!a.write && !b.write)
                        || reported.contains(&a.buffer.id())
                    {
                        continue;
                    }
                    if [a, b]
                        .iter()
                        .filter(|x| x.write)
                        .all(|x| col.write_is_uniform(x, &uniform))
                    {
                        continue;
                    }
                    if col.disjoint(a, b) {
                        continue;
                    }
                    reported.insert(a.buffer.id());
                    let pair = match (a.write, b.write) {
                        (true, true) => "write-write",
                        _ => "read-write",
                    };
                    self.diags.push(Diagnostic {
                        pass: "race",
                        severity: Severity::Error,
                        message: format!(
                            "possible {pair} race on `{}` across iterations of {} loop `{}`",
                            a.buffer.name(),
                            loop_desc(kind),
                            v.name()
                        ),
                        witness: Some(if a.index.structural_eq(&b.index) {
                            format!("index `{}`", a.index)
                        } else {
                            format!("indices `{}` and `{}`", a.index, b.index)
                        }),
                    });
                }
            }
        }
    }
}

fn loop_range(min: &Expr, extent: &Expr, ranges: &HashMap<VarId, Interval>) -> Option<Interval> {
    let m = eval_interval(min, ranges)?;
    let e = eval_interval(extent, ranges)?;
    if e.max < 1 {
        return None;
    }
    Some(Interval {
        min: m.min,
        max: m.max.saturating_add(e.max - 1),
    })
}

fn restore(map: &mut HashMap<VarId, Interval>, id: VarId, prev: Option<Interval>) {
    match prev {
        Some(iv) => {
            map.insert(id, iv);
        }
        None => {
            map.remove(&id);
        }
    }
}

/// One recorded buffer access inside the analyzed loop body.
struct Access {
    buffer: Var,
    index: Expr,
    write: bool,
    value: Option<Expr>,
    predicate: Option<Expr>,
    /// Enclosing guards (including the store/load predicate).
    guards: Vec<Expr>,
    /// Variable ranges live at the access site.
    ranges: HashMap<VarId, Interval>,
    exempt: bool,
}

struct Collector<'a> {
    v: Var,
    barrier_sensitive: bool,
    shared_exempt: bool,
    scopes: &'a HashMap<VarId, MemScope>,
    ranges: HashMap<VarId, Interval>,
    /// Variables bound outside the loop (equal on both instances). A
    /// lockstep serial loop variable is also pinned while inside it.
    pinned: HashSet<VarId>,
    /// Buffers allocated inside the loop body (per-iteration).
    private: HashSet<VarId>,
    /// Let-bound variables whose value depends on the loop variable.
    tainted: HashSet<VarId>,
    guards: Vec<Expr>,
    /// Barrier-phase groups; only same-group pairs are unordered.
    regions: Vec<Vec<Access>>,
}

impl Collector<'_> {
    fn new_region(&mut self) {
        if self.regions.last().is_some_and(|r| !r.is_empty()) {
            self.regions.push(Vec::new());
        }
    }

    fn mentions_v(&self, e: &Expr) -> bool {
        collect_vars(e)
            .iter()
            .any(|x| x.id() == self.v.id() || self.tainted.contains(&x.id()))
    }

    fn collect(&mut self, s: &Stmt) {
        match &*s.0 {
            StmtNode::Seq(items) => {
                for item in items {
                    self.collect(item);
                }
            }
            StmtNode::Barrier => {
                if self.barrier_sensitive {
                    self.new_region();
                }
            }
            StmtNode::For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let range = loop_range(min, extent, &self.ranges);
                let prev = range.and_then(|iv| self.ranges.insert(var.id(), iv));
                let lockstep = self.barrier_sensitive
                    && matches!(kind, ForKind::Serial | ForKind::Unrolled)
                    && contains_barrier(body);
                if lockstep {
                    // All threads execute iteration k together (barriers
                    // inside keep them in step), so cross-iteration pairs
                    // are ordered; check same-iteration pairs with the
                    // loop variable pinned equal.
                    self.new_region();
                    let was_pinned = !self.pinned.insert(var.id());
                    self.collect(body);
                    if !was_pinned {
                        self.pinned.remove(&var.id());
                    }
                    self.new_region();
                } else {
                    self.collect(body);
                }
                restore(&mut self.ranges, var.id(), prev);
            }
            StmtNode::Allocate { buffer, body, .. } => {
                self.private.insert(buffer.id());
                self.collect(body);
            }
            StmtNode::LetStmt { var, value, body } => {
                self.record_reads(value);
                if self.mentions_v(value) {
                    self.tainted.insert(var.id());
                }
                let prev = eval_interval(value, &self.ranges)
                    .and_then(|iv| self.ranges.insert(var.id(), iv));
                self.collect(body);
                restore(&mut self.ranges, var.id(), prev);
            }
            StmtNode::AttrStmt { body, .. } => self.collect(body),
            StmtNode::IfThenElse {
                cond,
                then_case,
                else_case,
            } => {
                self.record_reads(cond);
                self.guards.push(cond.clone());
                self.collect(then_case);
                self.guards.pop();
                if let Some(e) = else_case {
                    self.guards.push(cond.clone().not());
                    self.collect(e);
                    self.guards.pop();
                }
            }
            StmtNode::Store {
                buffer,
                index,
                value,
                predicate,
            } => {
                self.record_reads(index);
                self.record_reads(value);
                if let Some(p) = predicate {
                    self.record_reads(p);
                }
                self.push_access(buffer, index, true, Some(value.clone()), predicate.clone());
            }
            StmtNode::Evaluate(e) => self.record_reads(e),
            StmtNode::PushDep { .. } | StmtNode::PopDep { .. } => {}
        }
    }

    /// Records read accesses for every `Load` nested in `e`.
    fn record_reads(&mut self, e: &Expr) {
        match &*e.0 {
            ExprNode::IntImm { .. }
            | ExprNode::FloatImm { .. }
            | ExprNode::StringImm(_)
            | ExprNode::Var(_) => {}
            ExprNode::Cast { value, .. } => self.record_reads(value),
            ExprNode::Binary { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => {
                self.record_reads(a);
                self.record_reads(b);
            }
            ExprNode::Not { a } => self.record_reads(a),
            ExprNode::Select {
                cond,
                then_case,
                else_case,
            } => {
                // `select` guards its operands (cf. the padding idiom).
                self.record_reads(cond);
                self.guards.push(cond.clone());
                self.record_reads(then_case);
                self.guards.pop();
                self.guards.push(cond.clone().not());
                self.record_reads(else_case);
                self.guards.pop();
            }
            ExprNode::Load {
                buffer,
                index,
                predicate,
            } => {
                self.record_reads(index);
                if let Some(p) = predicate {
                    self.record_reads(p);
                }
                self.push_access(buffer, index, false, None, predicate.clone());
            }
            ExprNode::Ramp { base, stride, .. } => {
                self.record_reads(base);
                self.record_reads(stride);
            }
            ExprNode::Broadcast { value, .. } => self.record_reads(value),
            ExprNode::Let { var, value, body } => {
                self.record_reads(value);
                if self.mentions_v(value) {
                    self.tainted.insert(var.id());
                }
                let prev = eval_interval(value, &self.ranges)
                    .and_then(|iv| self.ranges.insert(var.id(), iv));
                self.record_reads(body);
                restore(&mut self.ranges, var.id(), prev);
            }
            ExprNode::Call { args, .. } => {
                for a in args {
                    self.record_reads(a);
                }
            }
        }
    }

    fn push_access(
        &mut self,
        buffer: &Var,
        index: &Expr,
        write: bool,
        value: Option<Expr>,
        predicate: Option<Expr>,
    ) {
        let exempt = self.private.contains(&buffer.id())
            || match self.scopes.get(&buffer.id()) {
                None => true, // unknown handle: cannot reason, skip
                Some(MemScope::Local)
                | Some(MemScope::AccBuffer)
                | Some(MemScope::InpBuffer)
                | Some(MemScope::WgtBuffer) => true,
                Some(MemScope::Shared) => self.shared_exempt,
                Some(MemScope::Global) => false,
            };
        // Vector accesses: model the lane as a fresh independent
        // variable so the disjointness prover sees `base + stride*lane`.
        let (index, lane_range) = match &*index.0 {
            ExprNode::Ramp {
                base,
                stride,
                lanes,
            } => {
                let lane = Var::int("lane");
                let iv = Interval {
                    min: 0,
                    max: *lanes as i64 - 1,
                };
                (
                    base.clone() + stride.clone() * lane.to_expr(),
                    Some((lane, iv)),
                )
            }
            ExprNode::Broadcast { value, .. } => (value.clone(), None),
            _ => (index.clone(), None),
        };
        let mut guards = self.guards.clone();
        if let Some(p) = &predicate {
            guards.push(p.clone());
        }
        let mut ranges = self.ranges.clone();
        if let Some((lane, iv)) = lane_range {
            ranges.insert(lane.id(), iv);
        }
        let region = self.regions.last_mut().expect("region stack non-empty");
        region.push(Access {
            buffer: buffer.clone(),
            index,
            write,
            value,
            predicate,
            guards,
            ranges,
            exempt,
        });
    }

    /// Fixpoint: buffers whose content is identical on every iteration
    /// of the loop (inputs, plus buffers only written with
    /// iteration-invariant index/value from other uniform buffers).
    fn uniform_buffers(&self) -> HashSet<VarId> {
        let mut uniform: HashSet<VarId> = self
            .regions
            .iter()
            .flatten()
            .map(|a| a.buffer.id())
            .chain(self.scopes.keys().copied())
            .collect();
        loop {
            let mut changed = false;
            for a in self.regions.iter().flatten() {
                if a.write
                    && uniform.contains(&a.buffer.id())
                    && !self.write_is_uniform(a, &uniform)
                {
                    uniform.remove(&a.buffer.id());
                    changed = true;
                }
            }
            if !changed {
                return uniform;
            }
        }
    }

    /// True when this write stores an iteration-invariant value to an
    /// iteration-invariant location (idempotent across the loop).
    fn write_is_uniform(&self, a: &Access, uniform: &HashSet<VarId>) -> bool {
        if self.mentions_v(&a.index) {
            return false;
        }
        if a.value.as_ref().is_some_and(|v| self.mentions_v(v)) {
            return false;
        }
        if a.predicate.as_ref().is_some_and(|p| self.mentions_v(p)) {
            return false;
        }
        let mut loaded = HashSet::new();
        loads_of(&a.index, &mut loaded);
        if let Some(v) = &a.value {
            loads_of(v, &mut loaded);
        }
        loaded.iter().all(|b| uniform.contains(b))
    }

    /// Can two distinct iterations touch the same element through `a`
    /// and `b`? Returns true when provably not.
    fn disjoint(&self, a: &Access, b: &Access) -> bool {
        let mut ranges = a.ranges.clone();
        for (k, iv) in &b.ranges {
            ranges.entry(*k).or_insert(*iv);
        }
        if a.index.structural_eq(&b.index) {
            let guards = intersect_guards(&a.guards, &b.guards);
            if self.injective_in_v(&a.index, &guards, &ranges) {
                return true;
            }
        } else {
            let ia = self.access_interval(a);
            let ib = self.access_interval(b);
            if let (Some(x), Some(y)) = (ia, ib) {
                if x.max < y.min || y.max < x.min {
                    return true;
                }
            }
        }
        // Guards may restrict the loop variable to a single iteration
        // (elided thread tails: `if (tv < 1)`), making a distinct pair
        // impossible.
        if let (Some(ra), Some(rb)) = (self.v_restricted(a), self.v_restricted(b)) {
            if ra.min == ra.max && rb.min == rb.max && ra.min == rb.min {
                return true;
            }
        }
        false
    }

    fn v_restricted(&self, a: &Access) -> Option<Interval> {
        let base = *a.ranges.get(&self.v.id())?;
        let mut iv = base;
        for (form, ub) in guard_constraints(&a.guards) {
            if form.terms.len() == 1 && form.terms[0].1 == 1 {
                if let Atom::Var(x) = &form.terms[0].0 {
                    if x.id() == self.v.id() {
                        iv.max = iv.max.min(ub);
                    }
                }
            }
        }
        (iv.min <= iv.max).then_some(iv)
    }

    fn access_interval(&self, a: &Access) -> Option<Interval> {
        let constraints = guard_constraints(&a.guards);
        let env = RangeEnv {
            ranges: &a.ranges,
            constraints: &constraints,
        };
        if let Some(form) = normalize(&a.index) {
            if let Some(iv) = form_interval(&form, &env) {
                return Some(iv);
            }
        }
        eval_interval(&a.index, &a.ranges)
    }

    /// Proves `idx(v=x, w) == idx(v=y, w')  ==>  x == y` for in-range
    /// instances satisfying `guards`, via mixed-radix digit separation.
    fn injective_in_v(
        &self,
        idx: &Expr,
        guards: &[Expr],
        ranges: &HashMap<VarId, Interval>,
    ) -> bool {
        let Some(form) = normalize(idx) else {
            return false;
        };
        let constraints = guard_constraints(guards);
        let env = RangeEnv {
            ranges,
            constraints: &constraints,
        };

        let Some(seed) = self.digits_of(&form, &env) else {
            return false;
        };
        let mut queue: Vec<Vec<Digit>> = vec![seed];
        let mut equal_atoms: Vec<Atom> = Vec::new();
        let mut seen_forms: Vec<LinForm> = Vec::new();
        let mut steps = 0;
        while let Some(digits) = queue.pop() {
            steps += 1;
            if steps > 64 {
                return false;
            }
            // Pinned digits are equal on both instances and cancel; only
            // the rest must be separated.
            let mut active: Vec<&Digit> =
                digits.iter().filter(|d| !d.pinned && d.width > 0).collect();
            active.sort_by_key(|d| d.coef.unsigned_abs());
            let mut tail: i128 = 0;
            let mut separated = true;
            for d in &active {
                if (d.coef.unsigned_abs() as i128) <= tail {
                    separated = false;
                    break;
                }
                tail += d.coef.unsigned_abs() as i128 * d.width as i128;
            }
            if !separated {
                continue;
            }
            // Equal forms + separation => every digit equal.
            for d in active {
                match &d.kind {
                    DigitKind::Atom(Atom::Var(x)) if x.id() == self.v.id() => return true,
                    DigitKind::Atom(atom) => {
                        if !d.has_v && !matches!(atom, Atom::Div(..) | Atom::Mod(..)) {
                            continue;
                        }
                        if !equal_atoms.iter().any(|e| atom_eq(e, atom)) {
                            equal_atoms.push(atom.clone());
                        }
                    }
                    DigitKind::Group(f) => enqueue_form(f, &env, &mut seen_forms, &mut queue, self),
                }
            }
            // An equal div/mod pair over the same operand pins the
            // operand; a mod whose operand fits in one period does too.
            let mut derived: Vec<LinForm> = Vec::new();
            for atom in &equal_atoms {
                match atom {
                    Atom::Mod(f, c) => {
                        let whole = equal_atoms
                            .iter()
                            .any(|o| matches!(o, Atom::Div(g, d) if d == c && form_eq(g, f)));
                        let one_period = form_interval(f, &env).is_some_and(|iv| {
                            tvm_ir::floor_div(iv.min, *c) == tvm_ir::floor_div(iv.max, *c)
                        });
                        if whole || one_period {
                            derived.push((**f).clone());
                        }
                    }
                    Atom::Div(..) | Atom::Var(_) => {}
                }
            }
            for f in derived {
                enqueue_form(&f, &env, &mut seen_forms, &mut queue, self);
            }
        }
        false
    }

    /// Converts a form into separation digits, folding guard-constrained
    /// sub-sums (e.g. the split pieces of a guarded axis) into single
    /// digits with the tightened range.
    fn digits_of(&self, form: &LinForm, env: &RangeEnv<'_>) -> Option<Vec<Digit>> {
        let mut terms = form.terms.clone();
        let mut digits = Vec::new();
        for (cf, _ub) in env.constraints {
            // Grouping a form into itself would just hide its digits.
            if cf.terms.len() < 2 || form_eq(cf, form) {
                continue;
            }
            let Some(pos) = terms.iter().position(|(a, _)| atom_eq(a, &cf.terms[0].0)) else {
                continue;
            };
            let (c0_atom_coef, c0_form_coef) = (terms[pos].1, cf.terms[0].1);
            if c0_form_coef == 0 || c0_atom_coef % c0_form_coef != 0 {
                continue;
            }
            let m = c0_atom_coef / c0_form_coef;
            if m == 0 {
                continue;
            }
            let mut found = Vec::with_capacity(cf.terms.len());
            let mut ok = true;
            for (ca, cc) in &cf.terms {
                match terms
                    .iter()
                    .position(|(a, c)| atom_eq(a, ca) && *c == m.wrapping_mul(*cc))
                {
                    Some(i) if !found.contains(&i) => found.push(i),
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let Some(iv) = form_interval(cf, env) else {
                continue;
            };
            found.sort_unstable_by(|x, y| y.cmp(x));
            for i in found {
                terms.remove(i);
            }
            digits.push(Digit {
                kind: DigitKind::Group(cf.clone()),
                coef: m,
                width: iv.max - iv.min,
                has_v: self.form_has_v(cf),
                pinned: self.form_pinned(cf),
            });
        }
        for (atom, coef) in terms {
            let iv = atom_interval(&atom, env)?;
            let mut vars = Vec::new();
            crate::affine::atom_vars(&atom, &mut vars);
            digits.push(Digit {
                kind: DigitKind::Atom(atom),
                coef,
                width: iv.max - iv.min,
                has_v: vars
                    .iter()
                    .any(|id| *id == self.v.id() || self.tainted.contains(id)),
                pinned: !vars.is_empty() && vars.iter().all(|id| self.pinned.contains(id)),
            });
        }
        Some(digits)
    }

    fn form_has_v(&self, f: &LinForm) -> bool {
        let mut vars = Vec::new();
        f.vars(&mut vars);
        vars.iter()
            .any(|id| *id == self.v.id() || self.tainted.contains(id))
    }

    fn form_pinned(&self, f: &LinForm) -> bool {
        let mut vars = Vec::new();
        f.vars(&mut vars);
        !vars.is_empty() && vars.iter().all(|id| self.pinned.contains(id))
    }
}

struct Digit {
    kind: DigitKind,
    coef: i64,
    /// `range.max - range.min` of the digit's value.
    width: i64,
    has_v: bool,
    pinned: bool,
}

enum DigitKind {
    Atom(Atom),
    Group(LinForm),
}

fn enqueue_form(
    f: &LinForm,
    env: &RangeEnv<'_>,
    seen: &mut Vec<LinForm>,
    queue: &mut Vec<Vec<Digit>>,
    col: &Collector<'_>,
) {
    if seen.iter().any(|s| form_eq(s, f)) {
        return;
    }
    seen.push(f.clone());
    if let Some(digits) = col.digits_of(f, env) {
        queue.push(digits);
    }
}

/// Splits a guard list into its top-level `And` conjuncts, so that
/// `[a && b]` and `[b]` (an init store vs. the guarded update store of
/// the same nest) intersect on `b` rather than on nothing.
fn conjuncts(guards: &[Expr]) -> Vec<Expr> {
    fn split(e: &Expr, out: &mut Vec<Expr>) {
        if let ExprNode::And { a, b } = &*e.0 {
            split(a, out);
            split(b, out);
        } else {
            out.push(e.clone());
        }
    }
    let mut out = Vec::new();
    for g in guards {
        split(g, &mut out);
    }
    out
}

fn intersect_guards(a: &[Expr], b: &[Expr]) -> Vec<Expr> {
    let cb = conjuncts(b);
    conjuncts(a)
        .into_iter()
        .filter(|g| cb.iter().any(|h| g.structural_eq(h)))
        .collect()
}

fn loads_of(e: &Expr, out: &mut HashSet<VarId>) {
    match &*e.0 {
        ExprNode::IntImm { .. }
        | ExprNode::FloatImm { .. }
        | ExprNode::StringImm(_)
        | ExprNode::Var(_) => {}
        ExprNode::Cast { value, .. } => loads_of(value, out),
        ExprNode::Binary { a, b, .. }
        | ExprNode::Cmp { a, b, .. }
        | ExprNode::And { a, b }
        | ExprNode::Or { a, b } => {
            loads_of(a, out);
            loads_of(b, out);
        }
        ExprNode::Not { a } => loads_of(a, out),
        ExprNode::Select {
            cond,
            then_case,
            else_case,
        } => {
            loads_of(cond, out);
            loads_of(then_case, out);
            loads_of(else_case, out);
        }
        ExprNode::Load {
            buffer,
            index,
            predicate,
        } => {
            out.insert(buffer.id());
            loads_of(index, out);
            if let Some(p) = predicate {
                loads_of(p, out);
            }
        }
        ExprNode::Ramp { base, stride, .. } => {
            loads_of(base, out);
            loads_of(stride, out);
        }
        ExprNode::Broadcast { value, .. } => loads_of(value, out),
        ExprNode::Let { value, body, .. } => {
            loads_of(value, out);
            loads_of(body, out);
        }
        ExprNode::Call { args, .. } => {
            for a in args {
                loads_of(a, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_ir::{DType, ThreadTag};

    fn f32buf(name: &str) -> Var {
        Var::new(name, DType::float32())
    }

    fn par(var: &Var, extent: i64, body: Stmt) -> Stmt {
        Stmt::loop_(var, 0, extent, ForKind::Parallel, body)
    }

    #[test]
    fn disjoint_parallel_rows_are_clean() {
        let c = f32buf("C");
        let i = Var::int("i");
        let j = Var::int("j");
        let store = Stmt::store(&c, i.clone() * 8 + j.clone(), Expr::f32(0.0));
        let body = par(&i, 4, Stmt::for_(&j, 0, 8, store));
        assert!(check(&body, &[c]).is_empty());
    }

    #[test]
    fn overlapping_parallel_writes_race() {
        let c = f32buf("C");
        let i = Var::int("i");
        // every iteration writes C[0]
        let body = par(
            &i,
            4,
            Stmt::store(&c, Expr::int(0), i.to_expr().cast(DType::float32())),
        );
        let diags = check(&body, &[c]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("write-write"));
    }

    #[test]
    fn read_modify_write_same_element_is_clean() {
        let c = f32buf("C");
        let i = Var::int("i");
        let k = Var::int("k");
        // C[i] += k — reduction over serial k is fine under parallel i.
        let upd = Stmt::store(
            &c,
            i.to_expr(),
            Expr::load(&c, i.to_expr()) + k.to_expr().cast(DType::float32()),
        );
        let body = par(&i, 4, Stmt::for_(&k, 0, 3, upd));
        assert!(check(&body, &[c]).is_empty());
    }

    #[test]
    fn cross_iteration_read_races() {
        let c = f32buf("C");
        let d = f32buf("D");
        let i = Var::int("i");
        // D[i] = C[i]; C[(i+1) % 4] = 0  — read/write overlap across iters.
        let body = par(
            &i,
            4,
            Stmt::seq(vec![
                Stmt::store(&d, i.to_expr(), Expr::load(&c, i.to_expr())),
                Stmt::store(&c, (i.clone() + 1) % 4, Expr::f32(0.0)),
            ]),
        );
        let diags = check(&body, &[c, d]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`C`"));
    }

    #[test]
    fn fused_then_split_index_is_injective() {
        let c = f32buf("C");
        let fo = Var::int("fo");
        let fi = Var::int("fi");
        // f = fo*4 + fi; C[(f/8)*8 + f%8] — a fuse-then-split shape.
        let f = fo.clone() * 4 + fi.clone();
        let idx = f.clone() / 8 * 8 + f % 8;
        let body = par(
            &fo,
            8,
            Stmt::for_(&fi, 0, 4, Stmt::store(&c, idx, Expr::f32(0.0))),
        );
        assert!(check(&body, &[c]).is_empty());
    }

    #[test]
    fn guarded_tail_split_is_injective() {
        let c = f32buf("C");
        let io = Var::int("io");
        let ii = Var::int("ii");
        let j = Var::int("j");
        // i = io*4+ii ranges to 15 but the guard keeps i < 14; index
        // i*14 + j with |C| = 196. Without the guard grouping, the j
        // digit cannot be separated (4*14 + 13 overlaps); with it, the
        // index is injective in io.
        let i_expr = io.clone() * 4 + ii.clone();
        let idx = i_expr.clone() * 14 + j.clone();
        let store = Stmt::if_then(
            i_expr.lt(Expr::int(14)),
            Stmt::store(&c, idx, Expr::f32(0.0)),
        );
        let body = par(&io, 4, Stmt::for_(&ii, 0, 4, Stmt::for_(&j, 0, 14, store)));
        let diags = check(&body, &[c]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn init_and_guarded_update_share_tail_guard() {
        // The matmul shape a guarded reduction split produces: the init
        // store is guarded by `t < 10` alone, the update store by
        // `k < 14 && t < 10`. The init/update pair must intersect on the
        // shared conjunct or the tail guard is lost and `i0*10 + t`
        // cannot be separated (i0 has extent 12 > 10).
        let c = f32buf("C");
        let a = f32buf("A");
        let i0 = Var::int("i0");
        let i1o = Var::int("i1o");
        let i1i = Var::int("i1i");
        let ko = Var::int("ko");
        let ki = Var::int("ki");
        let t = i1o.clone() * 6 + i1i.clone();
        let k = ko.clone() * 5 + ki.clone();
        let idx = i0.clone() * 10 + t.clone();
        let init = Stmt::if_then(
            t.clone().lt(Expr::int(10)),
            Stmt::store(&c, idx.clone(), Expr::f32(0.0)),
        );
        let update = Stmt::if_then(
            k.clone().lt(Expr::int(14)).and(t.clone().lt(Expr::int(10))),
            Stmt::store(
                &c,
                idx.clone(),
                Expr::load(&c, idx) + Expr::load(&a, i0.clone() * 14 + k),
            ),
        );
        let kloop = Stmt::for_(&ko, 0, 3, Stmt::for_(&ki, 0, 5, update));
        let body = par(
            &i0,
            12,
            Stmt::for_(
                &i1o,
                0,
                2,
                Stmt::for_(&i1i, 0, 6, Stmt::seq(vec![init, kloop])),
            ),
        );
        let diags = check(&body, &[c, a]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uniform_redundant_writes_are_benign() {
        let p = f32buf("P");
        let a = f32buf("A");
        let tx = Var::int("tx");
        let u = Var::int("u");
        // Every thread fills P identically from input A, then reads its
        // own slot: idempotent under the lockstep model.
        let fill = Stmt::for_(
            &u,
            0,
            8,
            Stmt::store(&p, u.to_expr(), Expr::load(&a, u.to_expr())),
        );
        let use_ = Stmt::evaluate(Expr::load(&p, tx.to_expr()));
        let body = Stmt::loop_(
            &tx,
            0,
            4,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            Stmt::seq(vec![fill, use_]),
        );
        assert!(check(&body, &[p, a]).is_empty());
    }

    #[test]
    fn shared_fill_with_barrier_is_clean_without_is_racy() {
        let s = f32buf("S");
        let a = f32buf("A");
        let o = f32buf("O");
        let tx = Var::int("tx");
        let fill = Stmt::store(&s, tx.to_expr(), Expr::load(&a, tx.to_expr()));
        let read = Stmt::store(&o, tx.to_expr(), Expr::load(&s, (tx.clone() + 1) % 4));
        let mk = |with_barrier: bool| {
            let mut items = vec![fill.clone()];
            if with_barrier {
                items.push(Stmt::new(StmtNode::Barrier));
            }
            items.push(read.clone());
            let thread = Stmt::loop_(
                &tx,
                0,
                4,
                ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
                Stmt::seq(items),
            );
            Stmt::allocate(&s, DType::float32(), 4, MemScope::Shared, thread)
        };
        assert!(check(&mk(true), &[a.clone(), o.clone()]).is_empty());
        let diags = check(&mk(false), &[a, o]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`S`"));
    }

    #[test]
    fn lockstep_barriered_loop_checks_same_iteration_only() {
        let s = f32buf("S");
        let a = f32buf("A");
        let o = f32buf("O");
        let tx = Var::int("tx");
        let k = Var::int("k");
        // for k { barrier; S[tx] = A[k*4+tx]; barrier; O[...] = S[3-tx] }
        // Classic double-buffer-free tiling: safe because barriers keep
        // iterations in lockstep.
        let fill = Stmt::store(&s, tx.to_expr(), Expr::load(&a, k.clone() * 4 + tx.clone()));
        let use_ = Stmt::store(
            &o,
            k.clone() * 4 + tx.clone(),
            Expr::load(&s, Expr::int(3) - tx.clone()),
        );
        let kloop = Stmt::for_(
            &k,
            0,
            4,
            Stmt::seq(vec![
                Stmt::new(StmtNode::Barrier),
                fill,
                Stmt::new(StmtNode::Barrier),
                use_,
            ]),
        );
        let thread = Stmt::loop_(
            &tx,
            0,
            4,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            kloop,
        );
        let body = Stmt::allocate(&s, DType::float32(), 4, MemScope::Shared, thread);
        assert!(check(&body, &[a, o]).is_empty());
    }

    #[test]
    fn shared_is_per_block_for_block_axes() {
        let s = f32buf("S");
        let bx = Var::int("bx");
        // Each block writes S[0]: shared is per-block, no race.
        let thread = Stmt::loop_(
            &bx,
            0,
            4,
            ForKind::ThreadBinding(ThreadTag::BlockIdxX),
            Stmt::store(&s, Expr::int(0), Expr::f32(1.0)),
        );
        let body = Stmt::allocate(&s, DType::float32(), 4, MemScope::Shared, thread);
        assert!(check(&body, &[]).is_empty());
    }

    #[test]
    #[allow(clippy::erasing_op)] // the index must mention `vt` yet collapse both vthreads
    fn vthread_overlap_is_flagged() {
        let c = f32buf("C");
        let vt = Var::int("vt");
        let body = Stmt::loop_(
            &vt,
            0,
            2,
            ForKind::VThread,
            Stmt::store(&c, vt.to_expr() % 2 * 0, Expr::f32(0.0)),
        );
        let diags = check(&body, &[c]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
