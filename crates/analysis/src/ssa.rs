//! Pass 1: def-before-use / scope checking.
//!
//! Every `Var` referenced by an expression must be bound by an enclosing
//! `For`, `Let` (expression or statement), `Allocate`, or be a function
//! parameter. Binding the same variable again while it is still in scope
//! is an error (shadow-rebinding would make substitution-based passes
//! ambiguous). Rebinding in *disjoint sibling* scopes is explicitly
//! allowed: virtual-thread interleaving duplicates loops with their
//! original variables, and per-stage init loops reuse the stage's leaf
//! variables next to the main nest.

use std::collections::HashSet;

use tvm_ir::{Expr, ExprNode, Stmt, StmtNode, Var, VarId};

use crate::{Diagnostic, Severity};

/// Checks `body` with `params` pre-bound; returns scope violations.
pub fn check(body: &Stmt, params: &[Var]) -> Vec<Diagnostic> {
    let mut ck = Check {
        scope: params.iter().map(|p| p.id()).collect(),
        reported: HashSet::new(),
        diags: Vec::new(),
    };
    ck.stmt(body);
    ck.diags
}

struct Check {
    scope: HashSet<VarId>,
    /// (var, was_rebind) pairs already reported, to avoid spam.
    reported: HashSet<(VarId, bool)>,
    diags: Vec<Diagnostic>,
}

impl Check {
    fn use_var(&mut self, v: &Var) {
        if !self.scope.contains(&v.id()) && self.reported.insert((v.id(), false)) {
            self.diags.push(Diagnostic {
                pass: "ssa",
                severity: Severity::Error,
                message: format!("use of variable `{}` with no enclosing binding", v.name()),
                witness: None,
            });
        }
    }

    /// Binds `v`, reporting a rebind if already in scope. Returns whether
    /// the caller owns the binding (and must unbind on scope exit).
    fn bind(&mut self, v: &Var) -> bool {
        if self.scope.insert(v.id()) {
            true
        } else {
            if self.reported.insert((v.id(), true)) {
                self.diags.push(Diagnostic {
                    pass: "ssa",
                    severity: Severity::Error,
                    message: format!("variable `{}` rebound while still in scope", v.name()),
                    witness: None,
                });
            }
            false
        }
    }

    fn unbind(&mut self, v: &Var, owned: bool) {
        if owned {
            self.scope.remove(&v.id());
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &*s.0 {
            StmtNode::LetStmt { var, value, body } => {
                self.expr(value);
                let owned = self.bind(var);
                self.stmt(body);
                self.unbind(var, owned);
            }
            StmtNode::AttrStmt { value, body, .. } => {
                self.expr(value);
                self.stmt(body);
            }
            StmtNode::Store {
                buffer,
                index,
                value,
                predicate,
            } => {
                self.use_var(buffer);
                self.expr(index);
                self.expr(value);
                if let Some(p) = predicate {
                    self.expr(p);
                }
            }
            StmtNode::Allocate {
                buffer,
                extent,
                body,
                ..
            } => {
                self.expr(extent);
                let owned = self.bind(buffer);
                self.stmt(body);
                self.unbind(buffer, owned);
            }
            StmtNode::For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                // The loop variable is not in scope in its own bounds.
                self.expr(min);
                self.expr(extent);
                let owned = self.bind(var);
                self.stmt(body);
                self.unbind(var, owned);
            }
            StmtNode::Seq(items) => {
                for item in items {
                    self.stmt(item);
                }
            }
            StmtNode::IfThenElse {
                cond,
                then_case,
                else_case,
            } => {
                self.expr(cond);
                self.stmt(then_case);
                if let Some(e) = else_case {
                    self.stmt(e);
                }
            }
            StmtNode::Evaluate(e) => self.expr(e),
            StmtNode::Barrier | StmtNode::PushDep { .. } | StmtNode::PopDep { .. } => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &*e.0 {
            ExprNode::IntImm { .. } | ExprNode::FloatImm { .. } | ExprNode::StringImm(_) => {}
            ExprNode::Var(v) => self.use_var(v),
            ExprNode::Cast { value, .. } => self.expr(value),
            ExprNode::Binary { a, b, .. }
            | ExprNode::Cmp { a, b, .. }
            | ExprNode::And { a, b }
            | ExprNode::Or { a, b } => {
                self.expr(a);
                self.expr(b);
            }
            ExprNode::Not { a } => self.expr(a),
            ExprNode::Select {
                cond,
                then_case,
                else_case,
            } => {
                self.expr(cond);
                self.expr(then_case);
                self.expr(else_case);
            }
            ExprNode::Load {
                buffer,
                index,
                predicate,
            } => {
                self.use_var(buffer);
                self.expr(index);
                if let Some(p) = predicate {
                    self.expr(p);
                }
            }
            ExprNode::Ramp { base, stride, .. } => {
                self.expr(base);
                self.expr(stride);
            }
            ExprNode::Broadcast { value, .. } => self.expr(value),
            ExprNode::Let { var, value, body } => {
                self.expr(value);
                let owned = self.bind(var);
                self.expr(body);
                self.unbind(var, owned);
            }
            ExprNode::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm_ir::DType;

    #[test]
    fn unbound_use_is_flagged_once() {
        let out = Var::new("out", DType::float32());
        let j = Var::int("j");
        let body = Stmt::seq(vec![
            Stmt::store(&out, j.to_expr(), Expr::f32(1.0)),
            Stmt::store(&out, j.to_expr() + 1, Expr::f32(2.0)),
        ]);
        let diags = check(&body, &[out]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`j`"));
    }

    #[test]
    fn sibling_rebinding_is_allowed() {
        let out = Var::new("out", DType::float32());
        let i = Var::int("i");
        let loop1 = Stmt::for_(&i, 0, 4, Stmt::store(&out, i.to_expr(), Expr::f32(0.0)));
        let loop2 = Stmt::for_(&i, 0, 4, Stmt::store(&out, i.to_expr(), Expr::f32(1.0)));
        let diags = check(&Stmt::seq(vec![loop1, loop2]), &[out]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn nested_rebinding_is_flagged() {
        let out = Var::new("out", DType::float32());
        let i = Var::int("i");
        let inner = Stmt::for_(&i, 0, 4, Stmt::store(&out, i.to_expr(), Expr::f32(0.0)));
        let outer = Stmt::for_(&i, 0, 4, inner);
        let diags = check(&outer, &[out]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("rebound"));
    }

    #[test]
    fn loop_var_not_in_scope_in_its_own_extent() {
        let out = Var::new("out", DType::float32());
        let i = Var::int("i");
        let body = Stmt::loop_(
            &i,
            0,
            i.to_expr(),
            tvm_ir::ForKind::Serial,
            Stmt::store(&out, i.to_expr(), Expr::f32(0.0)),
        );
        let diags = check(&body, &[out]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
