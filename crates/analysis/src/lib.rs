//! `tvm-analysis` — static verification of lowered `tvm-ir` programs.
//!
//! Upstream TVM guards its lowering pipeline with `VerifySSA`,
//! `VerifyMemory` and `VerifyGPUCode`; this crate is the equivalent for
//! our IR. Four passes run over a [`LoweredFunc`] body (or any closed
//! `Stmt` given its free buffer parameters):
//!
//! 1. [`ssa`] — def-before-use scoping: every `Var` referenced must be
//!    bound by an enclosing `For` / `Let` / `LetStmt` / `Allocate` (or be
//!    a parameter), and a variable may not be rebound while in scope.
//!    Rebinding in *disjoint sibling* scopes is legal — virtual-thread
//!    interleaving and per-stage init loops reuse leaf variables.
//! 2. [`bounds`] — buffer-bounds verification with `ir::interval`: every
//!    `Load` / `Store` index is classified [`Verdict::Proven`] (interval
//!    analysis shows it inside `[0, extent)`), [`Verdict::Refuted`] (a
//!    concrete in-range, guard-satisfying assignment drives the index out
//!    of bounds — reported with that witness), or [`Verdict::Unknown`].
//! 3. [`race`] — a data-race detector for `Parallel` / `Vectorized` /
//!    `VThread` / thread-bound loops: per-iteration may-read/may-write
//!    sets on non-private buffers, with barrier-aware phase splitting for
//!    thread-bound loops and an affine disjointness prover for the
//!    `split` / `fuse` index shapes schedules produce.
//! 4. [`sync`] — memory-scope / synchronization legality: no `Barrier`
//!    under thread-divergent control flow, and no read of a cooperatively
//!    filled `shared` buffer before a barrier publishes the fill.
//!
//! Diagnostics carry the pass name, a severity, and (for bounds
//! refutations and races) a witness string. Messages only ever name
//! variables and buffers by their display name, so diagnostic output is
//! stable across runs and suitable for golden-file tests.
//!
//! The *graph layer* has a sibling suite in `tvm_graph::verify` (it
//! cannot live here — `tvm-graph` sits above `tvm-te`, which depends on
//! this crate). Those passes (`memplan`, `fusion`, `slot-contract`)
//! reuse this crate's [`Diagnostic`] type and the [`bounds`] machinery,
//! so diagnostics from both layers render, sort and golden-test
//! identically.

pub mod affine;
pub mod bounds;
pub mod race;
pub mod ssa;
pub mod sync;

use std::fmt;

use tvm_ir::{LoweredFunc, Stmt, Var};

/// How bad a finding is. `Error` findings are definite rule violations;
/// `Warning` findings are suspicious but not provably wrong.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// Suspicious construct; analysis could not prove it wrong.
    Warning,
    /// Definite violation (a witness or proof backs it).
    Error,
}

/// Outcome of one bounds check (pass 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Interval analysis proved the access in bounds.
    Proven,
    /// A concrete witness drives the access out of bounds.
    Refuted,
    /// Neither provable nor refutable with the available facts.
    Unknown,
}

/// One finding from one pass.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which pass produced it (`"ssa"`, `"bounds"`, `"race"`, `"sync"`).
    pub pass: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description; names variables/buffers, never ids.
    pub message: String,
    /// Concrete witness (bounds refutations) or offending index
    /// expressions (races), when available.
    pub witness: Option<String>,
}

impl Diagnostic {
    /// Error-severity finding, optionally carrying a concrete witness.
    pub fn error(pass: &'static str, message: impl Into<String>, witness: Option<String>) -> Self {
        Diagnostic {
            pass,
            severity: Severity::Error,
            message: message.into(),
            witness,
        }
    }

    /// Warning-severity finding.
    pub fn warning(pass: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            pass,
            severity: Severity::Warning,
            message: message.into(),
            witness: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.pass, self.message)?;
        if let Some(w) = &self.witness {
            write!(f, " ({w})")?;
        }
        Ok(())
    }
}

/// Which passes to run.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisOptions {
    /// Pass 1: def-before-use / scope checking.
    pub ssa: bool,
    /// Pass 2: buffer-bounds verification.
    pub bounds: bool,
    /// Pass 3: data-race detection.
    pub race: bool,
    /// Pass 4: barrier / memory-scope legality.
    pub sync: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            ssa: true,
            bounds: true,
            race: true,
            sync: true,
        }
    }
}

impl AnalysisOptions {
    /// All four passes (what `tvm-lint` and the fuzzing oracle run).
    pub fn all() -> Self {
        AnalysisOptions::default()
    }

    /// The cheap subset run after every lowering stage in debug builds
    /// (`ssa` + `bounds` + `sync`; the race prover is reserved for lint
    /// and the fuzzing oracle).
    pub fn lowering_hook() -> Self {
        AnalysisOptions {
            race: false,
            ..AnalysisOptions::default()
        }
    }
}

/// Aggregate result of an analysis run.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Bounds checks attempted (pass 2).
    pub bounds_checked: usize,
    /// Bounds checks proven in range.
    pub bounds_proven: usize,
    /// Bounds checks refuted with a witness.
    pub bounds_refuted: usize,
    /// Bounds checks neither proven nor refuted.
    pub bounds_unknown: usize,
}

impl AnalysisReport {
    /// Error-severity findings only.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// True when any pass produced an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// One line per diagnostic plus a bounds summary, for logs and golden
    /// files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "bounds: {} checked, {} proven, {} refuted, {} unknown\n",
            self.bounds_checked, self.bounds_proven, self.bounds_refuted, self.bounds_unknown
        ));
        out
    }
}

/// Runs all passes over a lowered function.
pub fn analyze_func(f: &LoweredFunc) -> AnalysisReport {
    analyze_func_with(f, &AnalysisOptions::all())
}

/// Runs the selected passes over a lowered function.
pub fn analyze_func_with(f: &LoweredFunc, opts: &AnalysisOptions) -> AnalysisReport {
    analyze_stmt(&f.body, &f.params, &f.param_extents, opts)
}

/// Runs the selected passes over a closed statement whose free buffer
/// variables are `params` (with `param_extents[i]` elements each; extents
/// beyond `params.len()` are ignored, extra params get unknown extents).
pub fn analyze_stmt(
    body: &Stmt,
    params: &[Var],
    param_extents: &[usize],
    opts: &AnalysisOptions,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    if opts.ssa {
        report.diagnostics.extend(ssa::check(body, params));
    }
    if opts.bounds {
        let (diags, stats) = bounds::check(body, params, param_extents);
        report.diagnostics.extend(diags);
        report.bounds_checked = stats.checked;
        report.bounds_proven = stats.proven;
        report.bounds_refuted = stats.refuted;
        report.bounds_unknown = stats.unknown;
    }
    if opts.race {
        report.diagnostics.extend(race::check(body, params));
    }
    if opts.sync {
        report.diagnostics.extend(sync::check(body, params));
    }
    report
}
