//! Affine index machinery shared by the bounds and race passes.
//!
//! Lowered index expressions are sums of scaled *atoms*: loop variables,
//! and floor-div / floor-mod of a nested affine form by a positive
//! constant — exactly the shapes `split` and `fuse` produce. This module
//! normalizes expressions into that form ([`normalize`]), evaluates the
//! interval of a form under variable ranges and guard-derived upper
//! bounds ([`form_interval`]), extracts those upper bounds from guard
//! predicates ([`guard_constraints`]), and concretely evaluates integer
//! expressions under a full assignment ([`eval_const`]) for bounds
//! witnesses.

use std::cmp::Ordering;
use std::collections::HashMap;

use tvm_ir::{floor_div, floor_mod, BinOp, CmpOp, Expr, ExprNode, Interval, Var, VarId};

/// An opaque term of a linear form.
#[derive(Clone, Debug)]
pub enum Atom {
    /// A loop / let variable.
    Var(Var),
    /// `floor(form / c)` for a positive constant `c`.
    Div(Box<LinForm>, i64),
    /// `form mod c` (floor modulus) for a positive constant `c`.
    Mod(Box<LinForm>, i64),
}

/// `konst + sum(coef_i * atom_i)` with canonically sorted, merged terms.
#[derive(Clone, Debug)]
pub struct LinForm {
    /// Scaled atoms, sorted by [`cmp_atom`], no zero coefficients.
    pub terms: Vec<(Atom, i64)>,
    /// Constant offset.
    pub konst: i64,
}

/// Total order on atoms (variables by id, then structure).
pub fn cmp_atom(a: &Atom, b: &Atom) -> Ordering {
    match (a, b) {
        (Atom::Var(x), Atom::Var(y)) => x.id().cmp(&y.id()),
        (Atom::Var(_), _) => Ordering::Less,
        (_, Atom::Var(_)) => Ordering::Greater,
        (Atom::Div(f, c), Atom::Div(g, d)) | (Atom::Mod(f, c), Atom::Mod(g, d)) => {
            c.cmp(d).then_with(|| cmp_form(f, g))
        }
        (Atom::Div(..), Atom::Mod(..)) => Ordering::Less,
        (Atom::Mod(..), Atom::Div(..)) => Ordering::Greater,
    }
}

/// Total order on forms (lexicographic over terms, then constant).
pub fn cmp_form(a: &LinForm, b: &LinForm) -> Ordering {
    let n = a.terms.len().cmp(&b.terms.len());
    if n != Ordering::Equal {
        return n;
    }
    for ((aa, ca), (ab, cb)) in a.terms.iter().zip(&b.terms) {
        let o = cmp_atom(aa, ab).then(ca.cmp(cb));
        if o != Ordering::Equal {
            return o;
        }
    }
    a.konst.cmp(&b.konst)
}

/// Structural equality of atoms.
pub fn atom_eq(a: &Atom, b: &Atom) -> bool {
    cmp_atom(a, b) == Ordering::Equal
}

/// Structural equality of forms.
pub fn form_eq(a: &LinForm, b: &LinForm) -> bool {
    cmp_form(a, b) == Ordering::Equal
}

impl LinForm {
    /// The constant form.
    pub fn constant(c: i64) -> Self {
        LinForm {
            terms: Vec::new(),
            konst: c,
        }
    }

    /// A single unscaled variable.
    pub fn var(v: &Var) -> Self {
        LinForm {
            terms: vec![(Atom::Var(v.clone()), 1)],
            konst: 0,
        }
    }

    /// `Some(k)` when the form has no atoms.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// Multiplies every term and the constant by `k`.
    pub fn scaled(&self, k: i64) -> LinForm {
        if k == 0 {
            return LinForm::constant(0);
        }
        LinForm {
            terms: self
                .terms
                .iter()
                .map(|(a, c)| (a.clone(), c.wrapping_mul(k)))
                .collect(),
            konst: self.konst.wrapping_mul(k),
        }
    }

    /// Canonical sum of two forms (terms merged, zeros dropped).
    pub fn add(&self, other: &LinForm) -> LinForm {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        terms.sort_by(|(a, _), (b, _)| cmp_atom(a, b));
        let mut merged: Vec<(Atom, i64)> = Vec::with_capacity(terms.len());
        for (a, c) in terms {
            match merged.last_mut() {
                Some((last, lc)) if atom_eq(last, &a) => *lc = lc.wrapping_add(c),
                _ => merged.push((a, c)),
            }
        }
        merged.retain(|(_, c)| *c != 0);
        LinForm {
            terms: merged,
            konst: self.konst.wrapping_add(other.konst),
        }
    }

    /// All root variables mentioned (transitively through div/mod atoms).
    pub fn vars(&self, out: &mut Vec<VarId>) {
        for (a, _) in &self.terms {
            atom_vars(a, out);
        }
    }
}

/// Root variables of an atom.
pub fn atom_vars(a: &Atom, out: &mut Vec<VarId>) {
    match a {
        Atom::Var(v) => {
            if !out.contains(&v.id()) {
                out.push(v.id());
            }
        }
        Atom::Div(f, _) | Atom::Mod(f, _) => f.vars(out),
    }
}

/// Normalizes an integer expression into a [`LinForm`]. Returns `None`
/// for non-affine shapes (loads, min/max, non-constant divisors, ...).
pub fn normalize(e: &Expr) -> Option<LinForm> {
    match &*e.0 {
        ExprNode::IntImm { value, .. } => Some(LinForm::constant(*value)),
        ExprNode::Var(v) => Some(LinForm::var(v)),
        ExprNode::Cast { dtype, value } if dtype.is_int() => normalize(value),
        ExprNode::Binary { op, a, b } => {
            let op = *op;
            match op {
                BinOp::Add => Some(normalize(a)?.add(&normalize(b)?)),
                BinOp::Sub => Some(normalize(a)?.add(&normalize(b)?.scaled(-1))),
                BinOp::Mul => {
                    let fa = normalize(a)?;
                    let fb = normalize(b)?;
                    if let Some(k) = fa.as_const() {
                        Some(fb.scaled(k))
                    } else {
                        fb.as_const().map(|k| fa.scaled(k))
                    }
                }
                BinOp::Div | BinOp::Mod => {
                    let c = normalize(b)?.as_const()?;
                    if c <= 0 {
                        return None;
                    }
                    let fa = normalize(a)?;
                    if let Some(k) = fa.as_const() {
                        return Some(LinForm::constant(if op == BinOp::Div {
                            floor_div(k, c)
                        } else {
                            floor_mod(k, c)
                        }));
                    }
                    if c == 1 {
                        return Some(if op == BinOp::Div {
                            fa
                        } else {
                            LinForm::constant(0)
                        });
                    }
                    let atom = if op == BinOp::Div {
                        Atom::Div(Box::new(fa), c)
                    } else {
                        Atom::Mod(Box::new(fa), c)
                    };
                    Some(LinForm {
                        terms: vec![(atom, 1)],
                        konst: 0,
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Variable ranges plus guard-derived upper bounds, for interval queries
/// on forms.
pub struct RangeEnv<'a> {
    /// Closed range of each variable.
    pub ranges: &'a HashMap<VarId, Interval>,
    /// `form <= bound` facts extracted from enclosing guards.
    pub constraints: &'a [(LinForm, i64)],
}

/// Interval of an atom under the environment.
pub fn atom_interval(a: &Atom, env: &RangeEnv<'_>) -> Option<Interval> {
    match a {
        Atom::Var(v) => env.ranges.get(&v.id()).copied(),
        Atom::Div(f, c) => form_interval(f, env).map(|iv| Interval {
            min: floor_div(iv.min, *c),
            max: floor_div(iv.max, *c),
        }),
        Atom::Mod(f, c) => {
            if let Some(iv) = form_interval(f, env) {
                // Exact when the numerator stays within one period.
                if floor_div(iv.min, *c) == floor_div(iv.max, *c) {
                    return Some(Interval {
                        min: floor_mod(iv.min, *c),
                        max: floor_mod(iv.max, *c),
                    });
                }
            }
            Some(Interval {
                min: 0,
                max: *c - 1,
            })
        }
    }
}

/// Interval of a form: sum of scaled atom intervals, clamped by any
/// matching guard constraint. `None` when a variable has no known range
/// or a guard makes the site unreachable.
pub fn form_interval(f: &LinForm, env: &RangeEnv<'_>) -> Option<Interval> {
    let mut lo = f.konst as i128;
    let mut hi = f.konst as i128;
    for (a, c) in &f.terms {
        let iv = atom_interval(a, env)?;
        let (tlo, thi) = if *c >= 0 {
            (iv.min as i128 * *c as i128, iv.max as i128 * *c as i128)
        } else {
            (iv.max as i128 * *c as i128, iv.min as i128 * *c as i128)
        };
        lo += tlo;
        hi += thi;
    }
    for (cf, ub) in env.constraints {
        if form_eq(cf, f) {
            hi = hi.min(*ub as i128);
        }
    }
    if lo > hi {
        return None;
    }
    let clamp = |x: i128| x.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
    Some(Interval {
        min: clamp(lo),
        max: clamp(hi),
    })
}

/// Extracts `form <= bound` facts from a guard conjunction. Only
/// upper-bound comparisons against constants are kept (lower bounds are
/// already captured by loop ranges).
pub fn guard_constraints(guards: &[Expr]) -> Vec<(LinForm, i64)> {
    let mut out = Vec::new();
    for g in guards {
        collect_constraints(g, &mut out);
    }
    out
}

fn collect_constraints(g: &Expr, out: &mut Vec<(LinForm, i64)>) {
    match &*g.0 {
        ExprNode::And { a, b } => {
            collect_constraints(a, out);
            collect_constraints(b, out);
        }
        ExprNode::Cmp { op, a, b } => {
            let (form, bound) = if let Some(k) = b.as_int() {
                match op {
                    CmpOp::Lt => (normalize(a), k - 1),
                    CmpOp::Le => (normalize(a), k),
                    _ => (None, 0),
                }
            } else if let Some(k) = a.as_int() {
                match op {
                    CmpOp::Gt => (normalize(b), k - 1),
                    CmpOp::Ge => (normalize(b), k),
                    _ => (None, 0),
                }
            } else {
                (None, 0)
            };
            if let Some(f) = form {
                if !f.terms.is_empty() {
                    // Fold the form's own constant into the bound so that
                    // `x + 2 <= 9` stores `x <= 7`.
                    let k = f.konst;
                    out.push((
                        LinForm {
                            terms: f.terms,
                            konst: 0,
                        },
                        bound - k,
                    ));
                }
            }
        }
        _ => {}
    }
}

/// Concretely evaluates an integer expression under a full assignment.
/// Returns `None` on loads, calls, floats, missing variables, division
/// by zero or overflow — witness search simply skips such points.
pub fn eval_const(e: &Expr, env: &HashMap<VarId, i64>) -> Option<i64> {
    match &*e.0 {
        ExprNode::IntImm { value, .. } => Some(*value),
        ExprNode::Var(v) => env.get(&v.id()).copied(),
        ExprNode::Cast { dtype, value } if dtype.is_int() => eval_const(value, env),
        ExprNode::Binary { op, a, b } => {
            let x = eval_const(a, env)?;
            let y = eval_const(b, env)?;
            match op {
                BinOp::Add => x.checked_add(y),
                BinOp::Sub => x.checked_sub(y),
                BinOp::Mul => x.checked_mul(y),
                BinOp::Div => (y != 0).then(|| floor_div(x, y)),
                BinOp::Mod => (y != 0).then(|| floor_mod(x, y)),
                BinOp::Min => Some(x.min(y)),
                BinOp::Max => Some(x.max(y)),
                BinOp::BitAnd => Some(x & y),
                BinOp::BitOr => Some(x | y),
                BinOp::BitXor => Some(x ^ y),
                BinOp::Shl => (0..64).contains(&y).then(|| x.wrapping_shl(y as u32)),
                BinOp::Shr => (0..64).contains(&y).then(|| x.wrapping_shr(y as u32)),
            }
        }
        ExprNode::Cmp { op, a, b } => {
            let x = eval_const(a, env)?;
            let y = eval_const(b, env)?;
            let r = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            };
            Some(r as i64)
        }
        ExprNode::And { a, b } => {
            Some((eval_const(a, env)? != 0 && eval_const(b, env)? != 0) as i64)
        }
        ExprNode::Or { a, b } => {
            Some((eval_const(a, env)? != 0 || eval_const(b, env)? != 0) as i64)
        }
        ExprNode::Not { a } => Some((eval_const(a, env)? == 0) as i64),
        ExprNode::Select {
            cond,
            then_case,
            else_case,
        } => {
            if eval_const(cond, env)? != 0 {
                eval_const(then_case, env)
            } else {
                eval_const(else_case, env)
            }
        }
        ExprNode::Let { var, value, body } => {
            let v = eval_const(value, env)?;
            let mut inner = env.clone();
            inner.insert(var.id(), v);
            eval_const(body, &inner)
        }
        ExprNode::Broadcast { value, .. } => eval_const(value, env),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(min: i64, max: i64) -> Interval {
        Interval { min, max }
    }

    #[test]
    fn normalize_split_fuse_shapes() {
        let x = Var::int("x");
        let y = Var::int("y");
        // (x*4 + y) and its div/mod decomposition.
        let fused = x.clone() * 4 + y.clone();
        let f = normalize(&fused).unwrap();
        assert_eq!(f.terms.len(), 2);
        assert_eq!(f.konst, 0);

        let outer = fused.clone() / 8;
        let fo = normalize(&outer).unwrap();
        assert_eq!(fo.terms.len(), 1);
        assert!(matches!(fo.terms[0].0, Atom::Div(_, 8)));

        let inner = fused % 8;
        let fi = normalize(&inner).unwrap();
        assert!(matches!(fi.terms[0].0, Atom::Mod(_, 8)));
    }

    #[test]
    fn normalize_merges_and_cancels() {
        let x = Var::int("x");
        let e = x.clone() * 3 + x.clone() * 2 - x.clone() * 5 + 7;
        let f = normalize(&e).unwrap();
        assert_eq!(f.as_const(), Some(7));
    }

    #[test]
    fn form_intervals_respect_ranges_and_constraints() {
        let x = Var::int("x");
        let y = Var::int("y");
        let mut ranges = HashMap::new();
        ranges.insert(x.id(), iv(0, 3));
        ranges.insert(y.id(), iv(0, 3));
        let fused = normalize(&(x.clone() * 4 + y.clone())).unwrap();

        let env = RangeEnv {
            ranges: &ranges,
            constraints: &[],
        };
        assert_eq!(form_interval(&fused, &env), Some(iv(0, 15)));

        // Guard `x*4 + y < 14` tightens the upper bound.
        let guards = [(x.clone() * 4 + y.clone()).lt(Expr::int(14))];
        let cs = guard_constraints(&guards);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].1, 13);
        let env = RangeEnv {
            ranges: &ranges,
            constraints: &cs,
        };
        assert_eq!(form_interval(&fused, &env), Some(iv(0, 13)));
    }

    #[test]
    fn mod_interval_exact_within_one_period() {
        let x = Var::int("x");
        let mut ranges = HashMap::new();
        ranges.insert(x.id(), iv(8, 10));
        let f = normalize(&(x.clone() % 16)).unwrap();
        let env = RangeEnv {
            ranges: &ranges,
            constraints: &[],
        };
        assert_eq!(form_interval(&f, &env), Some(iv(8, 10)));
    }

    #[test]
    fn eval_const_handles_floor_semantics() {
        let x = Var::int("x");
        let mut env = HashMap::new();
        env.insert(x.id(), -7i64);
        assert_eq!(eval_const(&(x.clone() / 4), &env), Some(-2));
        assert_eq!(eval_const(&(x.clone() % 4), &env), Some(1));
        let sel = Expr::select(x.to_expr().lt(Expr::int(0)), Expr::int(1), Expr::int(2));
        assert_eq!(eval_const(&sel, &env), Some(1));
    }
}
