//! Scalar and vector data types of the low-level IR.
//!
//! TVM programs manipulate fixed-width numeric types, including sub-byte
//! quantized integers (`uint1`/`uint2`, used by the ultra-low-precision
//! operators of §6.2) and half-precision floats (Mali evaluation, Fig. 19).

use std::fmt;

/// The kind of a numeric type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum TypeCode {
    /// Signed two's-complement integer.
    Int,
    /// Unsigned integer (including sub-byte widths 1, 2, 4).
    UInt,
    /// IEEE-754 binary float (16, 32 or 64 bits).
    Float,
}

/// A (possibly vectorized) numeric data type: a type code, a bit width and a
/// lane count.
///
/// `lanes > 1` denotes a short SIMD vector, as produced by the `vectorize`
/// schedule primitive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DType {
    /// Scalar kind.
    pub code: TypeCode,
    /// Bits per lane. Sub-byte widths (1, 2, 4) are legal for `UInt`.
    pub bits: u8,
    /// Number of SIMD lanes; 1 for scalars.
    pub lanes: u16,
}

impl DType {
    /// Creates a scalar type from a code and bit width.
    pub const fn new(code: TypeCode, bits: u8) -> Self {
        DType {
            code,
            bits,
            lanes: 1,
        }
    }

    /// `bool` is represented as `uint1`.
    pub const fn bool_() -> Self {
        DType::new(TypeCode::UInt, 1)
    }

    /// Signed 8-bit integer.
    pub const fn int8() -> Self {
        DType::new(TypeCode::Int, 8)
    }

    /// Signed 16-bit integer.
    pub const fn int16() -> Self {
        DType::new(TypeCode::Int, 16)
    }

    /// Signed 32-bit integer — the default index type.
    pub const fn int32() -> Self {
        DType::new(TypeCode::Int, 32)
    }

    /// Signed 64-bit integer.
    pub const fn int64() -> Self {
        DType::new(TypeCode::Int, 64)
    }

    /// Unsigned integer of the given width (1, 2, 4, 8, 16, 32 or 64 bits).
    pub const fn uint(bits: u8) -> Self {
        DType::new(TypeCode::UInt, bits)
    }

    /// IEEE half-precision float.
    pub const fn float16() -> Self {
        DType::new(TypeCode::Float, 16)
    }

    /// IEEE single-precision float — the default compute type.
    pub const fn float32() -> Self {
        DType::new(TypeCode::Float, 32)
    }

    /// IEEE double-precision float.
    pub const fn float64() -> Self {
        DType::new(TypeCode::Float, 64)
    }

    /// Returns a copy of this type with `lanes` SIMD lanes.
    pub const fn with_lanes(self, lanes: u16) -> Self {
        DType { lanes, ..self }
    }

    /// Returns the scalar element type (lanes = 1).
    pub const fn element(self) -> Self {
        self.with_lanes(1)
    }

    /// True for `Int` and `UInt` codes.
    pub const fn is_int(self) -> bool {
        matches!(self.code, TypeCode::Int | TypeCode::UInt)
    }

    /// True for the `Float` code.
    pub const fn is_float(self) -> bool {
        matches!(self.code, TypeCode::Float)
    }

    /// True for the canonical boolean representation `uint1`.
    pub const fn is_bool(self) -> bool {
        matches!(self.code, TypeCode::UInt) && self.bits == 1
    }

    /// Storage size of one lane in bytes, rounding sub-byte types up.
    ///
    /// Sub-byte types are packed by the low-precision operators explicitly,
    /// so for allocation purposes a lone `uint2` still occupies one byte.
    pub const fn lane_bytes(self) -> usize {
        (self.bits as usize).div_ceil(8)
    }

    /// Storage size of the full vector in bytes.
    pub const fn bytes(self) -> usize {
        self.lane_bytes() * self.lanes as usize
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = match self.code {
            TypeCode::Int => "int",
            TypeCode::UInt => "uint",
            TypeCode::Float => "float",
        };
        if self.is_bool() && self.lanes == 1 {
            return write!(f, "bool");
        }
        write!(f, "{}{}", base, self.bits)?;
        if self.lanes > 1 {
            write!(f, "x{}", self.lanes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_names() {
        assert_eq!(DType::int32().to_string(), "int32");
        assert_eq!(DType::uint(1).to_string(), "bool");
        assert_eq!(DType::uint(2).to_string(), "uint2");
        assert_eq!(DType::float16().to_string(), "float16");
        assert_eq!(DType::float32().with_lanes(4).to_string(), "float32x4");
    }

    #[test]
    fn byte_sizes_round_sub_byte_up() {
        assert_eq!(DType::uint(1).lane_bytes(), 1);
        assert_eq!(DType::uint(2).lane_bytes(), 1);
        assert_eq!(DType::int32().lane_bytes(), 4);
        assert_eq!(DType::float32().with_lanes(8).bytes(), 32);
    }

    #[test]
    fn predicates() {
        assert!(DType::int8().is_int());
        assert!(!DType::float32().is_int());
        assert!(DType::float16().is_float());
        assert!(DType::bool_().is_bool());
        assert!(!DType::uint(8).is_bool());
    }
}
