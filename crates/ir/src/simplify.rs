//! Algebraic simplifier.
//!
//! Performs constant folding, identity elimination (`x+0`, `x*1`, `x*0`),
//! light affine canonicalization (`(x+c1)+c2 → x+(c1+c2)`), and — when
//! variable ranges are supplied — interval-based predicate elimination,
//! which is what lets lowering drop always-true bounds checks.

use std::collections::HashMap;

use crate::dtype::{DType, TypeCode};
use crate::expr::{BinOp, CmpOp, Expr, ExprNode, VarId};
use crate::interval::{eval_interval, floor_div, floor_mod, prove_cmp, Interval};
use crate::stmt::{Stmt, StmtNode};
use crate::visit::Mutator;

/// Simplifier with an optional variable-range context.
pub struct Simplifier {
    bounds: HashMap<VarId, Interval>,
}

impl Default for Simplifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Simplifier {
    /// Simplifier with no range information.
    pub fn new() -> Self {
        Simplifier {
            bounds: HashMap::new(),
        }
    }

    /// Simplifier that may use `bounds` to prove predicates.
    pub fn with_bounds(bounds: HashMap<VarId, Interval>) -> Self {
        Simplifier { bounds }
    }

    /// Registers a variable range.
    pub fn bind_range(&mut self, id: VarId, iv: Interval) {
        self.bounds.insert(id, iv);
    }

    fn fold_int_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
        Some(match op {
            BinOp::Add => a.checked_add(b)?,
            BinOp::Sub => a.checked_sub(b)?,
            BinOp::Mul => a.checked_mul(b)?,
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                floor_div(a, b)
            }
            BinOp::Mod => {
                if b == 0 {
                    return None;
                }
                floor_mod(a, b)
            }
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::BitAnd => a & b,
            BinOp::BitOr => a | b,
            BinOp::BitXor => a ^ b,
            BinOp::Shl => {
                if !(0..64).contains(&b) {
                    return None;
                }
                a.checked_shl(b as u32)?
            }
            BinOp::Shr => {
                if !(0..64).contains(&b) {
                    return None;
                }
                a >> b
            }
        })
    }

    fn fold_float_binop(op: BinOp, a: f64, b: f64) -> Option<f64> {
        Some(match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            _ => return None,
        })
    }

    fn simplify_binary(&mut self, op: BinOp, a: Expr, b: Expr) -> Expr {
        // Constant folding.
        if let (Some(x), Some(y)) = (a.as_int(), b.as_int()) {
            if let Some(v) = Self::fold_int_binop(op, x, y) {
                return Expr::int_of(v, a.dtype());
            }
        }
        if let (Some(x), Some(y)) = (a.as_float(), b.as_float()) {
            if let Some(v) = Self::fold_float_binop(op, x, y) {
                return Expr::new(ExprNode::FloatImm {
                    value: v,
                    dtype: a.dtype(),
                });
            }
        }
        // Canonicalize: move the constant to the right for commutative ops.
        let (a, b) = if op.commutative() && is_const(&a) && !is_const(&b) {
            (b, a)
        } else {
            (a, b)
        };
        let is_float = a.dtype().is_float();
        match op {
            BinOp::Add => {
                if is_zero(&b) {
                    return a;
                }
                if is_zero(&a) {
                    return b;
                }
                // (x + c1) + c2 -> x + (c1 + c2)
                if let (
                    Some(c2),
                    ExprNode::Binary {
                        op: BinOp::Add,
                        a: x,
                        b: c1e,
                    },
                ) = (b.as_int(), &*a.0)
                {
                    if let Some(c1) = c1e.as_int() {
                        if let Some(c) = c1.checked_add(c2) {
                            return self.simplify_binary(
                                BinOp::Add,
                                x.clone(),
                                Expr::int_of(c, x.dtype()),
                            );
                        }
                    }
                }
            }
            BinOp::Sub => {
                if is_zero(&b) {
                    return a;
                }
                if !is_float && a.structural_eq(&b) {
                    return Expr::zero(a.dtype());
                }
                // Affine cancellation: rebase expressions like
                // `(yo*8 + yi) - yo*8` produced by buffer-index rebasing.
                if !is_float {
                    if let (Some(la), Some(lb)) = (linearize(&a), linearize(&b)) {
                        if let Some(e) = rebuild_linear_diff(la, lb, a.dtype()) {
                            return e;
                        }
                    }
                }
            }
            BinOp::Mul => {
                if is_zero(&b) && !is_float {
                    return Expr::zero(a.dtype());
                }
                if is_one(&b) {
                    return a;
                }
                if is_zero(&a) && !is_float {
                    return Expr::zero(b.dtype());
                }
                if is_one(&a) {
                    return b;
                }
                // (x * c1) * c2 -> x * (c1 * c2)
                if let (
                    Some(c2),
                    ExprNode::Binary {
                        op: BinOp::Mul,
                        a: x,
                        b: c1e,
                    },
                ) = (b.as_int(), &*a.0)
                {
                    if let Some(c1) = c1e.as_int() {
                        if let Some(c) = c1.checked_mul(c2) {
                            return self.simplify_binary(
                                BinOp::Mul,
                                x.clone(),
                                Expr::int_of(c, x.dtype()),
                            );
                        }
                    }
                }
            }
            BinOp::Div => {
                if is_one(&b) {
                    return a;
                }
                // Interval: a in [0, b) -> a / b == 0.
                if let (Some(ia), Some(c)) = (eval_interval(&a, &self.bounds), b.as_int()) {
                    if c > 0 && ia.min >= 0 && ia.max < c {
                        return Expr::zero(a.dtype());
                    }
                }
            }
            BinOp::Mod => {
                if is_one(&b) && !is_float {
                    return Expr::zero(a.dtype());
                }
                // Interval: a in [0, b) -> a % b == a.
                if let (Some(ia), Some(c)) = (eval_interval(&a, &self.bounds), b.as_int()) {
                    if c > 0 && ia.min >= 0 && ia.max < c {
                        return a;
                    }
                }
            }
            BinOp::Min | BinOp::Max => {
                if a.structural_eq(&b) {
                    return a;
                }
                // Interval-proven dominance.
                if let (Some(ia), Some(ib)) = (
                    eval_interval(&a, &self.bounds),
                    eval_interval(&b, &self.bounds),
                ) {
                    match op {
                        BinOp::Min => {
                            if ia.max <= ib.min {
                                return a;
                            }
                            if ib.max <= ia.min {
                                return b;
                            }
                        }
                        BinOp::Max => {
                            if ia.min >= ib.max {
                                return a;
                            }
                            if ib.min >= ia.max {
                                return b;
                            }
                        }
                        _ => unreachable!(),
                    }
                }
            }
            _ => {}
        }
        Expr::binary(op, a, b)
    }

    fn simplify_cmp(&mut self, op: CmpOp, a: Expr, b: Expr) -> Expr {
        if let Some(v) = prove_cmp(op, &a, &b, &self.bounds) {
            return Expr::bool_(v);
        }
        Expr::cmp(op, a, b)
    }
}

/// A linear combination: atomic sub-expressions with integer coefficients
/// plus a constant.
type Linear = (Vec<(Expr, i64)>, i64);

/// Decomposes an integer expression into a linear combination of atomic
/// terms. Atoms are variables or non-affine sub-expressions compared
/// structurally. Returns `None` for floats or non-decomposable forms.
fn linearize(e: &Expr) -> Option<Linear> {
    if !e.dtype().is_int() {
        return None;
    }
    match &*e.0 {
        ExprNode::IntImm { value, .. } => Some((Vec::new(), *value)),
        ExprNode::Var(_) => Some((vec![(e.clone(), 1)], 0)),
        ExprNode::Binary {
            op: BinOp::Add,
            a,
            b,
        } => {
            let (ta, ca) = linearize(a)?;
            let (tb, cb) = linearize(b)?;
            Some((merge_terms(ta, tb, 1), ca.checked_add(cb)?))
        }
        ExprNode::Binary {
            op: BinOp::Sub,
            a,
            b,
        } => {
            let (ta, ca) = linearize(a)?;
            let (tb, cb) = linearize(b)?;
            Some((merge_terms(ta, tb, -1), ca.checked_sub(cb)?))
        }
        ExprNode::Binary {
            op: BinOp::Mul,
            a,
            b,
        } => {
            let (lin, c) = if let Some(c) = b.as_int() {
                (linearize(a)?, c)
            } else if let Some(c) = a.as_int() {
                (linearize(b)?, c)
            } else {
                // Non-affine product: treat as an atom.
                return Some((vec![(e.clone(), 1)], 0));
            };
            let (t, k) = lin;
            let t = t
                .into_iter()
                .map(|(a, co)| co.checked_mul(c).map(|nc| (a, nc)))
                .collect::<Option<Vec<_>>>()?;
            Some((t, k.checked_mul(c)?))
        }
        // Division, modulus, min/max, loads etc.: atomic terms.
        _ => Some((vec![(e.clone(), 1)], 0)),
    }
}

fn merge_terms(a: Vec<(Expr, i64)>, b: Vec<(Expr, i64)>, sign: i64) -> Vec<(Expr, i64)> {
    let mut out = a;
    'next: for (atom, coef) in b {
        let coef = coef * sign;
        for (ex, c) in out.iter_mut() {
            if ex.structural_eq(&atom) {
                *c += coef;
                continue 'next;
            }
        }
        out.push((atom, coef));
    }
    out.retain(|(_, c)| *c != 0);
    out
}

/// Rebuilds `la - lb` as a canonical sum if any term cancels; `None` when no
/// cancellation happens (keep the original tree to avoid churn).
fn rebuild_linear_diff(la: Linear, lb: Linear, dtype: DType) -> Option<Expr> {
    let before = la.0.len() + lb.0.len();
    let terms = merge_terms(la.0, lb.0, -1);
    let konst = la.1.checked_sub(lb.1)?;
    if terms.len() >= before {
        return None;
    }
    let mut acc: Option<Expr> = None;
    for (atom, coef) in terms {
        let piece = if coef == 1 {
            atom
        } else if coef == -1 {
            match acc.take() {
                Some(a) => {
                    acc = Some(Expr::binary(BinOp::Sub, a, atom));
                    continue;
                }
                None => Expr::binary(BinOp::Mul, atom, Expr::int_of(-1, dtype)),
            }
        } else if coef < 0 {
            match acc.take() {
                Some(a) => {
                    acc = Some(Expr::binary(
                        BinOp::Sub,
                        a,
                        Expr::binary(BinOp::Mul, atom, Expr::int_of(-coef, dtype)),
                    ));
                    continue;
                }
                None => Expr::binary(BinOp::Mul, atom, Expr::int_of(coef, dtype)),
            }
        } else {
            Expr::binary(BinOp::Mul, atom, Expr::int_of(coef, dtype))
        };
        acc = Some(match acc {
            Some(a) => Expr::binary(BinOp::Add, a, piece),
            None => piece,
        });
    }
    let base = acc.unwrap_or_else(|| Expr::zero(dtype));
    Some(if konst == 0 {
        base
    } else if konst > 0 {
        Expr::binary(BinOp::Add, base, Expr::int_of(konst, dtype))
    } else {
        Expr::binary(BinOp::Sub, base, Expr::int_of(-konst, dtype))
    })
}

fn is_const(e: &Expr) -> bool {
    matches!(&*e.0, ExprNode::IntImm { .. } | ExprNode::FloatImm { .. })
}

fn is_zero(e: &Expr) -> bool {
    e.as_int() == Some(0) || e.as_float() == Some(0.0)
}

fn is_one(e: &Expr) -> bool {
    e.as_int() == Some(1) || e.as_float() == Some(1.0)
}

impl Mutator for Simplifier {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        let e = self.default_mutate_expr(e);
        match &*e.0 {
            ExprNode::Binary { op, a, b } => self.simplify_binary(*op, a.clone(), b.clone()),
            ExprNode::Cmp { op, a, b } => self.simplify_cmp(*op, a.clone(), b.clone()),
            ExprNode::And { a, b } => {
                if a.is_const_int(1) {
                    return b.clone();
                }
                if b.is_const_int(1) {
                    return a.clone();
                }
                if a.is_const_int(0) || b.is_const_int(0) {
                    return Expr::bool_(false);
                }
                e
            }
            ExprNode::Or { a, b } => {
                if a.is_const_int(0) {
                    return b.clone();
                }
                if b.is_const_int(0) {
                    return a.clone();
                }
                if a.is_const_int(1) || b.is_const_int(1) {
                    return Expr::bool_(true);
                }
                e
            }
            ExprNode::Not { a } => match a.as_int() {
                Some(v) => Expr::bool_(v == 0),
                None => e,
            },
            ExprNode::Select {
                cond,
                then_case,
                else_case,
            } => match cond.as_int() {
                Some(0) => else_case.clone(),
                Some(_) => then_case.clone(),
                None => e,
            },
            ExprNode::Cast { dtype, value } => {
                if let Some(v) = value.as_int() {
                    if dtype.is_int() {
                        let folded = fold_int_cast(v, dtype.bits, dtype.code);
                        return Expr::int_of(folded, *dtype);
                    }
                    if dtype.is_float() {
                        return Expr::new(ExprNode::FloatImm {
                            value: v as f64,
                            dtype: *dtype,
                        });
                    }
                }
                if let Some(v) = value.as_float() {
                    if dtype.is_float() {
                        return Expr::new(ExprNode::FloatImm {
                            value: v,
                            dtype: *dtype,
                        });
                    }
                }
                e
            }
            _ => e,
        }
    }

    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        // Register loop-var ranges on the way down so nested predicates can
        // be discharged.
        if let StmtNode::For {
            var,
            min,
            extent,
            kind,
            body,
        } = &*s.0
        {
            let min_s = self.mutate_expr(min);
            let ext_s = self.mutate_expr(extent);
            if let (Some(lo), Some(n)) = (min_s.as_int(), ext_s.as_int()) {
                if n > 0 {
                    self.bounds.insert(var.id(), Interval::new(lo, lo + n - 1));
                }
            }
            let body_s = self.mutate_stmt(body);
            self.bounds.remove(&var.id());
            if ext_s.as_int() == Some(1) {
                // Single-iteration loop: inline the loop var.
                let mut m = HashMap::new();
                m.insert(var.id(), min_s);
                let inlined = crate::visit::substitute_stmt(&body_s, &m);
                return self.mutate_stmt(&inlined);
            }
            if ext_s.as_int() == Some(0) {
                return Stmt::nop();
            }
            return Stmt::loop_(var, min_s, ext_s, *kind, body_s);
        }
        let s = self.default_mutate_stmt(s);
        match &*s.0 {
            StmtNode::IfThenElse {
                cond,
                then_case,
                else_case,
            } => match cond.as_int() {
                Some(0) => else_case.clone().unwrap_or_else(Stmt::nop),
                Some(_) => then_case.clone(),
                None => s,
            },
            StmtNode::Seq(stmts) => {
                let filtered: Vec<Stmt> = stmts.iter().filter(|st| !st.is_nop()).cloned().collect();
                if filtered.len() != stmts.len() {
                    Stmt::seq(filtered)
                } else {
                    s
                }
            }
            _ => s,
        }
    }
}

fn fold_int_cast(v: i64, bits: u8, code: TypeCode) -> i64 {
    if bits >= 64 {
        return v;
    }
    let mask = (1i64 << bits) - 1;
    let low = v & mask;
    match code {
        TypeCode::UInt => low,
        TypeCode::Int => {
            // Sign-extend.
            let sign = 1i64 << (bits - 1);
            if low & sign != 0 {
                low - (1i64 << bits)
            } else {
                low
            }
        }
        TypeCode::Float => unreachable!("int cast only"),
    }
}

/// Simplifies an expression with no range context.
pub fn simplify(e: &Expr) -> Expr {
    Simplifier::new().mutate_expr(e)
}

/// Simplifies an expression under variable ranges.
pub fn simplify_with(e: &Expr, bounds: &HashMap<VarId, Interval>) -> Expr {
    Simplifier::with_bounds(bounds.clone()).mutate_expr(e)
}

/// Simplifies a statement, learning loop ranges on the way down.
pub fn simplify_stmt(s: &Stmt) -> Stmt {
    Simplifier::new().mutate_stmt(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::expr::Var;

    #[test]
    fn constant_folding() {
        let e = Expr::int(3) * 4 + 5;
        assert_eq!(simplify(&e).as_int(), Some(17));
    }

    #[test]
    fn identities() {
        let x = Var::int("x");
        assert!(simplify(&(x.clone() + 0)).structural_eq(&x.to_expr()));
        assert!(simplify(&(x.clone() * 1)).structural_eq(&x.to_expr()));
        assert_eq!(simplify(&(x.clone() * 0)).as_int(), Some(0));
        assert_eq!(simplify(&(x.clone() - x.to_expr())).as_int(), Some(0));
    }

    #[test]
    fn affine_collapse() {
        let x = Var::int("x");
        let e = (x.clone() + 3) + 4;
        let s = simplify(&e);
        assert!(s.structural_eq(&(x.clone() + 7)));
        let e = (x.clone() * 3) * 4;
        assert!(simplify(&e).structural_eq(&(x.clone() * 12)));
    }

    #[test]
    fn const_moves_right() {
        let x = Var::int("x");
        let e = Expr::int(5) + x.to_expr();
        assert!(simplify(&e).structural_eq(&(x.clone() + 5)));
    }

    #[test]
    fn interval_predicate_elimination() {
        let x = Var::int("x");
        let mut b = HashMap::new();
        b.insert(x.id(), Interval::new(0, 7));
        let e = x.to_expr().lt(Expr::int(8));
        assert_eq!(simplify_with(&e, &b).as_int(), Some(1));
        let e = (x.clone() % 8).structural_eq(&x.to_expr());
        assert!(!e); // unsimplified differs
        let e = simplify_with(&(x.clone() % 8), &b);
        assert!(e.structural_eq(&x.to_expr()));
        let e = simplify_with(&(x.clone() / 8), &b);
        assert_eq!(e.as_int(), Some(0));
    }

    #[test]
    fn loop_range_learned_in_stmt() {
        let x = Var::int("x");
        let buf = Var::new("b", DType::float32());
        // for x in [0,4): if x < 4 { b[x] = 1.0 }  -- predicate drops.
        let body = Stmt::if_then(
            x.to_expr().lt(Expr::int(4)),
            Stmt::store(&buf, x.to_expr(), Expr::f32(1.0)),
        );
        let s = Stmt::for_(&x, 0, 4, body);
        let out = simplify_stmt(&s);
        match &*out.0 {
            StmtNode::For { body, .. } => {
                assert!(
                    matches!(&*body.0, StmtNode::Store { .. }),
                    "predicate not dropped: {body}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unit_loop_inlined() {
        let x = Var::int("x");
        let buf = Var::new("b", DType::float32());
        let s = Stmt::for_(&x, 3, 1, Stmt::store(&buf, x.to_expr(), Expr::f32(1.0)));
        let out = simplify_stmt(&s);
        match &*out.0 {
            StmtNode::Store { index, .. } => assert_eq!(index.as_int(), Some(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn zero_loop_removed() {
        let x = Var::int("x");
        let buf = Var::new("b", DType::float32());
        let s = Stmt::for_(&x, 0, 0, Stmt::store(&buf, x.to_expr(), Expr::f32(1.0)));
        assert!(simplify_stmt(&s).is_nop());
    }

    #[test]
    fn select_and_bool_folding() {
        let x = Var::int("x");
        let e = Expr::select(Expr::bool_(true), x.to_expr(), Expr::int(0));
        assert!(simplify(&e).structural_eq(&x.to_expr()));
        let e = Expr::bool_(true).and(x.to_expr().lt(Expr::int(3)));
        assert!(simplify(&e).structural_eq(&x.to_expr().lt(Expr::int(3))));
    }

    #[test]
    fn affine_rebase_cancellation() {
        let yo = Var::int("yo");
        let yi = Var::int("yi");
        // (yo*8 + yi) - yo*8 -> yi
        let e = (yo.clone() * 8 + yi.clone()) - (yo.clone() * 8);
        assert!(
            simplify(&e).structural_eq(&yi.to_expr()),
            "{}",
            simplify(&e)
        );
        // ((yo*8 + yi)*2 + 3) - yo*16 -> yi*2 + 3
        let e = ((yo.clone() * 8 + yi.clone()) * 2 + 3) - (yo.clone() * 16);
        let s = simplify(&e);
        assert!(s.structural_eq(&(yi.clone() * 2 + 3)), "{s}");
    }

    #[test]
    fn affine_no_cancellation_keeps_tree() {
        let a = Var::int("a");
        let b = Var::int("b");
        let e = a.clone() - b.clone();
        let s = simplify(&e);
        assert!(s.structural_eq(&(a.clone() - b.clone())), "{s}");
    }

    #[test]
    fn int_cast_folding_masks() {
        let e = Expr::int(300).cast(DType::uint(8));
        assert_eq!(simplify(&e).as_int(), Some(44));
        let e = Expr::int(200).cast(DType::int8());
        assert_eq!(simplify(&e).as_int(), Some(-56));
        let e = Expr::int(5).cast(DType::uint(2));
        assert_eq!(simplify(&e).as_int(), Some(1));
    }
}
