//! Reference interpreter for lowered loop programs.
//!
//! The interpreter is the *correctness oracle* of the stack: every schedule
//! transformation must preserve program semantics, which the test suite
//! checks by executing the scheduled program and the naive program on the
//! same inputs and comparing outputs.
//!
//! GPU semantics: loops bound to block axes are independent and run
//! serially; loops bound to thread axes whose body contains barriers are
//! executed in *phases* — every thread runs the region between consecutive
//! barriers before any thread proceeds past the barrier, which is exactly
//! the synchronization contract `memory_barrier_among_threads()` provides
//! on real hardware (§4.2).

use std::collections::HashMap;
use std::fmt;

use crate::dtype::{DType, TypeCode};
use crate::expr::{BinOp, CallKind, CmpOp, Expr, ExprNode, Var, VarId};
use crate::interval::{floor_div, floor_mod};
use crate::stmt::{ForKind, LoweredFunc, Stmt, StmtNode};

/// Interpreter error.
#[derive(Debug, Clone)]
pub enum InterpError {
    /// Read of a variable with no binding.
    UnboundVar(String),
    /// Access to a buffer that was never allocated or bound.
    UnknownBuffer(String),
    /// Flat index outside the buffer extent.
    OutOfBounds {
        buffer: String,
        index: i64,
        extent: usize,
    },
    /// Division or modulus by zero.
    DivideByZero,
    /// Call of an unregistered intrinsic.
    UnknownIntrinsic(String),
    /// IR construct the interpreter does not execute (e.g. vector ramp).
    Unsupported(String),
    /// Structural error (e.g. barrier count diverges between branches).
    Malformed(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnboundVar(n) => write!(f, "unbound variable `{n}`"),
            InterpError::UnknownBuffer(n) => write!(f, "unknown buffer `{n}`"),
            InterpError::OutOfBounds {
                buffer,
                index,
                extent,
            } => {
                write!(
                    f,
                    "index {index} out of bounds for `{buffer}` (extent {extent})"
                )
            }
            InterpError::DivideByZero => write!(f, "division by zero"),
            InterpError::UnknownIntrinsic(n) => write!(f, "unknown intrinsic `{n}`"),
            InterpError::Unsupported(n) => write!(f, "unsupported construct: {n}"),
            InterpError::Malformed(n) => write!(f, "malformed program: {n}"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Interpreter result alias.
pub type Result<T> = std::result::Result<T, InterpError>;

/// A runtime scalar value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Integer (all int widths evaluate in i64).
    Int(i64),
    /// Float (all float widths evaluate in f64; stores quantize).
    Float(f64),
    /// Opaque handle to a buffer (hardware-intrinsic arguments).
    Handle(VarId),
}

impl Value {
    /// Integer content, coercing floats by truncation.
    pub fn as_int(self) -> Result<i64> {
        match self {
            Value::Int(v) => Ok(v),
            Value::Float(v) => Ok(v as i64),
            Value::Handle(_) => Err(InterpError::Unsupported("handle used as int".into())),
        }
    }

    /// Float content, coercing ints.
    pub fn as_float(self) -> Result<f64> {
        match self {
            Value::Int(v) => Ok(v as f64),
            Value::Float(v) => Ok(v),
            Value::Handle(_) => Err(InterpError::Unsupported("handle used as float".into())),
        }
    }

    /// True if non-zero.
    pub fn truthy(self) -> Result<bool> {
        Ok(self.as_int()? != 0)
    }
}

/// Storage of one buffer.
#[derive(Clone, Debug)]
pub enum Data {
    /// Float element storage.
    F64(Vec<f64>),
    /// Integer element storage.
    I64(Vec<i64>),
}

impl Data {
    fn len(&self) -> usize {
        match self {
            Data::F64(v) => v.len(),
            Data::I64(v) => v.len(),
        }
    }
}

/// A named, typed flat buffer.
#[derive(Clone, Debug)]
pub struct Buffer {
    /// Element type; stores quantize values to this type.
    pub dtype: DType,
    /// Element storage.
    pub data: Data,
}

impl Buffer {
    /// Allocates a zero-filled buffer.
    pub fn zeros(dtype: DType, extent: usize) -> Buffer {
        let data = if dtype.is_float() {
            Data::F64(vec![0.0; extent])
        } else {
            Data::I64(vec![0; extent])
        };
        Buffer { dtype, data }
    }

    /// Builds an integer buffer from `i64` contents.
    pub fn from_i64(dtype: DType, values: &[i64]) -> Buffer {
        debug_assert!(dtype.is_int());
        Buffer {
            dtype,
            data: Data::I64(values.to_vec()),
        }
    }

    /// Extracts integer contents.
    pub fn to_i64(&self) -> Vec<i64> {
        match &self.data {
            Data::I64(v) => v.clone(),
            Data::F64(v) => v.iter().map(|&x| x as i64).collect(),
        }
    }

    /// Builds a float buffer from `f32` contents.
    pub fn from_f32(values: &[f32]) -> Buffer {
        Buffer {
            dtype: DType::float32(),
            data: Data::F64(values.iter().map(|&v| v as f64).collect()),
        }
    }

    /// Extracts float contents as `f32`.
    pub fn to_f32(&self) -> Vec<f32> {
        match &self.data {
            Data::F64(v) => v.iter().map(|&x| x as f32).collect(),
            Data::I64(v) => v.iter().map(|&x| x as f32).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn get(&self, idx: i64, name: &str) -> Result<Value> {
        let i = self.check(idx, name)?;
        Ok(match &self.data {
            Data::F64(v) => Value::Float(v[i]),
            Data::I64(v) => Value::Int(v[i]),
        })
    }

    fn set(&mut self, idx: i64, val: Value, name: &str) -> Result<()> {
        let i = self.check(idx, name)?;
        let q = quantize(val, self.dtype)?;
        match (&mut self.data, q) {
            (Data::F64(v), Value::Float(x)) => v[i] = x,
            (Data::I64(v), Value::Int(x)) => v[i] = x,
            (Data::F64(v), Value::Int(x)) => v[i] = x as f64,
            (Data::I64(v), Value::Float(x)) => v[i] = x as i64,
            _ => return Err(InterpError::Unsupported("handle store".into())),
        }
        Ok(())
    }

    fn check(&self, idx: i64, name: &str) -> Result<usize> {
        if idx < 0 || idx as usize >= self.data.len() {
            return Err(InterpError::OutOfBounds {
                buffer: name.to_string(),
                index: idx,
                extent: self.data.len(),
            });
        }
        Ok(idx as usize)
    }
}

/// Rounds an `f64` through IEEE half precision (round-to-nearest-even on
/// the f32 intermediate, then the standard f32→f16 conversion).
pub fn round_f16(x: f64) -> f64 {
    let bits = (x as f32).to_bits();
    let sign = (bits >> 16) & 0x8000;
    let mut exp = ((bits >> 23) & 0xff) as i32;
    let mut frac = bits & 0x007f_ffff;
    let half: u16 = if exp == 0xff {
        // Inf / NaN.
        (sign | 0x7c00 | if frac != 0 { 0x200 } else { 0 }) as u16
    } else {
        exp -= 127;
        if exp > 15 {
            (sign | 0x7c00) as u16 // overflow -> inf
        } else if exp >= -14 {
            // Normal: 10-bit mantissa, round to nearest even.
            let mut m = frac >> 13;
            let rem = frac & 0x1fff;
            if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
                m += 1;
            }
            let mut e16 = (exp + 15) as u32;
            if m == 0x400 {
                m = 0;
                e16 += 1;
            }
            if e16 >= 31 {
                (sign | 0x7c00) as u16
            } else {
                (sign | (e16 << 10) | m) as u16
            }
        } else if exp >= -24 {
            // Subnormal.
            frac |= 0x0080_0000;
            let shift = (-exp - 14 + 13) as u32;
            let m = frac >> shift;
            (sign | m) as u16
        } else {
            sign as u16 // underflow -> signed zero
        }
    };
    // Back to f32.
    let s = ((half as u32) & 0x8000) << 16;
    let e = ((half as u32) >> 10) & 0x1f;
    let m = (half as u32) & 0x3ff;
    let f32bits = if e == 0 {
        if m == 0 {
            s
        } else {
            // Subnormal half.
            let mut e2 = -14i32;
            let mut m2 = m;
            while m2 & 0x400 == 0 {
                m2 <<= 1;
                e2 -= 1;
            }
            m2 &= 0x3ff;
            s | (((e2 + 127) as u32) << 23) | (m2 << 13)
        }
    } else if e == 31 {
        s | 0x7f80_0000 | (m << 13)
    } else {
        s | ((e + 112) << 23) | (m << 13)
    };
    f32::from_bits(f32bits) as f64
}

/// Quantizes a value to a storage type: integer masking/sign-extension for
/// narrow ints, f32/f16 rounding for floats.
pub fn quantize(val: Value, dtype: DType) -> Result<Value> {
    let dtype = dtype.element();
    match dtype.code {
        TypeCode::Float => {
            let v = val.as_float()?;
            Ok(Value::Float(match dtype.bits {
                16 => round_f16(v),
                32 => v as f32 as f64,
                _ => v,
            }))
        }
        TypeCode::Int | TypeCode::UInt => {
            let v = val.as_int()?;
            if dtype.bits >= 64 {
                return Ok(Value::Int(v));
            }
            let mask = (1i64 << dtype.bits) - 1;
            let low = v & mask;
            let out = if dtype.code == TypeCode::Int {
                let sign = 1i64 << (dtype.bits - 1);
                if low & sign != 0 {
                    low - (1i64 << dtype.bits)
                } else {
                    low
                }
            } else {
                low
            };
            Ok(Value::Int(out))
        }
    }
}

/// Signature of a registered hardware-intrinsic handler: receives evaluated
/// arguments and mutable access to the memory state.
pub type HwHandlerFn = Box<dyn FnMut(&[Value], &mut MemState) -> Result<Value>>;

/// The interpreter's buffer store, exposed to hardware-intrinsic handlers.
#[derive(Default)]
pub struct MemState {
    buffers: HashMap<VarId, Buffer>,
    names: HashMap<VarId, String>,
}

impl MemState {
    /// Allocates or rebinds a buffer.
    pub fn bind(&mut self, var: &Var, buf: Buffer) {
        self.names.insert(var.id(), var.name().to_string());
        self.buffers.insert(var.id(), buf);
    }

    /// Removes and returns a buffer.
    pub fn take(&mut self, id: VarId) -> Option<Buffer> {
        self.buffers.remove(&id)
    }

    /// Immutable access.
    pub fn get(&self, id: VarId) -> Option<&Buffer> {
        self.buffers.get(&id)
    }

    /// Loads an element.
    pub fn load(&self, id: VarId, idx: i64) -> Result<Value> {
        let name = self.names.get(&id).map(|s| s.as_str()).unwrap_or("?");
        let buf = self
            .buffers
            .get(&id)
            .ok_or_else(|| InterpError::UnknownBuffer(name.to_string()))?;
        buf.get(idx, name)
    }

    /// Stores an element (with dtype quantization).
    pub fn store(&mut self, id: VarId, idx: i64, val: Value) -> Result<()> {
        let name = self
            .names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| "?".to_string());
        let buf = self
            .buffers
            .get_mut(&id)
            .ok_or_else(|| InterpError::UnknownBuffer(name.clone()))?;
        buf.set(idx, val, &name)
    }
}

/// Per-thread buffer key: buffer id plus the thread coordinates that own it.
type ThreadBufKey = (VarId, Vec<i64>);

/// The interpreter.
#[derive(Default)]
pub struct Interp {
    /// Global memory state (externally bound + global allocations).
    pub mem: MemState,
    env: HashMap<VarId, Value>,
    hw: HashMap<String, HwHandlerFn>,
    // Phased-execution state.
    thread_coords: Vec<i64>,
    thread_bufs: HashMap<ThreadBufKey, Buffer>,
    thread_buf_names: HashMap<VarId, String>,
    phase: Option<(u64, u64)>, // (current barrier counter, active phase)
    stores: u64,
}

impl Interp {
    /// Fresh interpreter.
    pub fn new() -> Self {
        Interp::default()
    }

    /// Registers a handler for a hardware intrinsic name.
    pub fn register_hw(&mut self, name: impl Into<String>, f: HwHandlerFn) {
        self.hw.insert(name.into(), f);
    }

    /// Binds a scalar parameter.
    pub fn bind_scalar(&mut self, var: &Var, val: Value) {
        self.env.insert(var.id(), val);
    }

    /// Total number of stores executed — a cheap dynamic-work proxy used by
    /// tests.
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Runs a lowered function with buffers bound positionally.
    ///
    /// `buffers` must match `func.params` order; contents are moved in and
    /// the (possibly updated) buffers are returned in the same order.
    pub fn run(&mut self, func: &LoweredFunc, buffers: Vec<Buffer>) -> Result<Vec<Buffer>> {
        if buffers.len() != func.params.len() {
            return Err(InterpError::Malformed(format!(
                "function `{}` expects {} params, got {}",
                func.name,
                func.params.len(),
                buffers.len()
            )));
        }
        for (var, buf) in func.params.iter().zip(buffers) {
            self.mem.bind(var, buf);
        }
        self.exec(&func.body)?;
        let mut out = Vec::with_capacity(func.params.len());
        for var in &func.params {
            out.push(
                self.mem
                    .take(var.id())
                    .ok_or_else(|| InterpError::UnknownBuffer(var.name().to_string()))?,
            );
        }
        Ok(out)
    }

    /// Convenience wrapper: run with f32 slices, all `float32` buffers.
    pub fn run_f32(&mut self, func: &LoweredFunc, arrays: &mut [Vec<f32>]) -> Result<()> {
        let bufs: Vec<Buffer> = arrays.iter().map(|a| Buffer::from_f32(a)).collect();
        let out = self.run(func, bufs)?;
        for (arr, buf) in arrays.iter_mut().zip(out) {
            *arr = buf.to_f32();
        }
        Ok(())
    }

    fn effects_active(&self) -> bool {
        match self.phase {
            None => true,
            Some((counter, active)) => counter == active,
        }
    }

    /// Evaluates an expression.
    pub fn eval(&mut self, e: &Expr) -> Result<Value> {
        use ExprNode::*;
        match &*e.0 {
            IntImm { value, .. } => Ok(Value::Int(*value)),
            FloatImm { value, .. } => Ok(Value::Float(*value)),
            StringImm(_) => Err(InterpError::Unsupported("string immediate".into())),
            Var(v) => {
                if let Some(val) = self.env.get(&v.id()) {
                    Ok(*val)
                } else if self.lookup_buffer(v.id()).is_some() {
                    Ok(Value::Handle(v.id()))
                } else {
                    Err(InterpError::UnboundVar(v.name().to_string()))
                }
            }
            Cast { dtype, value } => {
                let v = self.eval(value)?;
                if dtype.is_int() {
                    quantize(Value::Int(cast_to_int(v)?), *dtype)
                } else {
                    quantize(Value::Float(v.as_float()?), *dtype)
                }
            }
            Binary { op, a, b } => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                eval_binop(*op, va, vb, a.dtype().is_float())
            }
            Cmp { op, a, b } => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                let r = if a.dtype().is_float() {
                    let (x, y) = (va.as_float()?, vb.as_float()?);
                    match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                } else {
                    let (x, y) = (va.as_int()?, vb.as_int()?);
                    match op {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                };
                Ok(Value::Int(r as i64))
            }
            And { a, b } => Ok(Value::Int(
                (self.eval(a)?.truthy()? && self.eval(b)?.truthy()?) as i64,
            )),
            Or { a, b } => Ok(Value::Int(
                (self.eval(a)?.truthy()? || self.eval(b)?.truthy()?) as i64,
            )),
            Not { a } => Ok(Value::Int(!self.eval(a)?.truthy()? as i64)),
            Select {
                cond,
                then_case,
                else_case,
            } => {
                if self.eval(cond)?.truthy()? {
                    self.eval(then_case)
                } else {
                    self.eval(else_case)
                }
            }
            Load {
                buffer,
                index,
                predicate,
            } => {
                if let Some(p) = predicate {
                    if !self.eval(p)?.truthy()? {
                        return Ok(Value::zero_of(buffer.dtype()));
                    }
                }
                let idx = self.eval(index)?.as_int()?;
                self.load_any(buffer.id(), idx, buffer.name())
            }
            Ramp { .. } | Broadcast { .. } => Err(InterpError::Unsupported(
                "vector value (run pre-vectorized IR)".into(),
            )),
            Let { var, value, body } => {
                let v = self.eval(value)?;
                let old = self.env.insert(var.id(), v);
                let r = self.eval(body);
                match old {
                    Some(o) => {
                        self.env.insert(var.id(), o);
                    }
                    None => {
                        self.env.remove(&var.id());
                    }
                }
                r
            }
            Call {
                name,
                args,
                kind,
                dtype,
            } => {
                let vals: Vec<Value> = args.iter().map(|a| self.eval(a)).collect::<Result<_>>()?;
                match kind {
                    CallKind::PureIntrinsic => eval_pure_intrinsic(name, &vals, *dtype),
                    CallKind::HardwareIntrinsic => {
                        if !self.effects_active() {
                            return Ok(Value::Int(0));
                        }
                        let mut f = self
                            .hw
                            .remove(name)
                            .ok_or_else(|| InterpError::UnknownIntrinsic(name.clone()))?;
                        let r = f(&vals, &mut self.mem);
                        self.hw.insert(name.clone(), f);
                        r
                    }
                }
            }
        }
    }

    fn lookup_buffer(&self, id: VarId) -> Option<&Buffer> {
        // Thread-local buffers shadow globals; search from the innermost
        // coordinate prefix outwards.
        for n in (0..=self.thread_coords.len()).rev() {
            let key = (id, self.thread_coords[..n].to_vec());
            if let Some(b) = self.thread_bufs.get(&key) {
                return Some(b);
            }
        }
        self.mem.get(id)
    }

    fn load_any(&mut self, id: VarId, idx: i64, name: &str) -> Result<Value> {
        for n in (0..=self.thread_coords.len()).rev() {
            let key = (id, self.thread_coords[..n].to_vec());
            if let Some(b) = self.thread_bufs.get(&key) {
                return b.get(idx, name);
            }
        }
        self.mem.load(id, idx)
    }

    fn store_any(&mut self, id: VarId, idx: i64, val: Value, name: &str) -> Result<()> {
        self.stores += 1;
        for n in (0..=self.thread_coords.len()).rev() {
            let key = (id, self.thread_coords[..n].to_vec());
            if self.thread_bufs.contains_key(&key) {
                let b = self.thread_bufs.get_mut(&key).expect("checked");
                return b.set(idx, val, name);
            }
        }
        self.mem.store(id, idx, val)
    }

    /// Executes a statement.
    pub fn exec(&mut self, s: &Stmt) -> Result<()> {
        use StmtNode::*;
        match &*s.0 {
            LetStmt { var, value, body } => {
                let v = self.eval(value)?;
                let old = self.env.insert(var.id(), v);
                let r = self.exec(body);
                match old {
                    Some(o) => {
                        self.env.insert(var.id(), o);
                    }
                    None => {
                        self.env.remove(&var.id());
                    }
                }
                r
            }
            AttrStmt { body, .. } => self.exec(body),
            Store {
                buffer,
                index,
                value,
                predicate,
            } => {
                if let Some(p) = predicate {
                    if !self.eval(p)?.truthy()? {
                        return Ok(());
                    }
                }
                let idx = self.eval(index)?.as_int()?;
                let val = self.eval(value)?;
                if self.effects_active() {
                    self.store_any(buffer.id(), idx, val, buffer.name())?;
                }
                Ok(())
            }
            Allocate {
                buffer,
                dtype,
                extent,
                body,
                ..
            } => {
                let n = self.eval(extent)?.as_int()?.max(0) as usize;
                let inside_phased = self.phase.is_some();
                let key = (buffer.id(), self.thread_coords.clone());
                self.thread_buf_names
                    .insert(buffer.id(), buffer.name().to_string());
                if inside_phased {
                    // Persist across phases for a given thread; create once.
                    self.thread_bufs
                        .entry(key)
                        .or_insert_with(|| Buffer::zeros(*dtype, n));
                    self.exec(body)
                } else if self.thread_coords.is_empty() {
                    // Outside any thread nest: bind in global memory state
                    // so hardware-intrinsic handlers can address it.
                    let prev = self.mem.take(buffer.id());
                    self.mem.bind(buffer, Buffer::zeros(*dtype, n));
                    let r = self.exec(body);
                    self.mem.take(buffer.id());
                    if let Some(p) = prev {
                        self.mem.bind(buffer, p);
                    }
                    r
                } else {
                    self.thread_bufs
                        .insert(key.clone(), Buffer::zeros(*dtype, n));
                    let r = self.exec(body);
                    self.thread_bufs.remove(&key);
                    r
                }
            }
            For {
                var,
                min,
                extent,
                kind,
                body,
            } => {
                let lo = self.eval(min)?.as_int()?;
                let n = self.eval(extent)?.as_int()?;
                match kind {
                    ForKind::ThreadBinding(tag) if !tag.is_block() => {
                        self.exec_thread_nest(s.clone())
                    }
                    _ => {
                        // Serial/parallel/vectorized/unrolled/vthread/block
                        // loops all have sequential semantics here.
                        let _ = (var, body);
                        for i in lo..lo + n {
                            let old = self.env.insert(var.id(), Value::Int(i));
                            let r = self.exec(body);
                            match old {
                                Some(o) => {
                                    self.env.insert(var.id(), o);
                                }
                                None => {
                                    self.env.remove(&var.id());
                                }
                            }
                            r?;
                        }
                        Ok(())
                    }
                }
            }
            Seq(stmts) => {
                for st in stmts {
                    self.exec(st)?;
                }
                Ok(())
            }
            IfThenElse {
                cond,
                then_case,
                else_case,
            } => {
                if self.eval(cond)?.truthy()? {
                    self.exec(then_case)
                } else if let Some(e) = else_case {
                    self.exec(e)
                } else {
                    Ok(())
                }
            }
            Evaluate(e) => {
                self.eval(e)?;
                Ok(())
            }
            Barrier => {
                if let Some((counter, _)) = &mut self.phase {
                    *counter += 1;
                }
                Ok(())
            }
            PushDep { .. } | PopDep { .. } => Ok(()), // timing-only; no data effect
        }
    }

    /// Executes a nest of thread-bound loops with barrier-phase semantics.
    fn exec_thread_nest(&mut self, root: Stmt) -> Result<()> {
        // Collect the consecutive thread-bound loops.
        let mut axes: Vec<(Var, i64, i64)> = Vec::new();
        let mut cur = root;
        let body = loop {
            let next = match &*cur.0 {
                StmtNode::For {
                    var,
                    min,
                    extent,
                    kind: ForKind::ThreadBinding(tag),
                    body,
                } if !tag.is_block() => {
                    let lo = self.eval(min)?.as_int()?;
                    let n = self.eval(extent)?.as_int()?;
                    axes.push((var.clone(), lo, n));
                    body.clone()
                }
                _ => break cur,
            };
            cur = next;
        };
        let num_barriers = self.count_barriers(&body)?;
        if num_barriers == 0 {
            // No synchronization: plain serial execution is equivalent.
            return self.run_thread_combos(&axes, &body, None);
        }
        for phase in 0..=num_barriers {
            self.run_thread_combos(&axes, &body, Some(phase))?;
        }
        // Free per-thread buffers created inside the nest.
        self.thread_bufs
            .retain(|(_, coords), _| coords.len() < axes.len());
        Ok(())
    }

    fn run_thread_combos(
        &mut self,
        axes: &[(Var, i64, i64)],
        body: &Stmt,
        phase: Option<u64>,
    ) -> Result<()> {
        let total: i64 = axes.iter().map(|(_, _, n)| *n).product();
        for flat in 0..total {
            let mut rem = flat;
            let mut coords = Vec::with_capacity(axes.len());
            // Row-major thread enumeration.
            for (_, lo, n) in axes {
                let extent_rest: i64 = axes[coords.len() + 1..]
                    .iter()
                    .map(|(_, _, m)| *m)
                    .product();
                let i = lo + (rem / extent_rest.max(1)) % n;
                rem %= extent_rest.max(1);
                coords.push(i);
            }
            let saved_coords = std::mem::take(&mut self.thread_coords);
            let mut full = saved_coords.clone();
            full.extend(&coords);
            self.thread_coords = full;
            let olds: Vec<Option<Value>> = axes
                .iter()
                .zip(&coords)
                .map(|((v, _, _), &i)| self.env.insert(v.id(), Value::Int(i)))
                .collect();
            let saved_phase = self.phase;
            if let Some(p) = phase {
                self.phase = Some((0, p));
            }
            let r = self.exec(body);
            self.phase = saved_phase;
            for ((v, _, _), old) in axes.iter().zip(olds) {
                match old {
                    Some(o) => {
                        self.env.insert(v.id(), o);
                    }
                    None => {
                        self.env.remove(&v.id());
                    }
                }
            }
            self.thread_coords = saved_coords;
            r?;
        }
        Ok(())
    }

    /// Statically counts barriers executed by one thread running `s`.
    fn count_barriers(&mut self, s: &Stmt) -> Result<u64> {
        use StmtNode::*;
        Ok(match &*s.0 {
            Barrier => 1,
            For {
                var,
                min,
                extent,
                body,
                ..
            } => {
                let lo = self.eval(min)?.as_int()?;
                let n = self.eval(extent)?.as_int()?;
                if n <= 0 {
                    return Ok(0);
                }
                // The count may depend on the loop var only if barriers sit
                // inside data-dependent ifs, which we reject; evaluate the
                // body count once with the first index bound.
                let old = self.env.insert(var.id(), Value::Int(lo));
                let per = self.count_barriers(body)?;
                match old {
                    Some(o) => {
                        self.env.insert(var.id(), o);
                    }
                    None => {
                        self.env.remove(&var.id());
                    }
                }
                per * n as u64
            }
            Seq(stmts) => {
                let mut t = 0;
                for st in stmts {
                    t += self.count_barriers(st)?;
                }
                t
            }
            IfThenElse {
                then_case,
                else_case,
                ..
            } => {
                let a = self.count_barriers(then_case)?;
                let b = match else_case {
                    Some(e) => self.count_barriers(e)?,
                    None => 0,
                };
                if a != b {
                    return Err(InterpError::Malformed(
                        "barrier count diverges across branches".into(),
                    ));
                }
                a
            }
            LetStmt { body, .. } | AttrStmt { body, .. } | Allocate { body, .. } => {
                self.count_barriers(body)?
            }
            _ => 0,
        })
    }
}

impl Value {
    fn zero_of(dtype: DType) -> Value {
        if dtype.is_float() {
            Value::Float(0.0)
        } else {
            Value::Int(0)
        }
    }
}

fn cast_to_int(v: Value) -> Result<i64> {
    match v {
        Value::Int(x) => Ok(x),
        Value::Float(x) => Ok(x.floor() as i64),
        Value::Handle(_) => Err(InterpError::Unsupported("handle cast".into())),
    }
}

fn eval_binop(op: BinOp, a: Value, b: Value, float: bool) -> Result<Value> {
    if float {
        let (x, y) = (a.as_float()?, b.as_float()?);
        let r = match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            BinOp::Mod => x.rem_euclid(y),
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            _ => return Err(InterpError::Unsupported("bitwise op on float".into())),
        };
        Ok(Value::Float(r))
    } else {
        let (x, y) = (a.as_int()?, b.as_int()?);
        let r = match op {
            BinOp::Add => x.wrapping_add(y),
            BinOp::Sub => x.wrapping_sub(y),
            BinOp::Mul => x.wrapping_mul(y),
            BinOp::Div => {
                if y == 0 {
                    return Err(InterpError::DivideByZero);
                }
                floor_div(x, y)
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err(InterpError::DivideByZero);
                }
                floor_mod(x, y)
            }
            BinOp::Min => x.min(y),
            BinOp::Max => x.max(y),
            BinOp::BitAnd => x & y,
            BinOp::BitOr => x | y,
            BinOp::BitXor => x ^ y,
            BinOp::Shl => x.wrapping_shl(y as u32),
            BinOp::Shr => x.wrapping_shr(y as u32),
        };
        Ok(Value::Int(r))
    }
}

fn eval_pure_intrinsic(name: &str, args: &[Value], dtype: DType) -> Result<Value> {
    let unary = |f: fn(f64) -> f64| -> Result<Value> {
        Ok(Value::Float(f(args
            .first()
            .ok_or_else(|| InterpError::Malformed("missing intrinsic arg".into()))?
            .as_float()?)))
    };
    match name {
        "exp" => unary(f64::exp),
        "log" => unary(f64::ln),
        "sqrt" => unary(f64::sqrt),
        "tanh" => unary(f64::tanh),
        "sigmoid" => unary(|x| 1.0 / (1.0 + (-x).exp())),
        "abs" => {
            if dtype.is_float() {
                unary(f64::abs)
            } else {
                Ok(Value::Int(args[0].as_int()?.abs()))
            }
        }
        "floor" => unary(f64::floor),
        "round" => unary(f64::round),
        "pow" => {
            let a = args[0].as_float()?;
            let b = args[1].as_float()?;
            Ok(Value::Float(a.powf(b)))
        }
        "popcount" => Ok(Value::Int(args[0].as_int()?.count_ones() as i64)),
        other => Err(InterpError::UnknownIntrinsic(other.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{MemScope, ThreadTag};

    fn f32_func(name: &str, params: Vec<Var>, extents: Vec<usize>, body: Stmt) -> LoweredFunc {
        let n = params.len();
        LoweredFunc {
            name: name.into(),
            params,
            param_dtypes: vec![DType::float32(); n],
            param_extents: extents,
            body,
        }
    }

    #[test]
    fn vector_add_executes() {
        let a = Var::new("A", DType::float32());
        let b = Var::new("B", DType::float32());
        let c = Var::new("C", DType::float32());
        let i = Var::int("i");
        let body = Stmt::for_(
            &i,
            0,
            8,
            Stmt::store(
                &c,
                i.to_expr(),
                Expr::load(&a, i.to_expr()) + Expr::load(&b, i.to_expr()),
            ),
        );
        let f = f32_func("add", vec![a, b, c], vec![8, 8, 8], body);
        let mut arrays = vec![
            (0..8).map(|x| x as f32).collect::<Vec<_>>(),
            (0..8).map(|x| (x * 10) as f32).collect(),
            vec![0.0; 8],
        ];
        Interp::new().run_f32(&f, &mut arrays).expect("run ok");
        assert_eq!(
            arrays[2],
            vec![0.0, 11.0, 22.0, 33.0, 44.0, 55.0, 66.0, 77.0]
        );
    }

    #[test]
    fn out_of_bounds_is_reported() {
        let a = Var::new("A", DType::float32());
        let body = Stmt::store(&a, Expr::int(9), Expr::f32(1.0));
        let f = f32_func("oob", vec![a], vec![4], body);
        let err = Interp::new().run_f32(&f, &mut [vec![0.0; 4]]).unwrap_err();
        assert!(matches!(err, InterpError::OutOfBounds { .. }));
    }

    #[test]
    fn f16_rounding() {
        assert_eq!(round_f16(1.0), 1.0);
        assert_eq!(round_f16(0.5), 0.5);
        // 1/3 is inexact in half precision.
        let r = round_f16(1.0 / 3.0);
        assert!((r - 1.0 / 3.0).abs() > 1e-6);
        assert!((r - 1.0 / 3.0).abs() < 1e-3);
        assert!(round_f16(1e9).is_infinite());
        assert_eq!(round_f16(-0.0), 0.0);
    }

    #[test]
    fn quantize_uint2_wraps() {
        assert_eq!(
            quantize(Value::Int(5), DType::uint(2)).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            quantize(Value::Int(-1), DType::uint(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            quantize(Value::Int(130), DType::int8()).unwrap(),
            Value::Int(-126)
        );
    }

    #[test]
    fn phased_barrier_execution_sees_sibling_stores() {
        // Cooperative pattern: each thread t writes S[t], barrier, then each
        // thread reads S[(t+1) % N]. Serial execution without phasing would
        // read stale data for the last thread.
        let n = 4i64;
        let s = Var::new("S", DType::float32());
        let out = Var::new("O", DType::float32());
        let t = Var::int("t");
        let write = Stmt::store(&s, t.to_expr(), t.clone() * 10);
        let read = Stmt::store(&out, t.to_expr(), Expr::load(&s, (t.clone() + 1) % n));
        let body = Stmt::seq(vec![write, Stmt::new(StmtNode::Barrier), read]);
        let threads = Stmt::loop_(
            &t,
            0,
            n,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            body,
        );
        let kernel = Stmt::allocate(&s, DType::float32(), n, MemScope::Shared, threads);
        let f = f32_func("coop", vec![out], vec![n as usize], kernel);
        let mut arrays = vec![vec![0.0f32; n as usize]];
        Interp::new().run_f32(&f, &mut arrays).expect("run ok");
        assert_eq!(arrays[0], vec![10.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn local_accumulator_persists_across_phases() {
        // acc[0] += k across a barriered k-loop; correct only if the local
        // allocation persists across phases for each thread.
        let acc = Var::new("acc", DType::float32());
        let out = Var::new("O", DType::float32());
        let t = Var::int("t");
        let k = Var::int("k");
        let init = Stmt::store(&acc, Expr::int(0), Expr::f32(0.0));
        let update = Stmt::store(
            &acc,
            Expr::int(0),
            Expr::load(&acc, Expr::int(0)) + k.to_expr().cast(DType::float32()),
        );
        let kloop = Stmt::for_(
            &k,
            0,
            4,
            Stmt::seq(vec![Stmt::new(StmtNode::Barrier), update]),
        );
        let writeback = Stmt::store(&out, t.to_expr(), Expr::load(&acc, Expr::int(0)));
        let body = Stmt::allocate(
            &acc,
            DType::float32(),
            1,
            MemScope::Local,
            Stmt::seq(vec![init, kloop, writeback]),
        );
        let threads = Stmt::loop_(
            &t,
            0,
            2,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            body,
        );
        let f = f32_func("accum", vec![out], vec![2], threads);
        let mut arrays = vec![vec![0.0f32; 2]];
        Interp::new().run_f32(&f, &mut arrays).expect("run ok");
        assert_eq!(arrays[0], vec![6.0, 6.0]);
    }

    #[test]
    fn pure_intrinsics() {
        let mut it = Interp::new();
        let e = Expr::call("exp", vec![Expr::f32(0.0)], DType::float32());
        assert_eq!(it.eval(&e).unwrap().as_float().unwrap(), 1.0);
        let e = Expr::call("popcount", vec![Expr::int(0b1011)], DType::int32());
        assert_eq!(it.eval(&e).unwrap().as_int().unwrap(), 3);
    }

    #[test]
    fn hw_intrinsic_dispatch() {
        let a = Var::new("A", DType::float32());
        let mut it = Interp::new();
        it.register_hw(
            "fill7",
            Box::new(|args: &[Value], mem: &mut MemState| {
                if let Value::Handle(id) = args[0] {
                    mem.store(id, 0, Value::Float(7.0))?;
                }
                Ok(Value::Int(0))
            }),
        );
        let body = Stmt::evaluate(Expr::hw_call("fill7", vec![a.to_expr()], DType::int32()));
        let f = f32_func("hw", vec![a], vec![1], body);
        let mut arrays = vec![vec![0.0f32]];
        it.run_f32(&f, &mut arrays).expect("run ok");
        assert_eq!(arrays[0][0], 7.0);
    }
}
