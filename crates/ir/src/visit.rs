//! Visitor and mutator infrastructure over the expression/statement trees,
//! plus the ubiquitous variable-substitution pass.

use std::collections::HashMap;

use crate::expr::{Expr, ExprNode, Var, VarId};
use crate::stmt::{Stmt, StmtNode};

/// Rewrites expressions and statements bottom-up.
///
/// Implementors override [`Mutator::mutate_expr`] / [`Mutator::mutate_stmt`]
/// and call the `default_*` helpers to recurse.
pub trait Mutator {
    /// Rewrites one expression (override point).
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        self.default_mutate_expr(e)
    }

    /// Rewrites one statement (override point).
    fn mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        self.default_mutate_stmt(s)
    }

    /// Recurses into an expression's children.
    fn default_mutate_expr(&mut self, e: &Expr) -> Expr {
        use ExprNode::*;
        match &*e.0 {
            IntImm { .. } | FloatImm { .. } | StringImm(_) | Var(_) => e.clone(),
            Cast { dtype, value } => Expr::new(Cast {
                dtype: *dtype,
                value: self.mutate_expr(value),
            }),
            Binary { op, a, b } => Expr::new(Binary {
                op: *op,
                a: self.mutate_expr(a),
                b: self.mutate_expr(b),
            }),
            Cmp { op, a, b } => Expr::new(Cmp {
                op: *op,
                a: self.mutate_expr(a),
                b: self.mutate_expr(b),
            }),
            And { a, b } => Expr::new(And {
                a: self.mutate_expr(a),
                b: self.mutate_expr(b),
            }),
            Or { a, b } => Expr::new(Or {
                a: self.mutate_expr(a),
                b: self.mutate_expr(b),
            }),
            Not { a } => Expr::new(Not {
                a: self.mutate_expr(a),
            }),
            Select {
                cond,
                then_case,
                else_case,
            } => Expr::new(Select {
                cond: self.mutate_expr(cond),
                then_case: self.mutate_expr(then_case),
                else_case: self.mutate_expr(else_case),
            }),
            Load {
                buffer,
                index,
                predicate,
            } => Expr::new(Load {
                buffer: buffer.clone(),
                index: self.mutate_expr(index),
                predicate: predicate.as_ref().map(|p| self.mutate_expr(p)),
            }),
            Ramp {
                base,
                stride,
                lanes,
            } => Expr::new(Ramp {
                base: self.mutate_expr(base),
                stride: self.mutate_expr(stride),
                lanes: *lanes,
            }),
            Broadcast { value, lanes } => Expr::new(Broadcast {
                value: self.mutate_expr(value),
                lanes: *lanes,
            }),
            Let { var, value, body } => Expr::new(Let {
                var: var.clone(),
                value: self.mutate_expr(value),
                body: self.mutate_expr(body),
            }),
            Call {
                dtype,
                name,
                args,
                kind,
            } => Expr::new(Call {
                dtype: *dtype,
                name: name.clone(),
                args: args.iter().map(|a| self.mutate_expr(a)).collect(),
                kind: *kind,
            }),
        }
    }

    /// Recurses into a statement's children.
    fn default_mutate_stmt(&mut self, s: &Stmt) -> Stmt {
        use StmtNode::*;
        match &*s.0 {
            LetStmt { var, value, body } => Stmt::new(LetStmt {
                var: var.clone(),
                value: self.mutate_expr(value),
                body: self.mutate_stmt(body),
            }),
            AttrStmt { key, value, body } => Stmt::new(AttrStmt {
                key: key.clone(),
                value: self.mutate_expr(value),
                body: self.mutate_stmt(body),
            }),
            Store {
                buffer,
                index,
                value,
                predicate,
            } => Stmt::new(Store {
                buffer: buffer.clone(),
                index: self.mutate_expr(index),
                value: self.mutate_expr(value),
                predicate: predicate.as_ref().map(|p| self.mutate_expr(p)),
            }),
            Allocate {
                buffer,
                dtype,
                extent,
                scope,
                body,
            } => Stmt::new(Allocate {
                buffer: buffer.clone(),
                dtype: *dtype,
                extent: self.mutate_expr(extent),
                scope: *scope,
                body: self.mutate_stmt(body),
            }),
            For {
                var,
                min,
                extent,
                kind,
                body,
            } => Stmt::new(For {
                var: var.clone(),
                min: self.mutate_expr(min),
                extent: self.mutate_expr(extent),
                kind: *kind,
                body: self.mutate_stmt(body),
            }),
            Seq(stmts) => Stmt::seq(stmts.iter().map(|st| self.mutate_stmt(st)).collect()),
            IfThenElse {
                cond,
                then_case,
                else_case,
            } => Stmt::new(IfThenElse {
                cond: self.mutate_expr(cond),
                then_case: self.mutate_stmt(then_case),
                else_case: else_case.as_ref().map(|e| self.mutate_stmt(e)),
            }),
            Evaluate(e) => Stmt::new(Evaluate(self.mutate_expr(e))),
            Barrier | PushDep { .. } | PopDep { .. } => s.clone(),
        }
    }
}

/// Read-only traversal of expressions and statements.
pub trait Visitor {
    /// Visits one expression (override and recurse via
    /// [`Visitor::walk_expr`]).
    fn visit_expr(&mut self, e: &Expr) {
        self.walk_expr(e);
    }

    /// Visits one statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        self.walk_stmt(s);
    }

    /// Recurses into an expression's children.
    fn walk_expr(&mut self, e: &Expr) {
        use ExprNode::*;
        match &*e.0 {
            IntImm { .. } | FloatImm { .. } | StringImm(_) | Var(_) => {}
            Cast { value, .. } => self.visit_expr(value),
            Binary { a, b, .. } | Cmp { a, b, .. } | And { a, b } | Or { a, b } => {
                self.visit_expr(a);
                self.visit_expr(b);
            }
            Not { a } => self.visit_expr(a),
            Select {
                cond,
                then_case,
                else_case,
            } => {
                self.visit_expr(cond);
                self.visit_expr(then_case);
                self.visit_expr(else_case);
            }
            Load {
                index, predicate, ..
            } => {
                self.visit_expr(index);
                if let Some(p) = predicate {
                    self.visit_expr(p);
                }
            }
            Ramp { base, stride, .. } => {
                self.visit_expr(base);
                self.visit_expr(stride);
            }
            Broadcast { value, .. } => self.visit_expr(value),
            Let { value, body, .. } => {
                self.visit_expr(value);
                self.visit_expr(body);
            }
            Call { args, .. } => {
                for a in args {
                    self.visit_expr(a);
                }
            }
        }
    }

    /// Recurses into a statement's children.
    fn walk_stmt(&mut self, s: &Stmt) {
        use StmtNode::*;
        match &*s.0 {
            LetStmt { value, body, .. } => {
                self.visit_expr(value);
                self.visit_stmt(body);
            }
            AttrStmt { value, body, .. } => {
                self.visit_expr(value);
                self.visit_stmt(body);
            }
            Store {
                index,
                value,
                predicate,
                ..
            } => {
                self.visit_expr(index);
                self.visit_expr(value);
                if let Some(p) = predicate {
                    self.visit_expr(p);
                }
            }
            Allocate { extent, body, .. } => {
                self.visit_expr(extent);
                self.visit_stmt(body);
            }
            For {
                min, extent, body, ..
            } => {
                self.visit_expr(min);
                self.visit_expr(extent);
                self.visit_stmt(body);
            }
            Seq(stmts) => {
                for st in stmts {
                    self.visit_stmt(st);
                }
            }
            IfThenElse {
                cond,
                then_case,
                else_case,
            } => {
                self.visit_expr(cond);
                self.visit_stmt(then_case);
                if let Some(e) = else_case {
                    self.visit_stmt(e);
                }
            }
            Evaluate(e) => self.visit_expr(e),
            Barrier | PushDep { .. } | PopDep { .. } => {}
        }
    }
}

struct Substituter<'a> {
    map: &'a HashMap<VarId, Expr>,
}

impl Mutator for Substituter<'_> {
    fn mutate_expr(&mut self, e: &Expr) -> Expr {
        if let ExprNode::Var(v) = &*e.0 {
            if let Some(repl) = self.map.get(&v.id()) {
                return repl.clone();
            }
        }
        self.default_mutate_expr(e)
    }
}

/// Replaces free occurrences of variables in `e` according to `map`.
pub fn substitute(e: &Expr, map: &HashMap<VarId, Expr>) -> Expr {
    Substituter { map }.mutate_expr(e)
}

/// Replaces free occurrences of variables in `s` according to `map`.
pub fn substitute_stmt(s: &Stmt, map: &HashMap<VarId, Expr>) -> Stmt {
    Substituter { map }.mutate_stmt(s)
}

/// Replaces a single variable in `e`.
pub fn substitute_one(e: &Expr, var: &Var, with: &Expr) -> Expr {
    let mut map = HashMap::new();
    map.insert(var.id(), with.clone());
    substitute(e, &map)
}

/// Collects the set of free variables referenced by an expression.
pub fn collect_vars(e: &Expr) -> Vec<Var> {
    struct C {
        out: Vec<Var>,
    }
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprNode::Var(v) = &*e.0 {
                if !self.out.iter().any(|x| x == v) {
                    self.out.push(v.clone());
                }
            }
            self.walk_expr(e);
        }
    }
    let mut c = C { out: Vec::new() };
    c.visit_expr(e);
    c.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn substitution_replaces_all_occurrences() {
        let x = Var::int("x");
        let y = Var::int("y");
        let e = (x.clone() + 1) * (x.clone() + 2);
        let sub = substitute_one(&e, &x, &y.to_expr());
        let expected = (y.clone() + 1) * (y.clone() + 2);
        assert!(sub.structural_eq(&expected));
    }

    #[test]
    fn substitution_in_stmt() {
        let x = Var::int("x");
        let buf = Var::new("b", DType::float32());
        let s = Stmt::store(&buf, x.to_expr(), Expr::f32(1.0));
        let s2 = substitute_stmt(&s, &{
            let mut m = HashMap::new();
            m.insert(x.id(), Expr::int(7));
            m
        });
        match &*s2.0 {
            StmtNode::Store { index, .. } => assert_eq!(index.as_int(), Some(7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn collect_vars_dedupes() {
        let x = Var::int("x");
        let y = Var::int("y");
        let e = (x.clone() + y.clone()) * x.clone();
        let vars = collect_vars(&e);
        assert_eq!(vars.len(), 2);
    }
}
