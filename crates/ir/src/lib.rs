//! `tvm-ir` — the low-level intermediate representation of the tvm-rs stack.
//!
//! This crate provides the typed expression and loop-statement IR that the
//! tensor-expression layer (`tvm-te`) lowers into, together with the
//! analyses and tools every other layer relies on:
//!
//! * [`dtype`] — scalar/vector numeric types, including sub-byte quantized
//!   integers and `float16`;
//! * [`expr`] / [`stmt`] — immutable reference-counted IR trees with
//!   operator-overloaded builders;
//! * [`visit`] — visitor/mutator traversal and variable substitution;
//! * [`mod@simplify`] — constant folding, affine canonicalization and
//!   interval-based predicate elimination;
//! * [`interval`] — conservative integer range analysis;
//! * [`printer`] — the Python-like pseudo-code printer used in the paper's
//!   listings;
//! * [`interp`] — a reference interpreter with faithful GPU barrier
//!   semantics, used as the correctness oracle for every schedule
//!   transformation.

pub mod dtype;
pub mod expr;
pub mod interp;
pub mod interval;
pub mod printer;
pub mod simplify;
pub mod stmt;
pub mod visit;

pub use dtype::{DType, TypeCode};
pub use expr::{intern_stats, BinOp, CallKind, CmpOp, Expr, ExprNode, Range, Var, VarId};
pub use interp::{Buffer, Interp, InterpError, MemState, Value};
pub use interval::{eval_interval, floor_div, floor_mod, prove_cmp, Interval};
pub use simplify::{simplify, simplify_stmt, simplify_with, Simplifier};
pub use stmt::{ForKind, LoweredFunc, MemScope, PipeStage, Stmt, StmtNode, ThreadTag};
pub use visit::{collect_vars, substitute, substitute_one, substitute_stmt, Mutator, Visitor};
