//! Pretty-printer producing the Python-like pseudo code used throughout the
//! paper's figures (`for yo in range(128): ...`).

use std::fmt;

use crate::expr::{BinOp, CmpOp, Expr, ExprNode};
use crate::stmt::{ForKind, Stmt, StmtNode};

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "//",
        BinOp::Mod => "%",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::BitAnd => "&",
        BinOp::BitOr => "|",
        BinOp::BitXor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Writes an expression.
pub fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    use ExprNode::*;
    match &*e.0 {
        IntImm { value, dtype } => {
            if dtype.is_bool() {
                write!(f, "{}", *value != 0)
            } else {
                write!(f, "{value}")
            }
        }
        FloatImm { value, .. } => write!(f, "{value:?}"),
        StringImm(s) => write!(f, "{s:?}"),
        Var(v) => write!(f, "{}", v.name()),
        Cast { dtype, value } => write!(f, "{dtype}({value})"),
        Binary { op, a, b } => match op {
            BinOp::Min | BinOp::Max => write!(f, "{}({a}, {b})", binop_str(*op)),
            _ => write!(f, "({a} {} {b})", binop_str(*op)),
        },
        Cmp { op, a, b } => write!(f, "({a} {} {b})", cmpop_str(*op)),
        And { a, b } => write!(f, "({a} and {b})"),
        Or { a, b } => write!(f, "({a} or {b})"),
        Not { a } => write!(f, "(not {a})"),
        Select {
            cond,
            then_case,
            else_case,
        } => {
            write!(f, "({then_case} if {cond} else {else_case})")
        }
        Load {
            buffer,
            index,
            predicate,
        } => {
            write!(f, "{}[{index}]", buffer.name())?;
            if let Some(p) = predicate {
                write!(f, " if {p}")?;
            }
            Ok(())
        }
        Ramp {
            base,
            stride,
            lanes,
        } => write!(f, "ramp({base}, {stride}, {lanes})"),
        Broadcast { value, lanes } => write!(f, "bcast({value}, {lanes})"),
        Let { var, value, body } => write!(f, "(let {} = {value} in {body})", var.name()),
        Call { name, args, .. } => {
            write!(f, "{name}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")
        }
    }
}

fn indent(f: &mut fmt::Formatter<'_>, n: usize) -> fmt::Result {
    for _ in 0..n {
        write!(f, "  ")?;
    }
    Ok(())
}

/// Writes a statement at an indentation level.
pub fn fmt_stmt(s: &Stmt, f: &mut fmt::Formatter<'_>, level: usize) -> fmt::Result {
    use StmtNode::*;
    match &*s.0 {
        LetStmt { var, value, body } => {
            indent(f, level)?;
            writeln!(f, "let {} = {value}", var.name())?;
            fmt_stmt(body, f, level)
        }
        AttrStmt { key, value, body } => {
            indent(f, level)?;
            writeln!(f, "# attr {key} = {value}")?;
            fmt_stmt(body, f, level)
        }
        Store {
            buffer,
            index,
            value,
            predicate,
        } => {
            indent(f, level)?;
            write!(f, "{}[{index}] = {value}", buffer.name())?;
            if let Some(p) = predicate {
                write!(f, " if {p}")?;
            }
            writeln!(f)
        }
        Allocate {
            buffer,
            dtype,
            extent,
            scope,
            body,
        } => {
            indent(f, level)?;
            writeln!(
                f,
                "alloc {}: {dtype}[{extent}] @{}",
                buffer.name(),
                scope.name()
            )?;
            fmt_stmt(body, f, level)
        }
        For {
            var,
            min,
            extent,
            kind,
            body,
        } => {
            indent(f, level)?;
            let kw = match kind {
                ForKind::Serial => "for",
                ForKind::Parallel => "parallel for",
                ForKind::Vectorized => "vectorized for",
                ForKind::Unrolled => "unrolled for",
                ForKind::ThreadBinding(tag) => {
                    writeln!(
                        f,
                        "for {} bound to {} in range({min}, {min} + {extent}):",
                        var.name(),
                        tag.name()
                    )?;
                    return fmt_stmt(body, f, level + 1);
                }
                ForKind::VThread => "for vthread",
            };
            if min.as_int() == Some(0) {
                writeln!(f, "{kw} {} in range({extent}):", var.name())?;
            } else {
                writeln!(f, "{kw} {} in range({min}, {min} + {extent}):", var.name())?;
            }
            fmt_stmt(body, f, level + 1)
        }
        Seq(stmts) => {
            if stmts.is_empty() {
                indent(f, level)?;
                writeln!(f, "pass")
            } else {
                for st in stmts {
                    fmt_stmt(st, f, level)?;
                }
                Ok(())
            }
        }
        IfThenElse {
            cond,
            then_case,
            else_case,
        } => {
            indent(f, level)?;
            writeln!(f, "if {cond}:")?;
            fmt_stmt(then_case, f, level + 1)?;
            if let Some(e) = else_case {
                indent(f, level)?;
                writeln!(f, "else:")?;
                fmt_stmt(e, f, level + 1)?;
            }
            Ok(())
        }
        Evaluate(e) => {
            indent(f, level)?;
            writeln!(f, "{e}")
        }
        Barrier => {
            indent(f, level)?;
            writeln!(f, "memory_barrier_among_threads()")
        }
        PushDep { from, to } => {
            indent(f, level)?;
            writeln!(f, "{}.push_dep_to({})", from.name(), to.name())
        }
        PopDep { by, from } => {
            indent(f, level)?;
            writeln!(f, "{}.pop_dep_from({})", by.name(), from.name())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::dtype::DType;
    use crate::expr::{Expr, Var};
    use crate::stmt::Stmt;

    #[test]
    fn prints_paper_style_loops() {
        let y = Var::int("y");
        let buf = Var::new("C", DType::float32());
        let s = Stmt::for_(&y, 0, 1024, Stmt::store(&buf, y.to_expr(), Expr::f32(0.0)));
        let out = s.to_string();
        assert!(out.contains("for y in range(1024):"), "{out}");
        assert!(out.contains("C[y] = 0.0"), "{out}");
    }

    #[test]
    fn prints_expressions() {
        let x = Var::int("x");
        let e = (x.clone() * 8 + 3).min(Expr::int(100));
        assert_eq!(e.to_string(), "min(((x * 8) + 3), 100)");
    }
}
