//! The low-level expression IR.
//!
//! Expressions are immutable reference-counted trees. Building blocks follow
//! Halide/TVM conventions: typed variables, integer/float immediates, binary
//! arithmetic, comparisons, `select`, buffer loads, short-vector `ramp` /
//! `broadcast`, `let` bindings and intrinsic calls.

use std::fmt;
use std::ops;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock};

use crate::dtype::{DType, TypeCode};

static NEXT_VAR_ID: AtomicUsize = AtomicUsize::new(0);

/// A unique identifier for a [`Var`]; identity, not name, distinguishes
/// variables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Interior of a [`Var`].
#[derive(Debug)]
pub struct VarNode {
    /// Human-readable name used by the printer; need not be unique.
    pub name: String,
    /// Type of the value bound to the variable. Buffer handles use the
    /// element type of the buffer they point to.
    pub dtype: DType,
    /// Globally unique id.
    pub id: VarId,
}

/// A typed variable (loop index, let binding or buffer handle).
///
/// Cloning is cheap; two clones compare equal iff they share an id.
#[derive(Clone, Debug)]
pub struct Var(pub Arc<VarNode>);

impl Var {
    /// Creates a fresh variable with a unique id.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        let id = VarId(NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed));
        Var(Arc::new(VarNode {
            name: name.into(),
            dtype,
            id,
        }))
    }

    /// Convenience constructor for an `int32` variable (the index type).
    pub fn int(name: impl Into<String>) -> Self {
        Var::new(name, DType::int32())
    }

    /// The variable's unique id.
    pub fn id(&self) -> VarId {
        self.0.id
    }

    /// The variable's display name.
    pub fn name(&self) -> &str {
        &self.0.name
    }

    /// The variable's type.
    pub fn dtype(&self) -> DType {
        self.0.dtype
    }

    /// Wraps the variable into an expression.
    pub fn to_expr(&self) -> Expr {
        Expr(Arc::new(ExprNode::Var(self.clone())))
    }
}

impl PartialEq for Var {
    fn eq(&self, other: &Self) -> bool {
        self.0.id == other.0.id
    }
}
impl Eq for Var {}
impl std::hash::Hash for Var {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.id.hash(state);
    }
}

/// Binary arithmetic / bitwise operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Lane-wise addition.
    Add,
    /// Lane-wise subtraction.
    Sub,
    /// Lane-wise multiplication.
    Mul,
    /// Division; floor division for integers.
    Div,
    /// Remainder; floor modulus for integers (result has divisor's sign).
    Mod,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
    /// Bitwise and (integers only).
    BitAnd,
    /// Bitwise or (integers only).
    BitOr,
    /// Bitwise xor (integers only).
    BitXor,
    /// Left shift (integers only).
    Shl,
    /// Arithmetic/logical right shift per signedness (integers only).
    Shr,
}

impl BinOp {
    /// True if the operator commutes.
    pub fn commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::Min
                | BinOp::Max
                | BinOp::BitAnd
                | BinOp::BitOr
                | BinOp::BitXor
        )
    }
}

/// Comparison operators; result type is `bool` (`uint1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

/// How a [`ExprNode::Call`] lowers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CallKind {
    /// Pure math intrinsic computed by the interpreter (`exp`, `tanh`, ...).
    PureIntrinsic,
    /// An opaque hardware intrinsic (e.g. `vdla.gemm`); the back-end /
    /// accelerator runtime gives it meaning.
    HardwareIntrinsic,
}

/// Interior node of an [`Expr`] tree.
#[derive(Clone, Debug)]
pub enum ExprNode {
    /// Integer immediate of the given type.
    IntImm { value: i64, dtype: DType },
    /// Floating-point immediate of the given type.
    FloatImm { value: f64, dtype: DType },
    /// String immediate (annotation payloads only; never computed with).
    StringImm(String),
    /// Variable reference.
    Var(Var),
    /// Value conversion between numeric types, with saturation-free
    /// truncation semantics for narrowing integer casts.
    Cast { dtype: DType, value: Expr },
    /// Binary arithmetic.
    Binary { op: BinOp, a: Expr, b: Expr },
    /// Comparison producing `bool`.
    Cmp { op: CmpOp, a: Expr, b: Expr },
    /// Logical and (short-circuit semantics are not observable: exprs are
    /// pure).
    And { a: Expr, b: Expr },
    /// Logical or.
    Or { a: Expr, b: Expr },
    /// Logical negation.
    Not { a: Expr },
    /// `cond ? then_case : else_case`, lane-wise.
    Select {
        cond: Expr,
        then_case: Expr,
        else_case: Expr,
    },
    /// Scalar or vector load `buffer[index]` (flat index, in elements).
    Load {
        buffer: Var,
        index: Expr,
        predicate: Option<Expr>,
    },
    /// Vector `base + stride * [0, 1, .., lanes-1]`.
    Ramp {
        base: Expr,
        stride: Expr,
        lanes: u16,
    },
    /// Vector with all lanes equal to `value`.
    Broadcast { value: Expr, lanes: u16 },
    /// `let var = value in body`.
    Let { var: Var, value: Expr, body: Expr },
    /// Intrinsic call.
    Call {
        dtype: DType,
        name: String,
        args: Vec<Expr>,
        kind: CallKind,
    },
}

/// A reference-counted, immutable expression.
#[derive(Clone, Debug)]
pub struct Expr(pub Arc<ExprNode>);

/// Range of `int32` immediates kept in the global intern pool. Lowering
/// builds loop bounds, strides, tile extents and guard constants from this
/// range overwhelmingly often, so [`Expr::int`] serves them as `Arc` clones
/// of pre-built nodes instead of fresh allocations.
const INTERN_MIN: i64 = -8;
const INTERN_MAX: i64 = 512;

static INT_POOL: LazyLock<Vec<Expr>> = LazyLock::new(|| {
    (INTERN_MIN..=INTERN_MAX)
        .map(|value| {
            Expr(Arc::new(ExprNode::IntImm {
                value,
                dtype: DType::int32(),
            }))
        })
        .collect()
});

static INTERN_HITS: AtomicU64 = AtomicU64::new(0);
static INTERN_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the integer-immediate intern pool since process
/// start. A hit is an `Expr::int`-family request served without allocating.
pub fn intern_stats() -> (u64, u64) {
    (
        INTERN_HITS.load(Ordering::Relaxed),
        INTERN_MISSES.load(Ordering::Relaxed),
    )
}

impl Expr {
    /// Wraps a node.
    pub fn new(node: ExprNode) -> Self {
        Expr(Arc::new(node))
    }

    /// `int32` immediate. Small values come from a global intern pool.
    pub fn int(value: i64) -> Self {
        if (INTERN_MIN..=INTERN_MAX).contains(&value) {
            INTERN_HITS.fetch_add(1, Ordering::Relaxed);
            return INT_POOL[(value - INTERN_MIN) as usize].clone();
        }
        INTERN_MISSES.fetch_add(1, Ordering::Relaxed);
        Expr::new(ExprNode::IntImm {
            value,
            dtype: DType::int32(),
        })
    }

    /// Immediate of an arbitrary integer type.
    pub fn int_of(value: i64, dtype: DType) -> Self {
        debug_assert!(dtype.is_int());
        if dtype == DType::int32() {
            return Expr::int(value);
        }
        Expr::new(ExprNode::IntImm { value, dtype })
    }

    /// `float32` immediate.
    pub fn f32(value: f32) -> Self {
        Expr::new(ExprNode::FloatImm {
            value: value as f64,
            dtype: DType::float32(),
        })
    }

    /// Immediate of an arbitrary float type.
    pub fn float_of(value: f64, dtype: DType) -> Self {
        debug_assert!(dtype.is_float());
        Expr::new(ExprNode::FloatImm { value, dtype })
    }

    /// Boolean immediate (`uint1`).
    pub fn bool_(value: bool) -> Self {
        Expr::new(ExprNode::IntImm {
            value: value as i64,
            dtype: DType::bool_(),
        })
    }

    /// Typed zero immediate.
    pub fn zero(dtype: DType) -> Self {
        if dtype.is_float() {
            Expr::new(ExprNode::FloatImm { value: 0.0, dtype })
        } else if dtype == DType::int32() {
            Expr::int(0)
        } else {
            Expr::new(ExprNode::IntImm { value: 0, dtype })
        }
    }

    /// Typed one immediate.
    pub fn one(dtype: DType) -> Self {
        if dtype.is_float() {
            Expr::new(ExprNode::FloatImm { value: 1.0, dtype })
        } else if dtype == DType::int32() {
            Expr::int(1)
        } else {
            Expr::new(ExprNode::IntImm { value: 1, dtype })
        }
    }

    /// Most negative representable immediate, used as `max`-reduce identity.
    pub fn min_value(dtype: DType) -> Self {
        if dtype.is_float() {
            Expr::new(ExprNode::FloatImm {
                value: f64::NEG_INFINITY,
                dtype,
            })
        } else if dtype.code == TypeCode::UInt {
            Expr::new(ExprNode::IntImm { value: 0, dtype })
        } else {
            let v = if dtype.bits >= 64 {
                i64::MIN
            } else {
                -(1i64 << (dtype.bits - 1))
            };
            Expr::new(ExprNode::IntImm { value: v, dtype })
        }
    }

    /// The expression's result type.
    pub fn dtype(&self) -> DType {
        match &*self.0 {
            ExprNode::IntImm { dtype, .. } | ExprNode::FloatImm { dtype, .. } => *dtype,
            ExprNode::StringImm(_) => DType::uint(8),
            ExprNode::Var(v) => v.dtype(),
            ExprNode::Cast { dtype, .. } => *dtype,
            ExprNode::Binary { a, .. } => a.dtype(),
            ExprNode::Cmp { a, .. } => DType::bool_().with_lanes(a.dtype().lanes),
            ExprNode::And { a, .. } | ExprNode::Or { a, .. } | ExprNode::Not { a } => {
                DType::bool_().with_lanes(a.dtype().lanes)
            }
            ExprNode::Select { then_case, .. } => then_case.dtype(),
            ExprNode::Load { buffer, index, .. } => buffer.dtype().with_lanes(index.dtype().lanes),
            ExprNode::Ramp { base, lanes, .. } => base.dtype().with_lanes(*lanes),
            ExprNode::Broadcast { value, lanes } => value.dtype().with_lanes(*lanes),
            ExprNode::Let { body, .. } => body.dtype(),
            ExprNode::Call { dtype, .. } => *dtype,
        }
    }

    /// Returns the constant integer value if this is an integer immediate.
    pub fn as_int(&self) -> Option<i64> {
        match &*self.0 {
            ExprNode::IntImm { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// Returns the constant float value if this is a float immediate.
    pub fn as_float(&self) -> Option<f64> {
        match &*self.0 {
            ExprNode::FloatImm { value, .. } => Some(*value),
            _ => None,
        }
    }

    /// True if this is the integer constant `v`.
    pub fn is_const_int(&self, v: i64) -> bool {
        self.as_int() == Some(v)
    }

    /// Returns the variable if this expression is a bare variable reference.
    pub fn as_var(&self) -> Option<&Var> {
        match &*self.0 {
            ExprNode::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Builds a binary node without simplification.
    pub fn binary(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::new(ExprNode::Binary { op, a, b })
    }

    /// Builds a comparison node.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::new(ExprNode::Cmp { op, a, b })
    }

    /// Lane-wise minimum.
    pub fn min(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Min, self, other)
    }

    /// Lane-wise maximum.
    pub fn max(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Max, self, other)
    }

    /// Floor division.
    pub fn floordiv(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Div, self, other)
    }

    /// Floor modulus.
    pub fn floormod(self, other: Expr) -> Expr {
        Expr::binary(BinOp::Mod, self, other)
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, self, other)
    }

    /// `self != other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Ne, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Lt, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Le, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Gt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::cmp(CmpOp::Ge, self, other)
    }

    /// Logical and.
    pub fn and(self, other: Expr) -> Expr {
        Expr::new(ExprNode::And { a: self, b: other })
    }

    /// Logical or.
    pub fn or(self, other: Expr) -> Expr {
        Expr::new(ExprNode::Or { a: self, b: other })
    }

    /// Logical negation. Named to match `and`/`or` in the builder DSL
    /// rather than implementing `std::ops::Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::new(ExprNode::Not { a: self })
    }

    /// Conversion to `dtype` (identity casts are collapsed).
    pub fn cast(self, dtype: DType) -> Expr {
        if self.dtype() == dtype {
            self
        } else {
            Expr::new(ExprNode::Cast { dtype, value: self })
        }
    }

    /// `cond ? a : b`.
    pub fn select(cond: Expr, a: Expr, b: Expr) -> Expr {
        Expr::new(ExprNode::Select {
            cond,
            then_case: a,
            else_case: b,
        })
    }

    /// Unpredicated flat load.
    pub fn load(buffer: &Var, index: Expr) -> Expr {
        Expr::new(ExprNode::Load {
            buffer: buffer.clone(),
            index,
            predicate: None,
        })
    }

    /// Pure math intrinsic call with result type `dtype`.
    pub fn call(name: impl Into<String>, args: Vec<Expr>, dtype: DType) -> Expr {
        Expr::new(ExprNode::Call {
            dtype,
            name: name.into(),
            args,
            kind: CallKind::PureIntrinsic,
        })
    }

    /// Opaque hardware intrinsic call.
    pub fn hw_call(name: impl Into<String>, args: Vec<Expr>, dtype: DType) -> Expr {
        Expr::new(ExprNode::Call {
            dtype,
            name: name.into(),
            args,
            kind: CallKind::HardwareIntrinsic,
        })
    }

    /// Structural equality modulo variable identity (ids must match).
    pub fn structural_eq(&self, other: &Expr) -> bool {
        structural_eq(self, other)
    }
}

fn structural_eq(a: &Expr, b: &Expr) -> bool {
    use ExprNode::*;
    match (&*a.0, &*b.0) {
        (
            IntImm {
                value: v1,
                dtype: d1,
            },
            IntImm {
                value: v2,
                dtype: d2,
            },
        ) => v1 == v2 && d1 == d2,
        (
            FloatImm {
                value: v1,
                dtype: d1,
            },
            FloatImm {
                value: v2,
                dtype: d2,
            },
        ) => v1 == v2 && d1 == d2,
        (StringImm(s1), StringImm(s2)) => s1 == s2,
        (Var(v1), Var(v2)) => v1 == v2,
        (
            Cast {
                dtype: d1,
                value: v1,
            },
            Cast {
                dtype: d2,
                value: v2,
            },
        ) => d1 == d2 && structural_eq(v1, v2),
        (
            Binary {
                op: o1,
                a: a1,
                b: b1,
            },
            Binary {
                op: o2,
                a: a2,
                b: b2,
            },
        ) => o1 == o2 && structural_eq(a1, a2) && structural_eq(b1, b2),
        (
            Cmp {
                op: o1,
                a: a1,
                b: b1,
            },
            Cmp {
                op: o2,
                a: a2,
                b: b2,
            },
        ) => o1 == o2 && structural_eq(a1, a2) && structural_eq(b1, b2),
        (And { a: a1, b: b1 }, And { a: a2, b: b2 })
        | (Or { a: a1, b: b1 }, Or { a: a2, b: b2 }) => {
            structural_eq(a1, a2) && structural_eq(b1, b2)
        }
        (Not { a: a1 }, Not { a: a2 }) => structural_eq(a1, a2),
        (
            Select {
                cond: c1,
                then_case: t1,
                else_case: e1,
            },
            Select {
                cond: c2,
                then_case: t2,
                else_case: e2,
            },
        ) => structural_eq(c1, c2) && structural_eq(t1, t2) && structural_eq(e1, e2),
        (
            Load {
                buffer: buf1,
                index: i1,
                predicate: p1,
            },
            Load {
                buffer: buf2,
                index: i2,
                predicate: p2,
            },
        ) => {
            buf1 == buf2
                && structural_eq(i1, i2)
                && match (p1, p2) {
                    (None, None) => true,
                    (Some(x), Some(y)) => structural_eq(x, y),
                    _ => false,
                }
        }
        (
            Ramp {
                base: b1,
                stride: s1,
                lanes: l1,
            },
            Ramp {
                base: b2,
                stride: s2,
                lanes: l2,
            },
        ) => l1 == l2 && structural_eq(b1, b2) && structural_eq(s1, s2),
        (
            Broadcast {
                value: v1,
                lanes: l1,
            },
            Broadcast {
                value: v2,
                lanes: l2,
            },
        ) => l1 == l2 && structural_eq(v1, v2),
        (
            Let {
                var: v1,
                value: x1,
                body: b1,
            },
            Let {
                var: v2,
                value: x2,
                body: b2,
            },
        ) => v1 == v2 && structural_eq(x1, x2) && structural_eq(b1, b2),
        (
            Call {
                dtype: d1,
                name: n1,
                args: a1,
                kind: k1,
            },
            Call {
                dtype: d2,
                name: n2,
                args: a2,
                kind: k2,
            },
        ) => {
            d1 == d2
                && n1 == n2
                && k1 == k2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| structural_eq(x, y))
        }
        _ => false,
    }
}

macro_rules! impl_binop {
    ($trait_:ident, $method:ident, $op:expr) => {
        impl ops::$trait_ for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, self, rhs)
            }
        }
        impl ops::$trait_<i64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                let dt = self.dtype();
                let rhs = if dt.is_float() {
                    Expr::float_of(rhs as f64, dt)
                } else {
                    Expr::int_of(rhs, dt)
                };
                Expr::binary($op, self, rhs)
            }
        }
        impl ops::$trait_<Expr> for Var {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, self.to_expr(), rhs)
            }
        }
        impl ops::$trait_<i64> for Var {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                Expr::binary($op, self.to_expr(), Expr::int(rhs))
            }
        }
        impl ops::$trait_<Var> for Var {
            type Output = Expr;
            fn $method(self, rhs: Var) -> Expr {
                Expr::binary($op, self.to_expr(), rhs.to_expr())
            }
        }
        impl ops::$trait_<Var> for Expr {
            type Output = Expr;
            fn $method(self, rhs: Var) -> Expr {
                Expr::binary($op, self, rhs.to_expr())
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(Div, div, BinOp::Div);
impl_binop!(Rem, rem, BinOp::Mod);

impl From<&Var> for Expr {
    fn from(v: &Var) -> Expr {
        v.to_expr()
    }
}
impl From<Var> for Expr {
    fn from(v: Var) -> Expr {
        v.to_expr()
    }
}
impl From<i64> for Expr {
    fn from(v: i64) -> Expr {
        Expr::int(v)
    }
}
impl From<f32> for Expr {
    fn from(v: f32) -> Expr {
        Expr::f32(v)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::fmt_expr(self, f)
    }
}

/// A half-open integer range `[min, min + extent)` described by expressions.
#[derive(Clone, Debug)]
pub struct Range {
    /// Inclusive lower bound.
    pub min: Expr,
    /// Number of elements.
    pub extent: Expr,
}

impl Range {
    /// Builds a range from expressions.
    pub fn new(min: impl Into<Expr>, extent: impl Into<Expr>) -> Self {
        Range {
            min: min.into(),
            extent: extent.into(),
        }
    }

    /// Builds `[0, extent)`.
    pub fn from_extent(extent: impl Into<Expr>) -> Self {
        Range::new(Expr::int(0), extent)
    }

    /// Returns the constant extent, if known.
    pub fn const_extent(&self) -> Option<i64> {
        self.extent.as_int()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_identity_not_name() {
        let a = Var::int("x");
        let b = Var::int("x");
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn operator_overloads_build_expected_nodes() {
        let x = Var::int("x");
        let e = x.clone() * 4 + 3;
        match &*e.0 {
            ExprNode::Binary {
                op: BinOp::Add, a, ..
            } => match &*a.0 {
                ExprNode::Binary { op: BinOp::Mul, .. } => {}
                other => panic!("expected Mul, got {other:?}"),
            },
            other => panic!("expected Add, got {other:?}"),
        }
        assert_eq!(e.dtype(), DType::int32());
    }

    #[test]
    fn dtype_inference() {
        let x = Var::new("x", DType::float32());
        assert!((x.clone() + Expr::f32(1.0)).dtype().is_float());
        assert!(x.to_expr().lt(Expr::f32(0.0)).dtype().is_bool());
        let b = Var::new("buf", DType::float16());
        assert_eq!(Expr::load(&b, Expr::int(0)).dtype(), DType::float16());
    }

    #[test]
    fn structural_equality() {
        let x = Var::int("x");
        let e1 = x.clone() + 1;
        let e2 = x.clone() + 1;
        let e3 = x.clone() + 2;
        assert!(e1.structural_eq(&e2));
        assert!(!e1.structural_eq(&e3));
    }

    #[test]
    fn min_value_identities() {
        assert_eq!(Expr::min_value(DType::int8()).as_int(), Some(-128));
        assert_eq!(Expr::min_value(DType::uint(8)).as_int(), Some(0));
        assert!(Expr::min_value(DType::float32())
            .as_float()
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn identity_cast_is_collapsed() {
        let x = Var::int("x");
        let e = x.to_expr().cast(DType::int32());
        assert!(matches!(&*e.0, ExprNode::Var(_)));
        let e = x.to_expr().cast(DType::float32());
        assert!(matches!(&*e.0, ExprNode::Cast { .. }));
    }
}
