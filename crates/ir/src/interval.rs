//! Constant-interval analysis over integer expressions.
//!
//! Used by bound inference (to compute the region of a producer tensor a
//! consumer touches), by the simplifier (to discharge provably-true
//! predicates) and by the hardware cost models (to bound index footprints).

use std::collections::HashMap;

use crate::expr::{BinOp, CmpOp, Expr, ExprNode, VarId};

/// A closed integer interval `[min, max]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub min: i64,
    /// Inclusive upper bound.
    pub max: i64,
}

impl Interval {
    /// A single-point interval.
    pub fn point(v: i64) -> Self {
        Interval { min: v, max: v }
    }

    /// An interval from bounds; panics in debug builds when `min > max`.
    pub fn new(min: i64, max: i64) -> Self {
        debug_assert!(min <= max, "invalid interval [{min}, {max}]");
        Interval { min, max }
    }

    /// The number of integers contained.
    pub fn extent(&self) -> i64 {
        self.max - self.min + 1
    }

    /// Smallest interval containing both.
    pub fn union(self, other: Interval) -> Interval {
        Interval {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// True if the interval is the single point `v`.
    pub fn is_point(&self, v: i64) -> bool {
        self.min == v && self.max == v
    }

    fn add(self, o: Interval) -> Interval {
        Interval {
            min: self.min.saturating_add(o.min),
            max: self.max.saturating_add(o.max),
        }
    }

    fn sub(self, o: Interval) -> Interval {
        Interval {
            min: self.min.saturating_sub(o.max),
            max: self.max.saturating_sub(o.min),
        }
    }

    fn mul(self, o: Interval) -> Interval {
        let cands = [
            self.min.saturating_mul(o.min),
            self.min.saturating_mul(o.max),
            self.max.saturating_mul(o.min),
            self.max.saturating_mul(o.max),
        ];
        Interval {
            min: *cands.iter().min().expect("non-empty"),
            max: *cands.iter().max().expect("non-empty"),
        }
    }

    fn floordiv(self, o: Interval) -> Option<Interval> {
        // Only handle divisors that do not straddle zero.
        if o.min <= 0 && o.max >= 0 {
            return None;
        }
        let cands = [
            floor_div(self.min, o.min),
            floor_div(self.min, o.max),
            floor_div(self.max, o.min),
            floor_div(self.max, o.max),
        ];
        Some(Interval {
            min: *cands.iter().min().expect("non-empty"),
            max: *cands.iter().max().expect("non-empty"),
        })
    }

    fn floormod(self, o: Interval) -> Option<Interval> {
        if o.min <= 0 {
            return None;
        }
        // If the whole interval falls inside one modulus period, mod is
        // exact; otherwise fall back to [0, divisor-1].
        if o.min == o.max {
            let m = o.min;
            let qa = floor_div(self.min, m);
            let qb = floor_div(self.max, m);
            if qa == qb {
                return Some(Interval::new(
                    floor_mod(self.min, m),
                    floor_mod(self.max, m),
                ));
            }
        }
        Some(Interval::new(0, o.max - 1))
    }
}

/// Floor division matching the IR's integer `Div` semantics.
pub fn floor_div(a: i64, b: i64) -> i64 {
    let q = a.wrapping_div(b);
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Floor modulus matching the IR's integer `Mod` semantics.
pub fn floor_mod(a: i64, b: i64) -> i64 {
    a - floor_div(a, b) * b
}

/// Computes a conservative interval for an integer expression given
/// intervals for its free variables. Returns `None` when the expression is
/// non-integer or unbounded under this analysis.
pub fn eval_interval(e: &Expr, bounds: &HashMap<VarId, Interval>) -> Option<Interval> {
    use ExprNode::*;
    match &*e.0 {
        IntImm { value, .. } => Some(Interval::point(*value)),
        Var(v) => bounds.get(&v.id()).copied(),
        Cast { value, dtype } if dtype.is_int() => eval_interval(value, bounds),
        Binary { op, a, b } => {
            let ia = eval_interval(a, bounds)?;
            let ib = eval_interval(b, bounds)?;
            match op {
                BinOp::Add => Some(ia.add(ib)),
                BinOp::Sub => Some(ia.sub(ib)),
                BinOp::Mul => Some(ia.mul(ib)),
                BinOp::Div => ia.floordiv(ib),
                BinOp::Mod => ia.floormod(ib),
                BinOp::Min => Some(Interval::new(ia.min.min(ib.min), ia.max.min(ib.max))),
                BinOp::Max => Some(Interval::new(ia.min.max(ib.min), ia.max.max(ib.max))),
                _ => None,
            }
        }
        Select {
            then_case,
            else_case,
            ..
        } => {
            let it = eval_interval(then_case, bounds)?;
            let ie = eval_interval(else_case, bounds)?;
            Some(it.union(ie))
        }
        Let { var, value, body } => {
            let iv = eval_interval(value, bounds)?;
            let mut inner = bounds.clone();
            inner.insert(var.id(), iv);
            eval_interval(body, &inner)
        }
        _ => None,
    }
}

/// Attempts to prove a comparison true or false via interval analysis.
/// Returns `None` when undecidable.
pub fn prove_cmp(op: CmpOp, a: &Expr, b: &Expr, bounds: &HashMap<VarId, Interval>) -> Option<bool> {
    let ia = eval_interval(a, bounds)?;
    let ib = eval_interval(b, bounds)?;
    match op {
        CmpOp::Lt => {
            if ia.max < ib.min {
                Some(true)
            } else if ia.min >= ib.max {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Le => {
            if ia.max <= ib.min {
                Some(true)
            } else if ia.min > ib.max {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Gt => prove_cmp(CmpOp::Lt, b, a, bounds),
        CmpOp::Ge => prove_cmp(CmpOp::Le, b, a, bounds),
        CmpOp::Eq => {
            if ia.is_point(ib.min) && ib.is_point(ia.min) {
                Some(true)
            } else if ia.max < ib.min || ib.max < ia.min {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Ne => prove_cmp(CmpOp::Eq, a, b, bounds).map(|v| !v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Var;

    fn b(v: &Var, min: i64, max: i64) -> HashMap<VarId, Interval> {
        let mut m = HashMap::new();
        m.insert(v.id(), Interval::new(min, max));
        m
    }

    #[test]
    fn floor_semantics() {
        assert_eq!(floor_div(7, 2), 3);
        assert_eq!(floor_div(-7, 2), -4);
        assert_eq!(floor_mod(-7, 2), 1);
        assert_eq!(floor_mod(7, 2), 1);
    }

    #[test]
    fn affine_interval() {
        let x = Var::int("x");
        let e = x.clone() * 8 + 3;
        let iv = eval_interval(&e, &b(&x, 0, 15)).expect("bounded");
        assert_eq!(iv, Interval::new(3, 123));
    }

    #[test]
    fn division_interval() {
        let x = Var::int("x");
        let e = x.clone() / 4;
        let iv = eval_interval(&e, &b(&x, 0, 15)).expect("bounded");
        assert_eq!(iv, Interval::new(0, 3));
    }

    #[test]
    fn modulus_within_one_period_is_exact() {
        let x = Var::int("x");
        let e = x.clone() % 8;
        let iv = eval_interval(&e, &b(&x, 2, 5)).expect("bounded");
        assert_eq!(iv, Interval::new(2, 5));
        let iv = eval_interval(&e, &b(&x, 2, 11)).expect("bounded");
        assert_eq!(iv, Interval::new(0, 7));
    }

    #[test]
    fn min_max_intervals() {
        let x = Var::int("x");
        let e = x.to_expr().min(Expr::int(10));
        let iv = eval_interval(&e, &b(&x, 5, 20)).expect("bounded");
        assert_eq!(iv, Interval::new(5, 10));
    }

    #[test]
    fn prove_bounds_check() {
        let x = Var::int("x");
        // x in [0, 7] proves x < 8.
        assert_eq!(
            prove_cmp(CmpOp::Lt, &x.to_expr(), &Expr::int(8), &b(&x, 0, 7)),
            Some(true)
        );
        assert_eq!(
            prove_cmp(CmpOp::Lt, &x.to_expr(), &Expr::int(7), &b(&x, 0, 7)),
            None
        );
        assert_eq!(
            prove_cmp(CmpOp::Ge, &x.to_expr(), &Expr::int(0), &b(&x, 0, 7)),
            Some(true)
        );
    }

    #[test]
    fn unbounded_var_is_none() {
        let x = Var::int("x");
        assert!(eval_interval(&x.to_expr(), &HashMap::new()).is_none());
    }
}
