//! The low-level statement IR: loop nests, stores, allocations and the
//! synchronization primitives needed by GPU barriers and the decoupled
//! access-execute (DAE) accelerator pipeline of §4.4.

use std::fmt;
use std::sync::Arc;

use crate::dtype::DType;
use crate::expr::{Expr, Var};

/// GPU thread-axis tags for the `bind` schedule primitive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ThreadTag {
    /// Grid x dimension.
    BlockIdxX,
    /// Grid y dimension.
    BlockIdxY,
    /// Grid z dimension.
    BlockIdxZ,
    /// Block-local thread x dimension.
    ThreadIdxX,
    /// Block-local thread y dimension.
    ThreadIdxY,
    /// Block-local thread z dimension.
    ThreadIdxZ,
}

impl ThreadTag {
    /// True for the block (grid) axes.
    pub fn is_block(self) -> bool {
        matches!(
            self,
            ThreadTag::BlockIdxX | ThreadTag::BlockIdxY | ThreadTag::BlockIdxZ
        )
    }

    /// Canonical name, e.g. `threadIdx.x`.
    pub fn name(self) -> &'static str {
        match self {
            ThreadTag::BlockIdxX => "blockIdx.x",
            ThreadTag::BlockIdxY => "blockIdx.y",
            ThreadTag::BlockIdxZ => "blockIdx.z",
            ThreadTag::ThreadIdxX => "threadIdx.x",
            ThreadTag::ThreadIdxY => "threadIdx.y",
            ThreadTag::ThreadIdxZ => "threadIdx.z",
        }
    }
}

/// Execution flavor of a [`StmtNode::For`] loop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ForKind {
    /// Ordinary sequential loop.
    Serial,
    /// CPU multi-core parallel loop (`parallel` schedule primitive).
    Parallel,
    /// SIMD-vectorized loop (`vectorize`).
    Vectorized,
    /// Fully unrolled loop (`unroll`).
    Unrolled,
    /// Loop bound to a GPU thread axis (`bind`); iterations run on distinct
    /// hardware threads.
    ThreadBinding(ThreadTag),
    /// Virtual thread for DAE latency hiding (§4.4); eliminated by the
    /// virtual-thread lowering pass which interleaves its iterations.
    VThread,
}

/// Memory scope of an allocation — the paper's "special memory scope"
/// schedule space extension (Fig. 6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemScope {
    /// Off-chip DRAM, visible to all threads.
    Global,
    /// GPU shared memory: visible within a thread block, requires barriers.
    Shared,
    /// Per-thread registers / stack.
    Local,
    /// Accelerator on-chip accumulator SRAM (VDLA `acc_buffer`).
    AccBuffer,
    /// Accelerator on-chip input SRAM (VDLA `inp_buffer`).
    InpBuffer,
    /// Accelerator on-chip weight SRAM (VDLA `wgt_buffer`).
    WgtBuffer,
}

impl MemScope {
    /// Canonical name used by the printer and the schedule API.
    pub fn name(self) -> &'static str {
        match self {
            MemScope::Global => "global",
            MemScope::Shared => "shared",
            MemScope::Local => "local",
            MemScope::AccBuffer => "acc_buffer",
            MemScope::InpBuffer => "inp_buffer",
            MemScope::WgtBuffer => "wgt_buffer",
        }
    }

    /// Parses a scope name.
    pub fn parse(s: &str) -> Option<MemScope> {
        Some(match s {
            "global" => MemScope::Global,
            "shared" => MemScope::Shared,
            "local" => MemScope::Local,
            "acc_buffer" => MemScope::AccBuffer,
            "inp_buffer" => MemScope::InpBuffer,
            "wgt_buffer" => MemScope::WgtBuffer,
            _ => return None,
        })
    }

    /// True for the accelerator on-chip scopes.
    pub fn is_accel(self) -> bool {
        matches!(
            self,
            MemScope::AccBuffer | MemScope::InpBuffer | MemScope::WgtBuffer
        )
    }
}

/// DAE pipeline stages between which dependence tokens flow (Fig. 9).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum PipeStage {
    /// Memory load unit.
    Load,
    /// Compute (GEMM / ALU) unit.
    Compute,
    /// Memory store unit.
    Store,
}

impl PipeStage {
    /// Canonical short name (`ld` / `ex` / `st`), matching Fig. 8.
    pub fn name(self) -> &'static str {
        match self {
            PipeStage::Load => "ld",
            PipeStage::Compute => "ex",
            PipeStage::Store => "st",
        }
    }
}

/// Interior node of a [`Stmt`] tree.
#[derive(Clone, Debug)]
pub enum StmtNode {
    /// `let var = value; body`.
    LetStmt { var: Var, value: Expr, body: Stmt },
    /// Key/value annotation wrapped around `body` (e.g. pragmas, pipeline
    /// stage tags for DAE lowering).
    AttrStmt {
        key: String,
        value: Expr,
        body: Stmt,
    },
    /// Scalar or vector store `buffer[index] = value`.
    Store {
        buffer: Var,
        index: Expr,
        value: Expr,
        predicate: Option<Expr>,
    },
    /// Allocation of `extent` elements of `dtype` in `scope`, live for
    /// `body`.
    Allocate {
        buffer: Var,
        dtype: DType,
        extent: Expr,
        scope: MemScope,
        body: Stmt,
    },
    /// Loop `for var in [min, min+extent) { body }` with execution `kind`.
    For {
        var: Var,
        min: Expr,
        extent: Expr,
        kind: ForKind,
        body: Stmt,
    },
    /// Statement sequence.
    Seq(Vec<Stmt>),
    /// Conditional.
    IfThenElse {
        cond: Expr,
        then_case: Stmt,
        else_case: Option<Stmt>,
    },
    /// Expression evaluated for effect (hardware intrinsic calls).
    Evaluate(Expr),
    /// `memory_barrier_among_threads()` — synchronizes a GPU thread block
    /// and makes shared-memory stores visible (§4.2).
    Barrier,
    /// DAE token push: `from.push_dep_to(to)` (§4.4 / Fig. 8).
    PushDep { from: PipeStage, to: PipeStage },
    /// DAE token pop: `by.pop_dep_from(from)`.
    PopDep { by: PipeStage, from: PipeStage },
}

/// A reference-counted, immutable statement.
#[derive(Clone, Debug)]
pub struct Stmt(pub Arc<StmtNode>);

impl Stmt {
    /// Wraps a node.
    pub fn new(node: StmtNode) -> Self {
        Stmt(Arc::new(node))
    }

    /// Unpredicated flat store.
    pub fn store(buffer: &Var, index: Expr, value: Expr) -> Stmt {
        Stmt::new(StmtNode::Store {
            buffer: buffer.clone(),
            index,
            value,
            predicate: None,
        })
    }

    /// Serial loop.
    pub fn for_(var: &Var, min: impl Into<Expr>, extent: impl Into<Expr>, body: Stmt) -> Stmt {
        Stmt::loop_(var, min, extent, ForKind::Serial, body)
    }

    /// Loop with an explicit kind.
    pub fn loop_(
        var: &Var,
        min: impl Into<Expr>,
        extent: impl Into<Expr>,
        kind: ForKind,
        body: Stmt,
    ) -> Stmt {
        Stmt::new(StmtNode::For {
            var: var.clone(),
            min: min.into(),
            extent: extent.into(),
            kind,
            body,
        })
    }

    /// Sequence, flattening nested sequences and dropping no-ops.
    pub fn seq(stmts: Vec<Stmt>) -> Stmt {
        let mut flat = Vec::with_capacity(stmts.len());
        for s in stmts {
            match &*s.0 {
                StmtNode::Seq(inner) => flat.extend(inner.iter().cloned()),
                _ => flat.push(s),
            }
        }
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Stmt::new(StmtNode::Seq(flat))
        }
    }

    /// No-op statement (empty sequence).
    pub fn nop() -> Stmt {
        Stmt::new(StmtNode::Seq(Vec::new()))
    }

    /// True if this is an empty sequence.
    pub fn is_nop(&self) -> bool {
        matches!(&*self.0, StmtNode::Seq(v) if v.is_empty())
    }

    /// Allocation wrapper.
    pub fn allocate(
        buffer: &Var,
        dtype: DType,
        extent: impl Into<Expr>,
        scope: MemScope,
        body: Stmt,
    ) -> Stmt {
        Stmt::new(StmtNode::Allocate {
            buffer: buffer.clone(),
            dtype,
            extent: extent.into(),
            scope,
            body,
        })
    }

    /// Annotation wrapper.
    pub fn attr(key: impl Into<String>, value: Expr, body: Stmt) -> Stmt {
        Stmt::new(StmtNode::AttrStmt {
            key: key.into(),
            value,
            body,
        })
    }

    /// Conditional with no else branch.
    pub fn if_then(cond: Expr, then_case: Stmt) -> Stmt {
        Stmt::new(StmtNode::IfThenElse {
            cond,
            then_case,
            else_case: None,
        })
    }

    /// Hardware/pure intrinsic evaluated for effect.
    pub fn evaluate(e: Expr) -> Stmt {
        Stmt::new(StmtNode::Evaluate(e))
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::fmt_stmt(self, f, 0)
    }
}

/// A lowered function: the unit handed to back-ends, simulators and the
/// interpreter.
#[derive(Clone, Debug)]
pub struct LoweredFunc {
    /// Function name.
    pub name: String,
    /// Parameter order: buffer handles first (in user-specified order), then
    /// scalar params.
    pub params: Vec<Var>,
    /// Element type of each buffer param, parallel to the buffer prefix of
    /// `params`.
    pub param_dtypes: Vec<DType>,
    /// Flat length (elements) of each buffer param.
    pub param_extents: Vec<usize>,
    /// Function body.
    pub body: Stmt,
}

impl LoweredFunc {
    /// Total dynamic thread-block count if the function binds block axes
    /// (product of blockIdx extents), else 1.
    pub fn grid_size(&self) -> usize {
        let mut n = 1usize;
        collect_thread_extents(&self.body, true, &mut n);
        n
    }

    /// Threads per block if the function binds thread axes, else 1.
    pub fn block_size(&self) -> usize {
        let mut n = 1usize;
        collect_thread_extents(&self.body, false, &mut n);
        n
    }
}

fn collect_thread_extents(s: &Stmt, block: bool, acc: &mut usize) {
    match &*s.0 {
        StmtNode::For {
            kind: ForKind::ThreadBinding(tag),
            extent,
            body,
            ..
        } => {
            if tag.is_block() == block {
                if let Some(e) = extent.as_int() {
                    *acc = acc.saturating_mul(e.max(1) as usize);
                }
            }
            collect_thread_extents(body, block, acc);
        }
        StmtNode::For { body, .. }
        | StmtNode::LetStmt { body, .. }
        | StmtNode::AttrStmt { body, .. }
        | StmtNode::Allocate { body, .. } => collect_thread_extents(body, block, acc),
        StmtNode::Seq(v) => {
            // Thread nests are not duplicated across sequence arms in our
            // lowering; take the first arm that contains one.
            let before = *acc;
            for st in v {
                collect_thread_extents(st, block, acc);
                if *acc != before {
                    break;
                }
            }
        }
        StmtNode::IfThenElse {
            then_case,
            else_case,
            ..
        } => {
            collect_thread_extents(then_case, block, acc);
            if let Some(e) = else_case {
                collect_thread_extents(e, block, acc);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;

    #[test]
    fn seq_flattens() {
        let buf = Var::new("b", DType::float32());
        let s1 = Stmt::store(&buf, Expr::int(0), Expr::f32(1.0));
        let s2 = Stmt::store(&buf, Expr::int(1), Expr::f32(2.0));
        let nested = Stmt::seq(vec![Stmt::seq(vec![s1.clone(), s2.clone()]), s1.clone()]);
        match &*nested.0 {
            StmtNode::Seq(v) => assert_eq!(v.len(), 3),
            other => panic!("expected Seq, got {other:?}"),
        }
    }

    #[test]
    fn seq_of_one_unwraps() {
        let buf = Var::new("b", DType::float32());
        let s1 = Stmt::store(&buf, Expr::int(0), Expr::f32(1.0));
        let s = Stmt::seq(vec![s1]);
        assert!(matches!(&*s.0, StmtNode::Store { .. }));
    }

    #[test]
    fn grid_and_block_size() {
        let buf = Var::new("b", DType::float32());
        let bx = Var::int("bx");
        let tx = Var::int("tx");
        let body = Stmt::store(&buf, tx.to_expr(), Expr::f32(0.0));
        let inner = Stmt::loop_(
            &tx,
            0,
            128,
            ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
            body,
        );
        let outer = Stmt::loop_(
            &bx,
            0,
            64,
            ForKind::ThreadBinding(ThreadTag::BlockIdxX),
            inner,
        );
        let f = LoweredFunc {
            name: "k".into(),
            params: vec![buf],
            param_dtypes: vec![DType::float32()],
            param_extents: vec![128],
            body: outer,
        };
        assert_eq!(f.grid_size(), 64);
        assert_eq!(f.block_size(), 128);
    }

    #[test]
    fn scope_parse_round_trip() {
        for s in [
            MemScope::Global,
            MemScope::Shared,
            MemScope::Local,
            MemScope::AccBuffer,
            MemScope::InpBuffer,
            MemScope::WgtBuffer,
        ] {
            assert_eq!(MemScope::parse(s.name()), Some(s));
        }
        assert_eq!(MemScope::parse("bogus"), None);
    }
}
