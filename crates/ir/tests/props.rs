//! Property tests on the IR: the simplifier preserves semantics, and
//! interval analysis is sound.

use std::collections::HashMap;

use proptest::prelude::*;

use tvm_ir::{eval_interval, simplify, BinOp, DType, Expr, Interp, Interval, Value, Var, VarId};

/// A random integer expression over up to three variables.
fn arb_expr(vars: Vec<Var>, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        (0..vars.len()).prop_map(move |i| vars[i].to_expr()),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        (inner.clone(), inner, 0usize..7)
            .prop_map(|(a, b, op)| {
                let op = match op {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    2 => BinOp::Mul,
                    3 => BinOp::Min,
                    4 => BinOp::Max,
                    5 => BinOp::Div,
                    _ => BinOp::Mod,
                };
                // Guard division by making the divisor strictly positive.
                if matches!(op, BinOp::Div | BinOp::Mod) {
                    let b = Expr::binary(BinOp::Add, b.max(Expr::int(0)), Expr::int(1));
                    Expr::binary(op, a, b)
                } else {
                    Expr::binary(op, a, b)
                }
            })
            .boxed()
    })
    .boxed()
}

fn eval_with(e: &Expr, bindings: &[(Var, i64)]) -> i64 {
    let mut it = Interp::new();
    for (v, x) in bindings {
        it.bind_scalar(v, Value::Int(*x));
    }
    it.eval(e).expect("evaluates").as_int().expect("int")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// simplify(e) computes the same value as e for all variable bindings.
    #[test]
    fn simplifier_preserves_semantics(
        seed in any::<u64>(),
        vals in prop::collection::vec(-9i64..9, 3),
    ) {
        let vars = vec![Var::int("a"), Var::int("b"), Var::int("c")];
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let e = arb_expr(vars.clone(), 4)
            .new_tree(&mut runner)
            .map(|t| t.current())
            .unwrap_or_else(|_| Expr::int(1));
        let simplified = simplify(&e);
        let bindings: Vec<(Var, i64)> =
            vars.into_iter().zip(vals.iter().copied()).collect();
        prop_assert_eq!(eval_with(&e, &bindings), eval_with(&simplified, &bindings));
    }

    /// eval_interval is a sound over-approximation: the concrete value of
    /// the expression always falls inside the computed interval.
    #[test]
    fn interval_analysis_is_sound(
        lo in -10i64..10,
        width in 0i64..10,
        at in 0i64..10,
        vals2 in prop::collection::vec(-9i64..9, 2),
    ) {
        let x = Var::int("x");
        let y = Var::int("y");
        let z = Var::int("z");
        // e = (x * c1 + y) and friends via a fixed compound shape.
        let e = (x.clone() * vals2[0] + y.clone()).max(x.clone() - vals2[1])
            + (z.clone() % 5);
        let mut bounds: HashMap<VarId, Interval> = HashMap::new();
        bounds.insert(x.id(), Interval::new(lo, lo + width));
        bounds.insert(y.id(), Interval::new(-3, 3));
        bounds.insert(z.id(), Interval::new(0, 9));
        let iv = eval_interval(&e, &bounds).expect("analyzable");
        // Pick a concrete point inside the bounds.
        let xv = lo + at.min(width);
        let yv = (vals2[0].rem_euclid(7)) - 3;
        let zv = at.rem_euclid(10);
        let got = eval_with(&e, &[(x, xv), (y, yv), (z, zv)]);
        prop_assert!(iv.min <= got && got <= iv.max, "{got} outside [{}, {}]", iv.min, iv.max);
    }

    /// Quantization is idempotent and stays within the type's range.
    #[test]
    fn quantization_idempotent(v in any::<i64>(), bits in 1u8..16) {
        let dt = DType::uint(bits);
        let q1 = tvm_ir::interp::quantize(Value::Int(v), dt).expect("quantizes");
        let q2 = tvm_ir::interp::quantize(q1, dt).expect("quantizes");
        prop_assert_eq!(q1, q2);
        if let Value::Int(x) = q1 {
            prop_assert!(x >= 0 && x < (1 << bits));
        }
    }

    /// f16 rounding is idempotent and monotone on finite values.
    #[test]
    fn f16_round_idempotent_and_monotone(a in -1e4f64..1e4, b in -1e4f64..1e4) {
        let ra = tvm_ir::interp::round_f16(a);
        prop_assert_eq!(tvm_ir::interp::round_f16(ra), ra);
        let rb = tvm_ir::interp::round_f16(b);
        if a <= b {
            prop_assert!(ra <= rb, "round({a})={ra} > round({b})={rb}");
        }
    }
}
