//! Walker-coverage guard: the `Visitor` / `Mutator` traits (and every
//! downstream pass that pattern-matches the IR) must handle every
//! `ExprNode` / `StmtNode` variant.
//!
//! Two layers of protection:
//!
//! 1. **Compile-time** — `expr_variant_name` / `stmt_variant_name` match
//!    every variant *without a wildcard arm*. Adding a variant to either
//!    enum makes this test fail to compile, forcing an audit of every
//!    walker (ir::visit, ir::simplify, ir::interp, ir::printer, and the
//!    tvm-analysis passes).
//! 2. **Run-time** — a program containing every variant is walked by the
//!    default `Visitor` and rebuilt by the identity `Mutator`; the
//!    visitor must reach every node kind and the mutator must reproduce
//!    the program exactly (checked via the printer, which is itself an
//!    exhaustive walker).
//!
//! An audit of the seed walkers against the current node set found no
//! traversal gaps — every variant added since the initial IR (Barrier,
//! PushDep/PopDep, Ramp/Broadcast, Load/Store predicates) is already
//! routed through visit/simplify/interp/printer; this test keeps it
//! that way.

use std::collections::HashSet;

use tvm_ir::visit::{Mutator, Visitor};
use tvm_ir::{CallKind, DType, Expr, ExprNode, ForKind, MemScope, PipeStage, Stmt, StmtNode, Var};

/// Exhaustive, wildcard-free variant name table (compile-time guard).
fn expr_variant_name(e: &ExprNode) -> &'static str {
    match e {
        ExprNode::IntImm { .. } => "IntImm",
        ExprNode::FloatImm { .. } => "FloatImm",
        ExprNode::StringImm(_) => "StringImm",
        ExprNode::Var(_) => "Var",
        ExprNode::Cast { .. } => "Cast",
        ExprNode::Binary { .. } => "Binary",
        ExprNode::Cmp { .. } => "Cmp",
        ExprNode::And { .. } => "And",
        ExprNode::Or { .. } => "Or",
        ExprNode::Not { .. } => "Not",
        ExprNode::Select { .. } => "Select",
        ExprNode::Load { .. } => "Load",
        ExprNode::Ramp { .. } => "Ramp",
        ExprNode::Broadcast { .. } => "Broadcast",
        ExprNode::Let { .. } => "Let",
        ExprNode::Call { .. } => "Call",
    }
}

const ALL_EXPR_VARIANTS: [&str; 16] = [
    "IntImm",
    "FloatImm",
    "StringImm",
    "Var",
    "Cast",
    "Binary",
    "Cmp",
    "And",
    "Or",
    "Not",
    "Select",
    "Load",
    "Ramp",
    "Broadcast",
    "Let",
    "Call",
];

/// Exhaustive, wildcard-free variant name table (compile-time guard).
fn stmt_variant_name(s: &StmtNode) -> &'static str {
    match s {
        StmtNode::LetStmt { .. } => "LetStmt",
        StmtNode::AttrStmt { .. } => "AttrStmt",
        StmtNode::Store { .. } => "Store",
        StmtNode::Allocate { .. } => "Allocate",
        StmtNode::For { .. } => "For",
        StmtNode::Seq(_) => "Seq",
        StmtNode::IfThenElse { .. } => "IfThenElse",
        StmtNode::Evaluate(_) => "Evaluate",
        StmtNode::Barrier => "Barrier",
        StmtNode::PushDep { .. } => "PushDep",
        StmtNode::PopDep { .. } => "PopDep",
    }
}

const ALL_STMT_VARIANTS: [&str; 11] = [
    "LetStmt",
    "AttrStmt",
    "Store",
    "Allocate",
    "For",
    "Seq",
    "IfThenElse",
    "Evaluate",
    "Barrier",
    "PushDep",
    "PopDep",
];

/// One expression containing every `ExprNode` variant at least once.
fn kitchen_sink_expr(buf: &Var) -> Expr {
    let x = Var::int("x");
    let letv = Var::int("lv");
    let f = DType::float32();
    let sel = Expr::int(1)
        .lt(Expr::int(2))
        .and(Expr::bool_(true))
        .or(Expr::int(3).ge(Expr::int(4)).not());
    let load = Expr::new(ExprNode::Load {
        buffer: buf.clone(),
        index: x.to_expr() % 4,
        predicate: Some(x.to_expr().lt(Expr::int(4))),
    });
    let ramp = Expr::new(ExprNode::Ramp {
        base: x.to_expr() * 2,
        stride: Expr::int(1),
        lanes: 4,
    });
    let bcast = Expr::new(ExprNode::Broadcast {
        value: Expr::f32(2.5),
        lanes: 4,
    });
    let call = Expr::new(ExprNode::Call {
        dtype: f,
        name: "exp".into(),
        args: vec![Expr::f32(1.0), Expr::new(ExprNode::StringImm("tag".into()))],
        kind: CallKind::PureIntrinsic,
    });
    let let_expr = Expr::new(ExprNode::Let {
        var: letv.clone(),
        value: x.clone() - 1,
        body: letv.to_expr() + 1,
    });
    Expr::select(
        sel,
        (load + call).cast(f) * bcast,
        Expr::new(ExprNode::Select {
            cond: Expr::bool_(false),
            then_case: ramp.cast(f),
            else_case: (let_expr / 2).cast(f),
        }),
    )
}

/// One statement containing every `StmtNode` variant at least once.
fn kitchen_sink_stmt() -> Stmt {
    let buf = Var::new("B", DType::float32());
    let out = Var::new("out", DType::float32());
    let i = Var::int("i");
    let lv = Var::int("l");
    let inner = Stmt::seq(vec![
        Stmt::new(StmtNode::PushDep {
            from: PipeStage::Load,
            to: PipeStage::Compute,
        }),
        Stmt::new(StmtNode::Store {
            buffer: out.clone(),
            index: i.to_expr(),
            value: kitchen_sink_expr(&buf),
            predicate: Some(i.to_expr().lt(Expr::int(4))),
        }),
        Stmt::new(StmtNode::Barrier),
        Stmt::new(StmtNode::IfThenElse {
            cond: i.to_expr().eq(Expr::int(0)),
            then_case: Stmt::evaluate(Expr::int(1)),
            else_case: Some(Stmt::evaluate(Expr::f32(0.0))),
        }),
        Stmt::new(StmtNode::PopDep {
            by: PipeStage::Compute,
            from: PipeStage::Load,
        }),
    ]);
    let letted = Stmt::new(StmtNode::LetStmt {
        var: lv.clone(),
        value: i.to_expr() + 1,
        body: Stmt::new(StmtNode::AttrStmt {
            key: "pragma".into(),
            value: lv.to_expr(),
            body: inner,
        }),
    });
    let looped = Stmt::loop_(&i, 0, 4, ForKind::Serial, letted);
    Stmt::allocate(&buf, DType::float32(), 4, MemScope::Global, looped)
}

#[test]
fn visitor_reaches_every_variant() {
    struct Recorder {
        exprs: HashSet<&'static str>,
        stmts: HashSet<&'static str>,
    }
    impl Visitor for Recorder {
        fn visit_expr(&mut self, e: &Expr) {
            self.exprs.insert(expr_variant_name(&e.0));
            self.walk_expr(e);
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            self.stmts.insert(stmt_variant_name(&s.0));
            self.walk_stmt(s);
        }
    }
    let mut r = Recorder {
        exprs: HashSet::new(),
        stmts: HashSet::new(),
    };
    r.visit_stmt(&kitchen_sink_stmt());
    for v in ALL_EXPR_VARIANTS {
        assert!(r.exprs.contains(v), "Visitor never reached ExprNode::{v}");
    }
    for v in ALL_STMT_VARIANTS {
        assert!(r.stmts.contains(v), "Visitor never reached StmtNode::{v}");
    }
}

#[test]
fn identity_mutator_reproduces_every_variant() {
    struct Identity;
    impl Mutator for Identity {}
    let original = kitchen_sink_stmt();
    let rebuilt = Identity.mutate_stmt(&original);
    // The printer is itself an exhaustive walker; identical output means
    // every node survived the rebuild with its fields intact.
    assert_eq!(original.to_string(), rebuilt.to_string());
}
