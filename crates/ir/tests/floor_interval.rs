//! Exhaustive small-domain sweeps for the IR's integer arithmetic:
//! `floor_div` / `floor_mod` satisfy the Euclidean identities across all
//! sign combinations, and interval analysis is sound for every concrete
//! point of every small range. These complement the randomized checks in
//! `props.rs` with complete coverage of the small domains where off-by-one
//! and sign bugs actually live.

use std::collections::HashMap;

use tvm_ir::{
    eval_interval, floor_div, floor_mod, prove_cmp, simplify, CmpOp, Expr, Interp, Interval, Value,
    Var, VarId,
};

#[test]
fn euclidean_identity_all_sign_cases() {
    // a == (a // b) * b + (a % b) for every dividend/divisor combination.
    for a in -60i64..=60 {
        for b in (-12i64..=12).filter(|&b| b != 0) {
            let q = floor_div(a, b);
            let m = floor_mod(a, b);
            assert_eq!(q * b + m, a, "identity broken for {a} / {b}");
        }
    }
}

#[test]
fn floor_mod_takes_the_divisor_sign() {
    for a in -60i64..=60 {
        for b in 1i64..=12 {
            let m = floor_mod(a, b);
            assert!(
                (0..b).contains(&m),
                "floor_mod({a}, {b}) = {m} not in [0, {b})"
            );
            // Positive divisors match Rust's Euclidean remainder.
            assert_eq!(m, a.rem_euclid(b), "floor_mod({a}, {b})");
            assert_eq!(floor_div(a, b), a.div_euclid(b), "floor_div({a}, {b})");
            // Negative divisors mirror: remainder in (b, 0].
            let mn = floor_mod(a, -b);
            assert!((-b < mn) && (mn <= 0), "floor_mod({a}, {}) = {mn}", -b);
        }
    }
}

#[test]
fn floor_div_is_monotone_in_the_dividend() {
    for b in 1i64..=12 {
        for a in -60i64..60 {
            assert!(
                floor_div(a, b) <= floor_div(a + 1, b),
                "floor_div not monotone at {a} / {b}"
            );
        }
    }
}

#[test]
fn simplifier_and_interpreter_agree_with_floor_semantics() {
    // Constant folding in `simplify` and evaluation in `Interp` must both
    // implement the same floor semantics as the reference functions.
    for a in -20i64..=20 {
        for b in (-6i64..=6).filter(|&b| b != 0) {
            let div = Expr::int(a) / Expr::int(b);
            let md = Expr::int(a) % Expr::int(b);
            assert_eq!(
                simplify(&div).as_int(),
                Some(floor_div(a, b)),
                "simplify({a} / {b})"
            );
            assert_eq!(
                simplify(&md).as_int(),
                Some(floor_mod(a, b)),
                "simplify({a} % {b})"
            );
            let mut it = Interp::new();
            assert_eq!(it.eval(&div).unwrap(), Value::Int(floor_div(a, b)));
            assert_eq!(it.eval(&md).unwrap(), Value::Int(floor_mod(a, b)));
        }
    }
}

/// All intervals with bounds in `[lo, hi]`.
fn small_intervals(lo: i64, hi: i64) -> Vec<Interval> {
    let mut v = Vec::new();
    for min in lo..=hi {
        for max in min..=hi {
            v.push(Interval::new(min, max));
        }
    }
    v
}

fn eval_at(e: &Expr, x: &Var, xv: i64, y: &Var, yv: i64) -> i64 {
    let mut it = Interp::new();
    it.bind_scalar(x, Value::Int(xv));
    it.bind_scalar(y, Value::Int(yv));
    it.eval(e).expect("evaluates").as_int().expect("integer")
}

#[test]
fn interval_analysis_is_sound_on_every_small_range() {
    let x = Var::int("x");
    let y = Var::int("y");
    // Expression shapes chosen to hit every interval transfer function,
    // including the divisor-sign and mod-period special cases.
    let shapes: Vec<(&str, Expr)> = vec![
        ("add", x.clone() + y.clone()),
        ("sub_mul", x.clone() * 3 - y.clone() * 2),
        ("div", x.clone() / (y.to_expr().max(Expr::int(0)) + 1)),
        ("mod", x.clone() % (y.to_expr().max(Expr::int(0)) + 1)),
        ("minmax", (x.to_expr().min(y.to_expr())).max(x.clone() - 2)),
        (
            "affine_divmod",
            (x.clone() * 5 + y.clone()) % 7 + (x.clone() * 5 + y.clone()) / 7,
        ),
    ];
    for ix in small_intervals(-3, 3) {
        for iy in small_intervals(-3, 3) {
            let mut bounds: HashMap<VarId, Interval> = HashMap::new();
            bounds.insert(x.id(), ix);
            bounds.insert(y.id(), iy);
            for (name, e) in &shapes {
                let Some(iv) = eval_interval(e, &bounds) else {
                    continue; // declining to bound is always sound
                };
                for xv in ix.min..=ix.max {
                    for yv in iy.min..=iy.max {
                        let got = eval_at(e, &x, xv, &y, yv);
                        assert!(
                            iv.min <= got && got <= iv.max,
                            "{name}: value {got} at (x={xv}, y={yv}) escapes \
                             [{}, {}] for x in [{}, {}], y in [{}, {}]",
                            iv.min,
                            iv.max,
                            ix.min,
                            ix.max,
                            iy.min,
                            iy.max
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn proved_comparisons_hold_at_every_point() {
    let x = Var::int("x");
    let y = Var::int("y");
    let ops = [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ];
    let lhs = x.clone() * 2 + 1;
    let rhs = y.to_expr();
    for ix in small_intervals(-3, 3) {
        for iy in small_intervals(-3, 3) {
            let mut bounds: HashMap<VarId, Interval> = HashMap::new();
            bounds.insert(x.id(), ix);
            bounds.insert(y.id(), iy);
            for op in ops {
                let Some(verdict) = prove_cmp(op, &lhs, &rhs, &bounds) else {
                    continue;
                };
                for xv in ix.min..=ix.max {
                    for yv in iy.min..=iy.max {
                        let a = 2 * xv + 1;
                        let concrete = match op {
                            CmpOp::Lt => a < yv,
                            CmpOp::Le => a <= yv,
                            CmpOp::Gt => a > yv,
                            CmpOp::Ge => a >= yv,
                            CmpOp::Eq => a == yv,
                            CmpOp::Ne => a != yv,
                        };
                        assert_eq!(
                            concrete, verdict,
                            "{op:?} misproved at (x={xv}, y={yv}) for x in \
                             [{}, {}], y in [{}, {}]",
                            ix.min, ix.max, iy.min, iy.max
                        );
                    }
                }
            }
        }
    }
}
