//! Edge-case tests for the reference interpreter: error reporting, type
//! quantization on stores, predicated access, and GPU phasing corner cases.

use tvm_ir::{
    Buffer, DType, Expr, ForKind, Interp, InterpError, LoweredFunc, Stmt, StmtNode, ThreadTag,
    Value, Var,
};

fn func(params: Vec<Var>, dtypes: Vec<DType>, extents: Vec<usize>, body: Stmt) -> LoweredFunc {
    LoweredFunc {
        name: "t".into(),
        params,
        param_dtypes: dtypes,
        param_extents: extents,
        body,
    }
}

#[test]
fn unbound_variable_is_reported_by_name() {
    let out = Var::new("O", DType::float32());
    let ghost = Var::int("ghost");
    let body = Stmt::store(&out, ghost.to_expr(), Expr::f32(1.0));
    let err = Interp::new()
        .run_f32(
            &func(vec![out], vec![DType::float32()], vec![4], body),
            &mut [vec![0.0; 4]],
        )
        .unwrap_err();
    match err {
        InterpError::UnboundVar(n) => assert_eq!(n, "ghost"),
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn division_by_zero_is_an_error_not_a_crash() {
    let out = Var::new("O", DType::int32());
    let body = Stmt::store(&out, Expr::int(0), Expr::int(1) / Expr::int(0));
    let bufs = vec![Buffer::zeros(DType::int32(), 1)];
    let err = Interp::new()
        .run(&func(vec![out], vec![DType::int32()], vec![1], body), bufs)
        .unwrap_err();
    assert!(matches!(err, InterpError::DivideByZero));
}

#[test]
fn predicated_store_skips_when_false() {
    let out = Var::new("O", DType::float32());
    let i = Var::int("i");
    let pred_store = Stmt::new(StmtNode::Store {
        buffer: out.clone(),
        index: i.to_expr(),
        value: Expr::f32(7.0),
        predicate: Some(i.to_expr().lt(Expr::int(2))),
    });
    let body = Stmt::for_(&i, 0, 4, pred_store);
    let mut arrays = vec![vec![0.0f32; 4]];
    Interp::new()
        .run_f32(
            &func(vec![out], vec![DType::float32()], vec![4], body),
            &mut arrays,
        )
        .expect("runs");
    assert_eq!(arrays[0], vec![7.0, 7.0, 0.0, 0.0]);
}

#[test]
fn stores_quantize_to_buffer_dtype() {
    // Store 3.9 into an int8 buffer -> truncates through the int path; and
    // 200 wraps to -56.
    let out = Var::new("O", DType::int8());
    let body = Stmt::seq(vec![
        Stmt::store(&out, Expr::int(0), Expr::f32(3.9).cast(DType::int8())),
        Stmt::store(&out, Expr::int(1), Expr::int(200)),
    ]);
    let bufs = vec![Buffer::zeros(DType::int8(), 2)];
    let out_bufs = Interp::new()
        .run(&func(vec![out], vec![DType::int8()], vec![2], body), bufs)
        .expect("runs");
    assert_eq!(out_bufs[0].to_i64(), vec![3, -56]);
}

#[test]
fn f16_buffer_rounds_on_store() {
    let out = Var::new("O", DType::float16());
    let body = Stmt::store(&out, Expr::int(0), Expr::f32(1.0 / 3.0));
    let bufs = vec![Buffer::zeros(DType::float16(), 1)];
    let got = Interp::new()
        .run(
            &func(vec![out], vec![DType::float16()], vec![1], body),
            bufs,
        )
        .expect("runs")[0]
        .to_f32()[0];
    assert_ne!(got, 1.0f32 / 3.0);
    assert!((got - 1.0 / 3.0).abs() < 1e-3);
}

#[test]
fn param_count_mismatch_is_malformed() {
    let out = Var::new("O", DType::float32());
    let f = func(vec![out], vec![DType::float32()], vec![1], Stmt::nop());
    let err = Interp::new().run(&f, vec![]).unwrap_err();
    assert!(matches!(err, InterpError::Malformed(_)));
}

#[test]
fn divergent_barrier_counts_are_rejected() {
    // A barrier inside only one branch of a data-dependent if within a
    // thread nest is undefined behavior on real GPUs; the interpreter
    // reports it instead of hanging.
    let out = Var::new("O", DType::float32());
    let t = Var::int("t");
    let body = Stmt::new(StmtNode::IfThenElse {
        cond: t.to_expr().lt(Expr::int(1)),
        then_case: Stmt::new(StmtNode::Barrier),
        else_case: Some(Stmt::store(&out, Expr::int(0), Expr::f32(1.0))),
    });
    // Make the nest contain at least one barrier so phasing engages.
    let with_sync = Stmt::seq(vec![Stmt::new(StmtNode::Barrier), body]);
    let nest = Stmt::loop_(
        &t,
        0,
        2,
        ForKind::ThreadBinding(ThreadTag::ThreadIdxX),
        with_sync,
    );
    let err = Interp::new()
        .run_f32(
            &func(vec![out], vec![DType::float32()], vec![1], nest),
            &mut [vec![0.0]],
        )
        .unwrap_err();
    assert!(matches!(err, InterpError::Malformed(_)), "{err}");
}

#[test]
fn scalar_bindings_reach_expressions() {
    let mut it = Interp::new();
    let x = Var::int("x");
    it.bind_scalar(&x, Value::Int(21));
    let v = it.eval(&(x.clone() * 2)).expect("evaluates");
    assert_eq!(v.as_int().expect("int"), 42);
}

#[test]
fn store_count_tracks_dynamic_work() {
    let out = Var::new("O", DType::float32());
    let i = Var::int("i");
    let body = Stmt::for_(&i, 0, 10, Stmt::store(&out, i.to_expr(), Expr::f32(1.0)));
    let mut it = Interp::new();
    it.run_f32(
        &func(vec![out], vec![DType::float32()], vec![10], body),
        &mut [vec![0.0; 10]],
    )
    .expect("runs");
    assert_eq!(it.store_count(), 10);
}

#[test]
fn vthread_loops_execute_serially_outside_dae() {
    let out = Var::new("O", DType::float32());
    let v = Var::int("vt");
    let body = Stmt::loop_(
        &v,
        0,
        3,
        ForKind::VThread,
        Stmt::store(&out, v.to_expr(), (v.clone() + 1).cast(DType::float32())),
    );
    let mut arrays = vec![vec![0.0f32; 3]];
    Interp::new()
        .run_f32(
            &func(vec![out], vec![DType::float32()], vec![3], body),
            &mut arrays,
        )
        .expect("runs");
    assert_eq!(arrays[0], vec![1.0, 2.0, 3.0]);
}
